#!/usr/bin/env python3
"""Quickstart: compile a VHDL counter and simulate it.

The pipeline is the paper's (§2): VHDL source -> attribute-grammar
front end -> VIF in a design library + generated model -> elaboration
-> event-driven simulation.

Run:  python examples/quickstart.py
"""

from repro.vhdl.compiler import Compiler
from repro.vhdl.elaborate import Elaborator

SOURCE = """
entity counter is
  generic ( limit : integer := 10 );
  port ( clk : in bit; reset : in bit; q : out integer );
end counter;

architecture rtl of counter is
  signal value : integer := 0;
begin
  tick : process (clk, reset)
  begin
    if reset = '1' then
      value <= 0;
    elsif clk'event and clk = '1' then
      if value = limit - 1 then
        value <= 0;
      else
        value <= value + 1;
      end if;
    end if;
  end process;
  q <= value;
end rtl;

entity testbench is end testbench;

architecture sim of testbench is
  component counter
    generic ( limit : integer := 10 );
    port ( clk : in bit; reset : in bit; q : out integer );
  end component;
  signal clk : bit := '0';
  signal reset : bit := '1';
  signal q : integer := 0;
begin
  dut : counter generic map ( limit => 7 )
                port map ( clk => clk, reset => reset, q => q );
  clock : process
  begin
    clk <= not clk after 5 ns;
    wait on clk;
  end process;
  stimulus : process
  begin
    wait for 8 ns;
    reset <= '0';
    wait;
  end process;
end sim;
"""

NS = 10**6  # femtoseconds per nanosecond


def main():
    compiler = Compiler()
    result = compiler.compile(SOURCE)
    print("compiled units:", ", ".join(result.unit_names()))
    print("phase times:", {k: round(v * 1000, 2)
                           for k, v in result.timings.items()}, "ms")

    # Peek at the intermediate artifacts the compiler produced.
    arch = compiler.library.find_architecture("work", "counter", "rtl")
    print("\n--- generated Python model (first lines) ---")
    print("\n".join(arch.py_source.splitlines()[:12]))
    print("\n--- human-readable VIF (first lines) ---")
    print("\n".join(
        compiler.library.dump_vif("work", "rtl(counter)")
        .splitlines()[:10]))

    sim = Elaborator(compiler.library).elaborate("testbench")
    print("\n--- design hierarchy ---")
    print(sim.names.tree())

    print("\n--- simulation ---")
    for t_ns in (20, 50, 100, 200):
        sim.run(until_fs=t_ns * NS)
        print("t=%4d ns  q=%d" % (t_ns, sim.value("q")))

    # q counts rising edges mod 7 after reset releases at 8 ns.
    assert sim.value("q") == sim.value("value")
    print("\nOK")


if __name__ == "__main__":
    main()
