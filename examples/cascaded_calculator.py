#!/usr/bin/env python3
"""Cascaded evaluation with the AG toolkit itself (§4.1), outside VHDL.

Builds a tiny "command language" the way the paper built its compiler:
a *principal* AG that owns the symbol table and classifies identifiers
into distinct tokens, cascading each expression to a separately
generated *expression* AG.  The payoff is the paper's: ``x (y)`` parses
as a function call or an array index depending on what ``x`` denotes —
with two genuinely different phrase structures, not a semantic hack.

Run:  python examples/cascaded_calculator.py
"""

from repro.ag import AGSpec, LexerSpec, SubEvaluator, SYN, INH, Token


# --- the expression AG (the cascade target) --------------------------------

def make_expr_ag():
    g = AGSpec("calc_expr")
    g.terminals("FUNC", "ARR", "NUM", "VAR", "PLUS", "TIMES", "LP", "RP")
    g.precedence("left", "PLUS")
    g.precedence("left", "TIMES")
    g.nonterminal("e", ("val", SYN))
    p = g.production("e_plus", "e -> e0 PLUS e1")
    p.rule("e0.val", "e1.val", "e2.val", fn=lambda a, b: a + b)
    p = g.production("e_times", "e -> e0 TIMES e1")
    p.rule("e0.val", "e1.val", "e2.val", fn=lambda a, b: a * b)
    p = g.production("e_num", "e -> NUM")
    p.rule("e.val", "NUM.value", fn=lambda v: v)
    p = g.production("e_var", "e -> VAR")
    p.rule("e.val", "VAR.value", fn=lambda v: v)
    # The §4.1 showcase: distinct phrase structures for x(y).
    p = g.production("e_call", "e -> FUNC LP e RP")
    p.rule("e0.val", "FUNC.value", "e1.val", fn=lambda f, x: f(x))
    p = g.production("e_index", "e -> ARR LP e RP")
    p.rule("e0.val", "ARR.value", "e1.val", fn=lambda a, i: a[i])
    p = g.production("e_paren", "e -> LP e RP")
    p.copy("e0.val", "e1.val")
    return g.finish()


# --- the principal AG -------------------------------------------------------

def make_lexer():
    lex = LexerSpec("cmd")
    lex.skip(r"\s+")
    lex.skip(r"#[^\n]*")
    lex.token("NUM", r"\d+", action=int)
    lex.token("ID", r"[a-z_]+")
    lex.token("EQ", r"=")
    lex.token("PLUS", r"\+")
    lex.token("TIMES", r"\*")
    lex.token("LP", r"\(")
    lex.token("RP", r"\)")
    lex.token("SEMI", r";")
    lex.keywords("ID", ["let", "show"])
    return lex.build()


def classify(name, env, line):
    """The principal AG's job: same source text, different LEF token."""
    value = env.get(name)
    if callable(value):
        return Token("FUNC", name, value, line)
    if isinstance(value, (list, tuple)):
        return Token("ARR", name, value, line)
    if value is None:
        raise NameError("%r is not defined (line %d)" % (name, line))
    return Token("VAR", name, value, line)


def make_principal(expr_eval):
    g = AGSpec("cmd")
    g.terminals("NUM", "ID", "EQ", "PLUS", "TIMES", "LP", "RP", "SEMI",
                "kw_let", "kw_show")
    g.attr_class("OUT", SYN, merge=lambda a, b: a + b, unit=())
    g.attr_class("LEF", SYN, merge=lambda a, b: a + b, unit=())

    # The environment threads through statements (applicatively).
    g.nonterminal("prog", "OUT", ("ENVI", INH), ("ENVO", SYN))
    g.nonterminal("stmt", "OUT", ("ENVI", INH), ("ENVO", SYN))
    g.nonterminal("soup", "LEF", ("ENVI", INH))
    g.nonterminal("tok", "LEF", ("ENVI", INH))

    p = g.production("prog_one", "prog -> stmt")
    p.copy("stmt.ENVI", "prog.ENVI")
    p.copy("prog.ENVO", "stmt.ENVO")
    p = g.production("prog_more", "prog -> prog0 stmt")
    p.copy("prog1.ENVI", "prog0.ENVI")
    p.rule("stmt.ENVI", "prog1.ENVO", fn=lambda e: e)
    p.copy("prog0.ENVO", "stmt.ENVO")

    def eval_soup(lef):
        return expr_eval(list(lef))["val"]

    p = g.production("stmt_let", "stmt -> kw_let ID EQ soup SEMI")
    p.copy("soup.ENVI", "stmt.ENVI")
    p.rule("stmt.ENVO", "stmt.ENVI", "ID.text", "soup.LEF",
           fn=lambda env, name, lef: {**env, name: eval_soup(lef)})
    p = g.production("stmt_show", "stmt -> kw_show soup SEMI")
    p.copy("soup.ENVI", "stmt.ENVI")
    p.copy("stmt.ENVO", "stmt.ENVI")
    p.rule("stmt.OUT", "soup.LEF", fn=lambda lef: (eval_soup(lef),))

    p = g.production("soup_one", "soup -> tok")
    p.copy("tok.ENVI", "soup.ENVI")
    p = g.production("soup_more", "soup -> soup0 tok")
    p.copy("soup1.ENVI", "soup0.ENVI")
    p.copy("tok.ENVI", "soup0.ENVI")

    p = g.production("tok_num", "tok -> NUM")
    p.rule("tok.LEF", "NUM.value", "NUM.line",
           fn=lambda v, ln: (Token("NUM", str(v), v, ln),))
    p = g.production("tok_id", "tok -> ID")
    p.rule("tok.LEF", "ID.text", "tok.ENVI", "ID.line",
           fn=lambda name, env, ln: (classify(name, env, ln),))
    for t in ("PLUS", "TIMES", "LP", "RP"):
        p = g.production("tok_%s" % t.lower(), "tok -> %s" % t)
        p.rule("tok.LEF", "%s.text" % t, "%s.line" % t,
               fn=(lambda k=t: lambda s, ln: (Token(k, s, s, ln),))())
    return g.finish()


PROGRAM = """
# x(y) means *call* here, because x is bound to a function ...
let double = 7;            # just a number for now
show double * 2;           # 14

let table = 5;             # rebinding happens applicatively
show table + 1;            # 6
show table * (table + 1);  # 30
"""


def main():
    expr = SubEvaluator(make_expr_ag(), goals=["val"])
    principal = make_principal(expr)
    lexer = make_lexer()

    out = principal.run(lexer.scan(PROGRAM), inherited={"ENVI": {}})
    print("program output:", list(out["OUT"]))
    assert list(out["OUT"]) == [14, 6, 30]

    # Now the §4.1 punchline, with *identical* source text "x (2)":
    env_fn = {"x": lambda v: v + 100}
    env_arr = {"x": [9, 8, 7]}
    text = [classify("x", env_fn, 1), Token("LP", "("),
            Token("NUM", "2", 2), Token("RP", ")")]
    print("x(2) with x a function ->", expr(text)["val"])
    text = [classify("x", env_arr, 1), Token("LP", "("),
            Token("NUM", "2", 2), Token("RP", ")")]
    print("x(2) with x an array   ->", expr(text)["val"])
    print("expression AG invocations:", expr.invocations)

    stats = make_expr_ag().statistics()
    print("\nexpression AG:", stats.as_dict())


if __name__ == "__main__":
    main()
