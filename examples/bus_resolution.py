#!/usr/bin/env python3
"""Bus resolution functions and multiple drivers (§1: "signal objects:
signal assignment semantics, bus resolution functions").

Three masters drive one shared bus through a user-written resolution
function over a four-valued wire type (Z/0/1/X).  Each signal
assignment edits only its own driver's projected waveform; the kernel
calls the resolution function with all driver values whenever any of
them changes.

Run:  python examples/bus_resolution.py
"""

from repro.vhdl.compiler import Compiler
from repro.vhdl.elaborate import Elaborator

SOURCE = """
package wire_pkg is
  type wire is ('Z', '0', '1', 'X');
  type wire_vector is array (natural range <>) of wire;
  function resolve_wire (drivers : wire_vector) return wire;
  subtype rwire is resolve_wire wire;
end wire_pkg;

package body wire_pkg is
  function resolve_wire (drivers : wire_vector) return wire is
    variable result : wire := 'Z';
  begin
    for i in drivers'range loop
      if drivers(i) /= 'Z' then
        if result = 'Z' then
          result := drivers(i);
        elsif result /= drivers(i) then
          return 'X';        -- contention
        end if;
      end if;
    end loop;
    return result;
  end resolve_wire;
end wire_pkg;

use work.wire_pkg.all;

entity shared_bus is end shared_bus;

architecture demo of shared_bus is
  signal bus_line : rwire := 'Z';
begin
  master_a : process
  begin
    wait for 10 ns;
    bus_line <= '1';       -- drive 1
    wait for 10 ns;
    bus_line <= 'Z';       -- release
    wait;
  end process;

  master_b : process
  begin
    wait for 30 ns;
    bus_line <= '0';
    wait for 10 ns;
    bus_line <= 'Z';
    wait;
  end process;

  master_c : process
  begin
    wait for 50 ns;
    bus_line <= '1';       -- will fight with master_b below
    wait;
  end process;

  master_b2 : process
  begin
    wait for 55 ns;
    bus_line <= '0';       -- contention: X
    wait;
  end process;
end demo;
"""

NS = 10**6
WIRE = ["Z", "0", "1", "X"]


def main():
    compiler = Compiler()
    compiler.compile(SOURCE)
    sim = Elaborator(compiler.library).elaborate("shared_bus")

    print("time (ns)  bus")
    last = None
    for t in range(0, 71, 1):
        sim.run(until_fs=t * NS)
        v = WIRE[sim.value("bus_line")]
        if v != last:
            print("%8d   %s" % (t, v))
            last = v

    assert WIRE[sim.value("bus_line")] == "X", "expected contention"
    bus = sim.signal("bus_line")
    print("\ndrivers on the bus:", len(bus.drivers))
    print("contention detected — OK")


if __name__ == "__main__":
    main()
