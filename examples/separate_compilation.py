#!/usr/bin/env python3
"""Separate compilation, design libraries, and configurations (§3.3).

Shows the paper's two-layer generic mechanism: entity generics bound at
instantiation, component sockets bound to entity/architecture pairs by
configuration — and the *usage-history-dependent* default rule ("the
latest compiled architecture for that entity") that makes the same
description elaborate differently after a recompile.

Run:  python examples/separate_compilation.py
"""

from repro.vhdl.compiler import Compiler
from repro.vhdl.elaborate import Elaborator

NS = 10**6

FILTERS = """
    entity filter is
      generic ( gain : integer := 2 );
      port ( x : in integer; y : out integer );
    end filter;

    architecture sharp of filter is
    begin
      y <= x * gain;
    end sharp;

    architecture soft of filter is
    begin
      y <= (x * gain) / 3;
    end soft;
"""

BOARD = """
    entity board is end board;
    architecture wiring of board is
      component filter
        generic ( gain : integer := 2 );
        port ( x : in integer; y : out integer );
      end component;
      signal input : integer := 30;
      signal output : integer := 0;
    begin
      stage : filter generic map ( gain => 4 )
                     port map ( x => input, y => output );
    end wiring;
"""

CONFIG = """
    configuration soft_board of board is
      for wiring
        for stage : filter use entity work.filter(soft);
        end for;
      end for;
    end soft_board;
"""


def elaborate_and_run(library, top):
    sim = Elaborator(library).elaborate(top)
    sim.run(until_fs=10 * NS)
    return sim.value("output")


def main():
    compiler = Compiler()
    compiler.compile(FILTERS)
    compiler.compile(BOARD)
    compiler.compile(CONFIG)

    print("compile order:",
          [key for lib, key in compiler.library.compile_order
           if lib == "work"])

    # Default rule: the latest compiled architecture of 'filter' is
    # 'soft', so the unconfigured board picks it.
    print("default binding      -> output =",
          elaborate_and_run(compiler.library, "board"),
          "(soft: 30*4/3)")

    # The configuration unit pins the binding explicitly.
    print("configuration unit   -> output =",
          elaborate_and_run(compiler.library, "soft_board"),
          "(soft, explicitly)")

    # Recompile 'sharp': usage history changes, and with it the
    # default — the paper's non-determinism warning in action.
    compiler.compile("""
        architecture sharp of filter is
        begin
          y <= x * gain;
        end sharp;
    """)
    print("after recompiling sharp, default -> output =",
          elaborate_and_run(compiler.library, "board"),
          "(sharp: 30*4)")

    # The stored VIF is readable — the paper's human-readable dump.
    print("\n--- VIF of the board architecture (excerpt) ---")
    for line in compiler.library.dump_vif(
            "work", "wiring(board)").splitlines()[:14]:
        print(line)


if __name__ == "__main__":
    main()
