-- Metrics/telemetry demo design (PR 3).
--
--   python -m repro sim examples/metrics_demo.vhd --until 500ns \
--       --metrics --metrics-out m.json --top 5
--
-- A clock, a counter process on its sensitivity list, and a
-- zero-delay mirror stage so the delta-per-timestep histogram has
-- something to show.

entity metrics_demo is end metrics_demo;

architecture rtl of metrics_demo is
  signal clk    : bit := '0';
  signal count  : integer := 0;
  signal mirror : integer := 0;
begin

  clock : process
  begin
    clk <= not clk after 10 ns;
    wait on clk;
  end process;

  counter : process (clk)
  begin
    if clk'event and clk = '1' then
      count <= (count + 1) mod 256;
    end if;
  end process;

  mirror_stage : mirror <= count;

  watchdog : process
  begin
    wait for 200 ns;
    assert count > 0
      report "counter never advanced"
      severity warning;
  end process;

end rtl;
