#!/usr/bin/env python3
"""A traffic-light controller: enumeration types, case statements,
selected signal assignment, and assertions.

Demonstrates behavioral modeling with user-defined enumeration types —
the "semantically rich" language surface the paper's compiler had to
cover (user-defined types with implicitly declared operators,
overloaded enumeration constants).

Run:  python examples/traffic_light.py
"""

from repro.vhdl.compiler import Compiler
from repro.vhdl.elaborate import Elaborator

SOURCE = """
package traffic_types is
  type light is (red, amber, green);
  constant red_time   : time := 40 ns;
  constant amber_time : time := 10 ns;
  constant green_time : time := 30 ns;
end traffic_types;

use work.traffic_types.all;

entity controller is
  port ( lamp : out light );
end controller;

architecture fsm of controller is
  signal state : light := red;
begin
  step : process
  begin
    case state is
      when red =>
        wait for red_time;
        state <= green;
      when green =>
        wait for green_time;
        state <= amber;
      when amber =>
        wait for amber_time;
        state <= red;
    end case;
    wait for 0 fs;  -- let the new state propagate
  end process;
  lamp <= state;
end fsm;

use work.traffic_types.all;

entity crossing is end crossing;

architecture top of crossing is
  component controller
    port ( lamp : out light );
  end component;
  signal north_south : light;
  signal walk : bit := '0';
begin
  ns_ctl : controller port map ( lamp => north_south );

  -- pedestrians may walk only on red
  with north_south select
    walk <= '1' when red,
            '0' when others;

  watchdog : process (north_south)
  begin
    assert not (north_south = amber and walk = '1')
      report "walk signal during amber!" severity failure;
  end process;
end top;
"""

NS = 10**6


def main():
    compiler = Compiler()
    compiler.compile(SOURCE)
    sim = Elaborator(compiler.library).elaborate("crossing")

    light_names = ["red", "amber", "green"]
    print("time (ns)  light  walk")
    last = None
    for t in range(0, 241, 5):
        sim.run(until_fs=t * NS)
        state = light_names[sim.value("north_south")]
        walk = "yes" if sim.value("walk") else "no"
        if state != last:
            print("%8d   %-6s %s" % (t, state, walk))
            last = state

    # One full cycle is 80 ns: red(40) -> green(30) -> amber(10).
    assert sim.kernel.logger.errors() == 0
    print("\nno assertion violations — OK")


if __name__ == "__main__":
    main()
