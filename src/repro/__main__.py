"""``python -m repro`` — the script-driven interface (see repro.cli)."""

import sys

from .cli import main

sys.exit(main())
