"""The sweep engine behind ``repro fuzz``.

A sweep checks ``budget`` designs derived from one base seed.  Design
``index`` always gets the stream seed ``mix_seed(seed, index)`` — a
function of (seed, index) alone — so a ``--jobs 4`` sweep produces
byte-identical designs, outcomes, and reports to a serial one; only
wall time changes.  Fan-out rides the same warmed
:class:`~repro.build.pool.ForkPool` the incremental build scheduler
uses.

Any failing design (``divergence``/``crash``) is minimized *in the
parent* with the decision-tape reducer before it is reported: the
failure record carries both the original and the shrunk design plus
the replay command line.  Optionally every shrunk failure — and, with
``--corpus``, every design — can be persisted through
:mod:`repro.gen.corpus`.

Telemetry (``repro.metrics``): ``fuzz_designs_total{outcome=}``,
``fuzz_design_lines`` / ``fuzz_check_seconds`` histograms over the
sweep, and ``fuzz_shrink_evals`` per minimized failure.
"""

import time

from ..build.pool import ForkPool
from ..metrics import NULL_REGISTRY
from ..metrics.registry import SECONDS_BUCKETS, envelope, log125_buckets
from ..trace.context import current_context, make_span
from .grammar import generate_for, replay
from .oracle import FAILURE_OUTCOMES, check_design
from .reducer import shrink

#: Buckets for design size (non-comment source lines).
LINE_BUCKETS = log125_buckets(1, 10**4)

#: Buckets for reducer effort (oracle evaluations per shrink).
SHRINK_BUCKETS = log125_buckets(1, 10**4)


def fuzz_task(seed, index, analyze=False, compiled=False):
    """Generate + check design ``index``; picklable in, pickle out.

    When the submitter activated a span context (a traced sweep —
    e.g. a serve-driven one), the pool re-activates it in the worker
    and the record ships a ``fuzz_design`` span parented into the
    sweep's tree.  With no ambient context (the normal ``repro fuzz``
    CLI path) the record is byte-identical to before — the jobs=N vs
    serial determinism check in CI compares full envelopes.
    """
    ctx = current_context()
    design = generate_for(seed, index)
    ts_us = time.time() * 1e6
    t0 = time.perf_counter()
    result = check_design(design, analyze=analyze, compiled=compiled)
    seconds = time.perf_counter() - t0
    record = {
        "index": index,
        "outcome": result.outcome,
        "detail": result.detail,
        "features": list(design.features),
        "lines": design.lines,
        "choices": list(design.choices),
        "lint_findings": result.lint_findings,
        "seconds": round(seconds, 6),
    }
    if ctx is not None:
        record["trace"] = [make_span(
            "fuzz_design", ctx.child(), ts_us, seconds * 1e6,
            cat="fuzz", index=index, outcome=result.outcome)]
    return record


def _task_crash(args, exc):
    """A worker that died *is* a harness crash — report it as one."""
    seed, index = args[0], args[1]
    return {
        "index": index,
        "outcome": "crash",
        "detail": "fuzz worker failed: %s: %s"
                  % (type(exc).__name__, exc),
        "features": [],
        "lines": 0,
        "choices": [],
        "lint_findings": 0,
        "seconds": 0.0,
    }


class FuzzReport:
    """Aggregated sweep outcome."""

    __slots__ = ("seed", "budget", "jobs", "counts", "failures",
                 "records", "elapsed", "shrunk", "trace_events")

    def __init__(self, seed, budget, jobs):
        self.seed = seed
        self.budget = budget
        self.jobs = jobs
        self.counts = {}
        self.failures = []  # failure dicts, post-shrink
        self.records = []  # per-design records, index order
        self.elapsed = 0.0
        self.shrunk = 0
        self.trace_events = []  # worker spans (traced sweeps only)

    @property
    def ok(self):
        return not self.failures

    @property
    def designs_per_second(self):
        if self.elapsed <= 0:
            return 0.0
        return len(self.records) / self.elapsed

    def as_envelope(self):
        return envelope(
            "fuzz-report",
            seed=self.seed,
            budget=self.budget,
            jobs=self.jobs,
            elapsed_seconds=round(self.elapsed, 3),
            designs_per_second=round(self.designs_per_second, 2),
            outcomes=dict(sorted(self.counts.items())),
            failures=self.failures,
            designs=[{k: r[k] for k in
                      ("index", "outcome", "lines", "features",
                       "lint_findings")}
                     for r in self.records],
        )


def run_sweep(seed, budget, jobs=1, shrink_failures=True,
              metrics=None, max_shrink_evals=400, progress=None,
              analyze=False, compiled=False):
    """Check ``budget`` designs; returns a :class:`FuzzReport`.

    ``analyze`` adds the elaborated-design analyzer as an oracle leg;
    ``compiled`` adds the specialized
    :class:`~repro.sim.compiled.CompiledKernel` as a third
    differential simulation leg (see
    :func:`repro.gen.oracle.check_source`).  Both flags are part of
    the task arguments, so jobs=N and serial sweeps stay
    byte-identical for the same (seed, budget, analyze, compiled)
    tuple.
    """
    registry = metrics if metrics is not None else NULL_REGISTRY
    m_designs = registry.counter(
        "fuzz_designs_total", "checked designs by oracle outcome")
    m_lines = registry.histogram(
        "fuzz_design_lines", "generated design size (source lines)",
        buckets=LINE_BUCKETS)
    m_seconds = registry.histogram(
        "fuzz_check_seconds", "oracle wall time per design",
        buckets=SECONDS_BUCKETS)
    m_shrink = registry.histogram(
        "fuzz_shrink_evals", "oracle evaluations per minimized "
        "failure", buckets=SHRINK_BUCKETS)

    report = FuzzReport(seed, budget, jobs)
    t0 = time.perf_counter()
    with ForkPool(jobs=jobs, on_error=_task_crash) as pool:
        records = pool.map_ordered(
            fuzz_task,
            [(seed, i, analyze, compiled) for i in range(budget)])
    for record in records:
        report.records.append(record)
        report.trace_events.extend(record.get("trace", ()))
        outcome = record["outcome"]
        report.counts[outcome] = report.counts.get(outcome, 0) + 1
        m_designs.labels(outcome=outcome).inc()
        m_lines.observe(record["lines"])
        m_seconds.observe(record["seconds"])
        if outcome in FAILURE_OUTCOMES:
            failure = _minimize(seed, record, shrink_failures,
                                max_shrink_evals, analyze=analyze,
                                compiled=compiled)
            if failure.get("shrunk"):
                report.shrunk += 1
                m_shrink.observe(failure["shrink_evals"])
            report.failures.append(failure)
            if progress is not None:
                progress(failure)
    report.elapsed = time.perf_counter() - t0
    return report


def _minimize(seed, record, shrink_failures, max_shrink_evals,
              analyze=False, compiled=False):
    """Shrink one failing design in the parent process."""
    index = record["index"]
    design = generate_for(seed, index)
    failure = {
        "index": index,
        "outcome": record["outcome"],
        "detail": record["detail"],
        "features": record["features"],
        "lines": record["lines"],
        "source": design.source,
        "top": design.top,
        "until_ns": design.until_ns,
        "replay": "repro fuzz --seed %d --budget %d%s%s"
                  % (seed, index + 1,
                     " --analyze" if analyze else "",
                     " --compiled" if compiled else ""),
        "shrunk": False,
    }
    if not shrink_failures or not record["choices"]:
        return failure

    want = record["outcome"]

    def still_fails(choices):
        try:
            replayed = replay(choices, seed=seed, index=index)
            return check_design(replayed, analyze=analyze,
                                compiled=compiled).outcome == want
        except Exception:
            return False

    try:
        shrunk = shrink(record["choices"], still_fails,
                        max_evals=max_shrink_evals)
    except ValueError as exc:  # flaky reproduction: report unshrunk
        failure["shrink_error"] = str(exc)
        return failure
    minimized = replay(shrunk.choices, seed=seed, index=index)
    failure.update({
        "shrunk": True,
        "shrink_evals": shrunk.evals,
        "shrink_exhausted": shrunk.exhausted,
        "min_source": minimized.source,
        "min_top": minimized.top,
        "min_until_ns": minimized.until_ns,
        "min_lines": minimized.lines,
        "min_choices": list(shrunk.choices),
    })
    return failure
