"""Decision-tape shrinking for failing designs.

The reducer never touches VHDL text.  It edits the *choice list* that
produced a failing design and replays it through the generator: since
replay folds every entry into range and treats an exhausted tape as
all-zeros, **any** integer list is a valid tape, so the reducer can
chop, zero, and decrease entries freely and always gets back some
design — usually a structurally smaller one (the builders put the
"off"/simplest alternative at choice value 0).

Three passes run to a fixpoint, cheapest first:

1. *chunk deletion* — drop windows of choices (halving window sizes),
   which removes whole features and trailing structure;
2. *zeroing* — force windows to 0, turning optional features off in
   place without shifting later draws;
3. *decrease* — per-position binary search toward 0, minimizing
   retained magnitudes (delays, constants, counts).

``predicate(choices) -> bool`` decides "still failing"; the caller
builds it from the oracle.  Evaluations are memoized and budgeted.
"""


class ShrinkResult:
    """The minimized tape plus how the search went."""

    __slots__ = ("choices", "evals", "improved", "exhausted")

    def __init__(self, choices, evals, improved, exhausted):
        self.choices = list(choices)
        self.evals = evals
        self.improved = improved
        self.exhausted = exhausted

    def __repr__(self):
        return "<ShrinkResult %d choice(s), %d eval(s)%s>" % (
            len(self.choices), self.evals,
            ", budget exhausted" if self.exhausted else "")


def shrink(choices, predicate, max_evals=400):
    """Minimize ``choices`` while ``predicate`` stays true.

    The initial tape must satisfy the predicate (the caller observed
    the failure on it); raises ``ValueError`` otherwise, because a
    flaky predicate would make every later step meaningless.
    """
    state = _Search(predicate, max_evals)
    current = [int(c) for c in choices]
    if not state.check(current):
        raise ValueError("initial choices do not satisfy the "
                         "failure predicate (flaky reproduction?)")
    best = list(current)
    changed = True
    while changed and not state.exhausted:
        changed = False
        for pass_fn in (_pass_delete, _pass_zero, _pass_decrease):
            best, did = pass_fn(best, state)
            changed = changed or did
            if state.exhausted:
                break
    return ShrinkResult(best, state.evals,
                        improved=_size(best) < _size(choices),
                        exhausted=state.exhausted)


def _size(choices):
    """Shrink order: fewer choices first, then smaller magnitudes."""
    return (len(choices), sum(choices))


class _Search:
    def __init__(self, predicate, max_evals):
        self.predicate = predicate
        self.max_evals = max_evals
        self.evals = 0
        self.exhausted = False
        self._seen = {}

    def check(self, choices):
        key = tuple(choices)
        if key in self._seen:
            return self._seen[key]
        if self.evals >= self.max_evals:
            self.exhausted = True
            return False
        self.evals += 1
        ok = bool(self.predicate(list(choices)))
        self._seen[key] = ok
        return ok


def _pass_delete(choices, state):
    """Drop windows of choices, largest windows first."""
    current = list(choices)
    improved = False
    window = max(1, len(current) // 2)
    while window >= 1:
        start = 0
        while start < len(current):
            if state.exhausted:
                return current, improved
            candidate = current[:start] + current[start + window:]
            if candidate != current and state.check(candidate):
                current = candidate
                improved = True
                # Same start now names the next window; don't advance.
            else:
                start += window
        window //= 2
    return current, improved


def _pass_zero(choices, state):
    """Zero windows in place (turns features off without shifting)."""
    current = list(choices)
    improved = False
    window = max(1, len(current) // 2)
    while window >= 1:
        for start in range(0, len(current), window):
            if state.exhausted:
                return current, improved
            candidate = list(current)
            segment = candidate[start:start + window]
            if all(v == 0 for v in segment):
                continue
            candidate[start:start + window] = [0] * len(segment)
            if state.check(candidate):
                current = candidate
                improved = True
        window //= 2
    return current, improved


def _pass_decrease(choices, state):
    """Binary-search each retained value toward zero."""
    current = list(choices)
    improved = False
    for pos in range(len(current)):
        if state.exhausted:
            return current, improved
        if current[pos] == 0:
            continue
        lo, hi = 0, current[pos]  # hi is known-true
        while lo < hi:
            mid = (lo + hi) // 2
            candidate = list(current)
            candidate[pos] = mid
            if state.check(candidate):
                hi = mid
            else:
                lo = mid + 1
            if state.exhausted:
                break
        if hi < current[pos]:
            current[pos] = hi
            improved = True
    return current, improved
