"""The differential conformance oracle.

Every generated design goes through the full pipeline: compile into a
fresh in-memory library, lint it, then elaborate and simulate it twice
— once on the activity :class:`~repro.sim.kernel.Kernel`, once on the
preserved O(design) :class:`~repro.sim.kernel.ScanKernel` — and (with
``compiled``) a third time on the specialized
:class:`~repro.sim.compiled.CompiledKernel` backend — and the
runs must agree on *everything observable*: end time, cycle and
delta counts, every signal's final value, per-signal event and
transaction counters, per-process resume counts, assertion report
records, the rendered VCD bytes, and the bridged ``sim_*`` metric
samples.

Outcomes (:data:`OUTCOMES`):

``ok``
    compiled, linted, and simulated byte-identically on both kernels.
``rejected``
    the compiler refused the design *with structured*
    :class:`~repro.diag.Diagnostic` records — the expected fate of
    deliberately-invalid injections.
``sim_error``
    both kernels raised the *same* runtime error (same type, same
    message) — a legitimate dynamic-semantics rejection.
``divergence``
    the kernels disagree — the bug class this harness exists to find.
``crash``
    a raw traceback anywhere in the pipeline, or a rejection without
    structured diagnostics.  Never acceptable.

``divergence`` and ``crash`` are the failing outcomes
(:data:`FAILURE_OUTCOMES`); the reducer minimizes any design that
produces one before it is reported.
"""

import traceback

from ..metrics import MetricsRegistry
from ..metrics.bridge import bridge_kernel
from ..sim.compiled import CompiledKernel
from ..sim.kernel import Kernel, ScanKernel, SimulationError
from ..sim.runtime import RuntimeError_
from ..sim.tracing import Tracer
from ..sim.vhdlio import AssertionFailure
from ..vhdl.compiler import CompileError, Compiler
from ..vhdl.elaborate import ElaborationError, Elaborator
from ..vhdl.library import LibraryManager

OUTCOMES = ("ok", "rejected", "sim_error", "divergence", "crash")
FAILURE_OUTCOMES = ("divergence", "crash")

#: femtoseconds per nanosecond.
NS = 1_000_000

#: Hard cap so a pathological design cannot wedge a sweep.
MAX_CYCLES = 200_000

#: Runtime errors that count as a legitimate (deterministic) dynamic
#: rejection when both kernels raise them identically.
_SIM_ERRORS = (SimulationError, ElaborationError, AssertionFailure,
               RuntimeError_)

#: ``sim_*`` metric families both kernels must report identically
#: (the same list the hand-written differential suite pins).
_METRIC_FAMILIES = (
    "sim_cycles_total",
    "sim_delta_cycles_total",
    "sim_deltas_per_timestep",
    "sim_process_resumes_total",
    "sim_process_resumes_by_process_total",
    "sim_signal_events_total",
    "sim_signal_transactions_total",
    "sim_now_fs",
    "sim_signals",
    "sim_processes",
)


class CheckResult:
    """What the oracle concluded about one design."""

    __slots__ = ("outcome", "detail", "diagnostics", "lint_findings",
                 "messages")

    def __init__(self, outcome, detail="", diagnostics=(),
                 lint_findings=0, messages=()):
        self.outcome = outcome
        self.detail = detail
        self.diagnostics = list(diagnostics)
        self.lint_findings = lint_findings
        self.messages = list(messages)

    @property
    def failed(self):
        return self.outcome in FAILURE_OUTCOMES

    def __repr__(self):
        return "<CheckResult %s%s>" % (
            self.outcome, ": " + self.detail if self.detail else "")


def check_design(design, analyze=False, compiled=False):
    """Run one :class:`~repro.gen.grammar.GeneratedDesign`."""
    return check_source(design.source, design.top,
                        until_ns=design.until_ns, analyze=analyze,
                        compiled=compiled)


def check_source(source, top, until_ns=1000, filename="<gen>",
                 analyze=False, compiled=False):
    """Compile → lint → differential-simulate one source text.

    With ``analyze`` the elaborated-design analyzer runs as an extra
    oracle leg: an analyzer exception is a ``crash``, and an RPE001
    combinational-loop finding on a design both kernels simulate to
    quiescence is a ``divergence`` — the static claim (the design
    would delta-storm) contradicts the observed dynamics.

    With ``compiled`` the specialized
    :class:`~repro.sim.compiled.CompiledKernel` backend runs as a
    third differential leg under the same byte-identity obligation.
    """
    library = LibraryManager(root=None)
    compiler = Compiler(library=library, strict=False)
    try:
        result = compiler.compile(source, filename=filename)
    except CompileError as exc:
        if exc.diagnostics:
            return CheckResult("rejected",
                              detail=_first_line(exc.messages),
                              diagnostics=exc.diagnostics,
                              messages=exc.messages)
        return CheckResult(
            "crash", detail="CompileError without structured "
            "diagnostics: %s" % _first_line(exc.messages),
            messages=exc.messages)
    except Exception:
        return CheckResult("crash", detail="compile raised:\n%s"
                           % traceback.format_exc())

    if not result.ok:
        if result.diagnostics:
            return CheckResult("rejected",
                              detail=_first_line(result.messages),
                              diagnostics=result.diagnostics,
                              messages=result.messages)
        return CheckResult(
            "crash", detail="compile failed without structured "
            "diagnostics: %s" % _first_line(result.messages),
            messages=result.messages)

    # -- lint (findings are information; exceptions are crashes) -------
    try:
        from ..analysis.engine import LintEngine

        findings = LintEngine(library=library).lint_library()
    except Exception:
        return CheckResult("crash", detail="lint raised:\n%s"
                           % traceback.format_exc())

    # -- static design analysis (optional oracle leg) ------------------
    design_findings = None
    if analyze:
        design_findings = _analyze(library, top)
        if isinstance(design_findings, CheckResult):  # analyzer crash
            design_findings.lint_findings = len(findings)
            return design_findings

    # -- differential simulation ---------------------------------------
    until_fs = until_ns * NS
    legs = [("Kernel", _simulate(Kernel, library, top, until_fs)),
            ("ScanKernel",
             _simulate(ScanKernel, library, top, until_fs))]
    if compiled:
        legs.append(("CompiledKernel",
                     _simulate(CompiledKernel, library, top, until_fs,
                               compile_design=True)))

    for _name, side in legs:
        if side.get("crash"):
            return CheckResult("crash", detail=side["crash"],
                              lint_findings=len(findings))

    if any(side.get("error") for _name, side in legs):
        errors = [side.get("error") for _name, side in legs]
        if all(err == errors[0] for err in errors) and errors[0]:
            return CheckResult(
                "sim_error", detail="%s: %s" % errors[0],
                lint_findings=len(findings))
        return CheckResult(
            "divergence",
            detail="error asymmetry: " + " ".join(
                "%s=%r" % (name, side.get("error"))
                for name, side in legs),
            lint_findings=len(findings))

    cal_name, cal = legs[0]
    for other_name, other in legs[1:]:
        mismatch = _compare(cal, other, cal_name, other_name)
        if mismatch is not None:
            return CheckResult("divergence", detail=mismatch,
                              lint_findings=len(findings))
    if design_findings:
        loops = [d for d in design_findings if d.code == "RPE001"]
        if loops:
            return CheckResult(
                "divergence",
                detail="static/dynamic divergence: analyzer reports "
                "%r but both kernels ran to quiescence" %
                loops[0].message,
                lint_findings=len(findings))
    return CheckResult("ok", lint_findings=len(findings))


def _analyze(library, top):
    """The analyzer leg: elaborate once more, flatten, run RPE rules.

    Returns the finding list, or a ``crash`` :class:`CheckResult`
    when the analyzer itself blows up.  A design the elaborator
    rejects yields no findings — the differential legs classify that
    fate themselves.
    """
    from ..analysis import LintEngine, build_netlist

    try:
        sim = Elaborator(library, kernel=Kernel()).elaborate(top)
    except _SIM_ERRORS:
        return []
    except Exception:
        return CheckResult("crash", detail="analyze elaborate "
                           "raised:\n%s" % traceback.format_exc())
    try:
        graph = build_netlist(sim.records)
        return LintEngine(library=library).lint_design(graph)
    except Exception:
        return CheckResult("crash", detail="analyze raised:\n%s"
                           % traceback.format_exc())


def _first_line(messages):
    return messages[0].splitlines()[0] if messages else ""


def _simulate(kernel_cls, library, top, until_fs,
              compile_design=False):
    """One side of the differential run; returns an observation dict.

    ``crash`` — raw traceback (harness failure).  ``error`` — a
    recognized dynamic error as ``(type_name, message)``.  Otherwise
    the full observable state.  With ``compile_design`` the kernel is
    specialized from the elaborated records before the first cycle
    (the compiled backend's extra step).
    """
    registry = MetricsRegistry()
    kernel = kernel_cls(metrics=registry)
    try:
        sim = Elaborator(library, kernel=kernel).elaborate(top)
        if compile_design:
            kernel.compile_design(sim.records)
        tracer = Tracer(kernel)
        sim.run(until_fs=until_fs, max_cycles=MAX_CYCLES)
    except _SIM_ERRORS as exc:
        return {"error": (type(exc).__name__, str(exc))}
    except Exception:
        return {"crash": "%s simulate raised:\n%s"
                % (kernel_cls.__name__, traceback.format_exc())}
    bridge_kernel(registry, kernel)
    snapshot = registry.snapshot()["metrics"]
    return {
        "error": None,
        "end": kernel.now,
        "cycles": kernel.cycles,
        "delta_cycles": kernel.delta_cycles,
        "truncated": kernel.truncated_transactions,
        "values": [(s.name, _image(s)) for s in kernel.signals],
        "events": [s.events for s in kernel.signals],
        "transactions": [s.transactions for s in kernel.signals],
        "resumes": [p.resumes for p in kernel.processes],
        "reports": list(kernel.logger.records),
        "vcd": tracer.vcd(),
        "metrics": {name: snapshot[name]["samples"]
                    for name in _METRIC_FAMILIES
                    if name in snapshot},
    }


def _image(signal):
    try:
        return signal.image(signal.value)
    except Exception:
        return repr(signal.value)


#: Comparison order: cheap scalar disagreements first so divergence
#: details name the most telling field.
_COMPARE_KEYS = ("end", "cycles", "delta_cycles", "truncated",
                 "values", "events", "transactions", "resumes",
                 "reports", "vcd", "metrics")


def _compare(cal, scan, cal_name="Kernel", scan_name="ScanKernel"):
    """First differing observable, or None when byte-identical."""
    for key in _COMPARE_KEYS:
        if cal[key] != scan[key]:
            return "%s differ: %s=%s %s=%s" % (
                key, cal_name, _clip(cal[key]),
                scan_name, _clip(scan[key]))
    return None


def _clip(value, limit=200):
    text = repr(value)
    return text if len(text) <= limit else text[:limit] + "..."
