"""The persisted regression corpus (``tests/gen/corpus/*.vhd``).

Each entry is a plain VHDL file whose leading comment lines carry the
replay contract as ``-- repro-fuzz: key=value`` pairs::

    -- repro-fuzz: expect=ok top=fz_top until_ns=500
    -- repro-fuzz: seed=7 index=12
    -- repro-fuzz: note=resolved bus with three drivers

``expect`` is the pinned oracle outcome (``ok``, ``rejected``, or
``sim_error`` — a corpus never *expects* a failure outcome: a fixed
divergence is pinned with the outcome it has after the fix).  The
pytest replay (``tests/gen/test_corpus.py``) runs every entry back
through :func:`repro.gen.oracle.check_source` and asserts the outcome
matches and is never ``divergence``/``crash``.
"""

import os
import re

from .oracle import check_source

HEADER_PREFIX = "-- repro-fuzz:"

#: Outcomes a corpus entry may pin.
PINNABLE = ("ok", "rejected", "sim_error")

_KV = re.compile(r"(\w+)=(\S.*?)(?=\s+\w+=|\s*$)")


class CorpusEntry:
    """One parsed corpus file."""

    __slots__ = ("name", "path", "source", "meta")

    def __init__(self, name, path, source, meta):
        self.name = name
        self.path = path
        self.source = source
        self.meta = dict(meta)

    @property
    def expect(self):
        return self.meta.get("expect", "ok")

    @property
    def top(self):
        return self.meta.get("top", "fz_top")

    @property
    def until_ns(self):
        return int(self.meta.get("until_ns", 1000))

    def check(self):
        """Replay through the oracle; returns the CheckResult."""
        return check_source(self.source, self.top,
                            until_ns=self.until_ns,
                            filename=self.path or self.name)

    def __repr__(self):
        return "<CorpusEntry %s expect=%s>" % (self.name, self.expect)


def render_entry(design, result, note=None):
    """The corpus file text for a checked design."""
    if result.outcome not in PINNABLE:
        raise ValueError("cannot pin outcome %r — fix the failure "
                         "first, then pin the passing design"
                         % result.outcome)
    lines = [
        "%s expect=%s top=%s until_ns=%d" % (
            HEADER_PREFIX, result.outcome, design.top,
            design.until_ns),
        "%s seed=%d index=%d" % (HEADER_PREFIX, design.seed,
                                 design.index),
    ]
    if note:
        lines.append("%s note=%s" % (HEADER_PREFIX,
                                     " ".join(note.split())))
    return "\n".join(lines) + "\n" + design.source


def save(directory, design, result, name=None, note=None):
    """Write one entry; returns its path."""
    os.makedirs(directory, exist_ok=True)
    if name is None:
        name = "seed%d_i%d" % (design.seed, design.index)
    path = os.path.join(directory, "%s.vhd" % name)
    with open(path, "w") as handle:
        handle.write(render_entry(design, result, note=note))
    return path


def parse_entry(text, name="<corpus>", path=None):
    meta = {}
    body = []
    for line in text.splitlines(keepends=True):
        stripped = line.strip()
        if stripped.startswith(HEADER_PREFIX):
            rest = stripped[len(HEADER_PREFIX):].strip()
            for key, value in _KV.findall(rest):
                meta[key] = value
        else:
            body.append(line)
    return CorpusEntry(name, path, "".join(body).lstrip("\n"), meta)


def load_entry(path):
    with open(path) as handle:
        text = handle.read()
    name = os.path.splitext(os.path.basename(path))[0]
    return parse_entry(text, name=name, path=path)


def iter_corpus(directory):
    """Entries of a corpus directory, sorted by name."""
    if not os.path.isdir(directory):
        return []
    return [load_entry(os.path.join(directory, fn))
            for fn in sorted(os.listdir(directory))
            if fn.endswith(".vhd")]
