"""`repro.gen` — generative VHDL corpus + differential conformance.

The subsystem has five small parts:

- :mod:`~repro.gen.tape` — the seeded, replayable decision tape;
- :mod:`~repro.gen.grammar` — typed design builders drawing from it;
- :mod:`~repro.gen.oracle` — compile → lint → both-kernels check;
- :mod:`~repro.gen.reducer` — tape-level shrinking of failures;
- :mod:`~repro.gen.corpus` — the persisted ``tests/gen/corpus`` store;
- :mod:`~repro.gen.runner` — the sweep engine behind ``repro fuzz``.
"""

from .grammar import GeneratedDesign, generate_design, generate_for, replay
from .oracle import CheckResult, check_design, check_source
from .tape import DecisionTape, mix_seed

__all__ = [
    "CheckResult",
    "DecisionTape",
    "GeneratedDesign",
    "check_design",
    "check_source",
    "generate_design",
    "generate_for",
    "mix_seed",
    "replay",
]
