"""The decision tape: seeded, replayable randomness for generation.

Every random decision the design generator makes is one ``draw(n)``
against a :class:`DecisionTape`.  In *generate* mode the tape pulls
values from a self-contained splitmix64 stream (no dependence on
``random``'s cross-version behaviour, so the same seed produces the
same byte sequence on every platform and Python version) and records
each drawn value.  In *replay* mode the tape feeds back a recorded (or
reduced) choice list: values are folded into range with ``% n`` and an
exhausted tape keeps returning 0, so **every** integer list is a valid
tape.  That totality is what makes shrinking simple — the reducer can
chop, zero, and decrease entries freely (:mod:`repro.gen.reducer`) and
the generator still produces *some* design, usually a smaller one.
"""

MASK64 = (1 << 64) - 1


def splitmix64(x):
    """One splitmix64 step: (next_state, output) — pure integers."""
    x = (x + 0x9E3779B97F4B7C15) & MASK64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
    return x, z ^ (z >> 31)


def mix_seed(seed, index):
    """A stream seed for design ``index`` of base ``seed``.

    Derivation depends only on (seed, index) — never on worker
    identity or completion order — so a ``--jobs 4`` sweep generates
    byte-identical designs to a serial one.
    """
    state = (seed & MASK64) ^ 0xA076_1D64_78BD_642F
    state, out = splitmix64(state ^ ((index + 1) * 0x9DDF_EA08_EB38_2D69))
    _, out2 = splitmix64(state)
    return (out ^ (out2 << 1)) & MASK64


class TapeExhausted(Exception):
    """Internal marker: only raised when ``strict`` replay is on."""


class DecisionTape:
    """A recorded stream of bounded integer choices.

    ``DecisionTape(seed=s)`` — generate mode.
    ``DecisionTape.replaying(choices)`` — replay mode (shrinking).

    After a generation (or replay) pass, ``tape.choices`` is the exact
    decision list that reproduces the run.
    """

    __slots__ = ("choices", "_state", "_replay", "_pos", "draws")

    def __init__(self, seed=0):
        self.choices = []
        self._state = (seed & MASK64) or 0x6A09E667F3BCC909
        self._replay = None
        self._pos = 0
        self.draws = 0

    @classmethod
    def replaying(cls, choices):
        tape = cls(0)
        tape._replay = [int(c) for c in choices]
        return tape

    @property
    def replay_mode(self):
        return self._replay is not None

    def draw(self, n):
        """The next decision in ``[0, n)``; records what it drew."""
        if n <= 0:
            raise ValueError("draw needs a positive range, got %r" % n)
        if self._replay is not None:
            if self._pos < len(self._replay):
                raw = self._replay[self._pos]
                self._pos += 1
            else:
                raw = 0  # exhausted tape: the minimal choice
            value = raw % n
        else:
            self._state, out = splitmix64(self._state)
            value = out % n
        self.draws += 1
        self.choices.append(value)
        return value

    # -- conveniences (all reduce to draw) ------------------------------

    def randint(self, lo, hi):
        """Inclusive [lo, hi]."""
        if hi < lo:
            raise ValueError("empty range [%d, %d]" % (lo, hi))
        return lo + self.draw(hi - lo + 1)

    def choice(self, seq):
        if not seq:
            raise ValueError("choice from an empty sequence")
        return seq[self.draw(len(seq))]

    def weighted(self, pairs):
        """Pick from ``((item, weight), ...)`` by integer weights.

        A zeroed tape position lands in the *first* pair, so put the
        simplest alternative first: shrinking then steers designs
        toward it.
        """
        total = sum(w for _, w in pairs)
        if total <= 0:
            raise ValueError("weights sum to %r" % total)
        ticket = self.draw(total)
        for item, weight in pairs:
            if ticket < weight:
                return item
            ticket -= weight
        return pairs[-1][0]  # unreachable; keeps the checker honest

    def chance(self, numerator, denominator):
        """True with probability numerator/denominator.

        Encoded so the zero draw means **False** — shrinking turns
        optional features off.
        """
        if not 0 <= numerator <= denominator:
            raise ValueError("bad chance %d/%d"
                             % (numerator, denominator))
        if numerator == 0:
            return False
        return self.draw(denominator) >= denominator - numerator
