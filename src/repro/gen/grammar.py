"""Typed builders for randomized-but-valid VHDL designs.

Every design is produced by :func:`generate_design` from a
:class:`~repro.gen.tape.DecisionTape`: the builders draw structure
decisions in a fixed order, assemble a small typed plan (packages,
leaf entities, an optional ``mid`` wrapper, a ``fz_top`` bench, an
optional configuration unit), and render it to source text.  The same
tape therefore always yields byte-identical VHDL.

The feature mix deliberately concentrates on the paper's §3 hard
cases: generics with defaults and ``generic map`` overrides, multiple
architectures per entity, configuration *specifications* and
configuration *units*, nested component bindings (top → mid → leaf),
resolution functions driven by several concurrent sources, and the
full wait-statement topology (sensitivity lists, ``wait on``, ``wait
for``, ``wait until``, terminal ``wait``).  A small fraction of
designs injects a known-unsupported or ill-formed construct (a
``generate`` statement, an unknown name, a bad initializer) to pin the
*rejection* path: the conformance oracle requires those to fail with
structured diagnostics, never a raw traceback.
"""

from .tape import DecisionTape, mix_seed

#: Modulus keeping every generated integer expression in range.
MOD = 1000

#: Simulation horizons (ns) the oracle runs generated designs to.
UNTIL_CHOICES = (300, 500, 1000)


class LeafPlan:
    """One leaf entity: fixed (clk, din, dout) interface."""

    __slots__ = ("name", "generic_default", "archs", "uses_pkg")

    def __init__(self, name):
        self.name = name
        self.generic_default = None  # int or None
        self.archs = []  # [(arch_name, kind, params-dict)]
        self.uses_pkg = False

    @property
    def has_generic(self):
        return self.generic_default is not None


class GeneratedDesign:
    """The rendered design plus everything needed to replay it."""

    __slots__ = ("source", "top", "until_ns", "features", "choices",
                 "seed", "index")

    def __init__(self, source, top, until_ns, features, choices,
                 seed, index):
        self.source = source
        self.top = top
        self.until_ns = until_ns
        self.features = list(features)
        self.choices = list(choices)
        self.seed = seed
        self.index = index

    @property
    def lines(self):
        """Non-blank, non-comment source lines (Figure 2 counting)."""
        n = 0
        for line in self.source.splitlines():
            stripped = line.strip()
            if stripped and not stripped.startswith("--"):
                n += 1
        return n

    def __repr__(self):
        return "<GeneratedDesign top=%s %d line(s) features=%s>" % (
            self.top, self.lines, ",".join(self.features) or "-")


def generate_for(seed, index):
    """The design at (sweep seed, index) — order-independent."""
    tape = DecisionTape(mix_seed(seed, index))
    return generate_design(tape, seed=seed, index=index)


def replay(choices, seed=0, index=0):
    """Regenerate a design from a recorded (or reduced) tape."""
    tape = DecisionTape.replaying(choices)
    return generate_design(tape, seed=seed, index=index)


def generate_design(tape, seed=0, index=0):
    """Draw one design from ``tape``.

    Draw order is the contract: the reducer edits raw choice lists,
    so every decision must be consumed in a deterministic sequence
    (data-dependent *skipping* is fine — replay recomputes the same
    skips from the same earlier choices).
    """
    features = []
    body = []

    # -- global knobs ----------------------------------------------------
    until_ns = tape.choice(UNTIL_CHOICES)
    use_pkg = tape.chance(1, 3)
    n_leaves = 1 + tape.draw(2)  # 1 or 2 leaf entities

    # -- optional package ------------------------------------------------
    pkg_const = None
    pkg_fn = False
    if use_pkg:
        features.append("package")
        pkg_const = tape.randint(1, 9)
        pkg_fn = tape.chance(1, 2)
        body.append("package fz_pkg is")
        body.append("  constant k0 : integer := %d;" % pkg_const)
        if pkg_fn:
            body.append(
                "  function step (x : integer) return integer;")
        body.append("end fz_pkg;")
        if pkg_fn:
            body.append("package body fz_pkg is")
            body.append(
                "  function step (x : integer) return integer is")
            body.append("  begin")
            body.append("    return (x + %d) mod %d;"
                        % (tape.randint(1, 5), MOD))
            body.append("  end step;")
            body.append("end fz_pkg;")
        body.append("")

    # -- leaf entities ---------------------------------------------------
    leaves = []
    for li in range(n_leaves):
        leaf = LeafPlan("fz_leaf%d" % li)
        if tape.chance(1, 2):
            leaf.generic_default = tape.randint(1, 7)
        leaf.uses_pkg = use_pkg and tape.chance(1, 2)
        n_archs = 1 + tape.draw(2)
        for ai in range(n_archs):
            kind = tape.weighted((
                ("concurrent", 3),
                ("clocked", 3),
                ("comb_process", 2),
                ("conditional", 2),
            ))
            params = {
                "k": tape.randint(1, 9),
                "j": tape.randint(0, 9),
                "delay": tape.randint(1, 9),
                "threshold": tape.randint(1, 50),
            }
            leaf.archs.append(("fz_a%d" % ai, kind, params))
        if n_archs > 1:
            features.append("two_arch")
        if leaf.has_generic:
            features.append("generics")
        leaves.append(leaf)
        body.extend(_render_leaf(leaf, pkg_fn))
        body.append("")

    # -- optional mid wrapper (nested component binding) -----------------
    use_mid = tape.chance(1, 2)
    mid_children = []
    if use_mid:
        features.append("mid")
        mid_children = [tape.choice(leaves)]
        if len(leaves) > 1 and tape.chance(1, 2):
            mid_children.append(tape.choice(leaves))
        mid_binds = []
        for mi, child in enumerate(mid_children):
            if tape.chance(1, 2):
                mid_binds.append((mi, tape.choice(child.archs)[0]))
        body.extend(_render_mid(mid_children, dict(mid_binds)))
        body.append("")

    # -- top bench -------------------------------------------------------
    n_stages = 1 + tape.draw(3)  # 1..3 instances in the chain
    stage_children = []
    for _ in range(n_stages):
        if use_mid and tape.chance(1, 2):
            stage_children.append(None)  # None = the mid wrapper
        else:
            stage_children.append(tape.choice(leaves))

    clock_period = tape.choice((5, 7, 10))
    # Drive of d0: a stimulus process or a delayed feedback loop.
    feedback = tape.chance(1, 3)
    if feedback:
        features.append("feedback")
        feedback_delay = tape.randint(2, 9)
        feedback_transport = tape.chance(1, 2)
        if feedback_transport:
            features.append("transport")
        stim_kind = None
    else:
        feedback_delay = 0
        feedback_transport = False
        stim_kind = tape.weighted((
            ("steps", 3), ("loop", 3), ("until", 2),
        ))

    # Per-instance configuration specifications for leaf instances.
    config_specs = []
    for si, child in enumerate(stage_children):
        if child is not None and len(child.archs) > 1 \
                and tape.chance(1, 2):
            config_specs.append(
                (si, child, tape.choice(child.archs)[0]))
    if config_specs:
        features.append("config_spec")

    # Generic-map overrides for leaf instances that declared one.
    generic_maps = {}
    for si, child in enumerate(stage_children):
        if child is not None and child.has_generic \
                and tape.chance(1, 2):
            generic_maps[si] = tape.randint(1, 20)

    resolved_bus = tape.chance(1, 4)
    bus_events = []
    if resolved_bus:
        features.append("resolved_bus")
        n_drivers = 2 + tape.draw(2)
        t = 0
        for _ in range(n_drivers):
            t += tape.randint(3, 20)
            bus_events.append((tape.choice(("'0'", "'1'")), t))

    use_assert = tape.chance(1, 3)
    use_monitor = tape.chance(1, 3)
    if use_monitor:
        features.append("handshake")

    # A configuration unit needs a directly-bound leaf instance.
    direct_leaves = [
        (si, child) for si, child in enumerate(stage_children)
        if child is not None
    ]
    config_unit = None
    if direct_leaves and tape.chance(1, 4):
        si, child = tape.choice(direct_leaves)
        config_unit = (si, child, tape.choice(child.archs)[0])
        features.append("config_unit")

    # -- rare invalid injection -----------------------------------------
    invalid = None
    if tape.chance(1, 16):
        invalid = tape.choice((
            "generate", "unknown_name", "bad_init", "unknown_type",
        ))
        features.append("invalid:%s" % invalid)

    body.extend(_render_top(
        stage_children, clock_period, feedback, feedback_delay,
        feedback_transport, stim_kind, config_specs, generic_maps,
        resolved_bus, bus_events, use_assert, use_monitor,
        pkg_const if use_pkg else None, invalid, tape))

    top = "fz_top"
    if config_unit is not None:
        si, child, arch = config_unit
        body.append("")
        body.append("configuration fz_cfg of fz_top is")
        body.append("  for bench")
        body.append("    for u%d : %s use entity work.%s(%s);"
                    % (si, child.name, child.name, arch))
        body.append("    end for;")
        body.append("  end for;")
        body.append("end fz_cfg;")
        top = "fz_cfg"

    source = "\n".join(body) + "\n"
    return GeneratedDesign(source, top, until_ns, features,
                           tape.choices, seed, index)


# -- renderers -----------------------------------------------------------


def _leaf_expr(kind, params, generic, pkg_fn, uses_pkg):
    base = "din"
    if generic:
        base = "(din + g)"
    expr = "(%s * %d + %d) mod %d" % (base, params["k"], params["j"],
                                      MOD)
    if pkg_fn and uses_pkg:
        expr = "step(%s)" % expr
    return expr


def _render_leaf(leaf, pkg_fn):
    out = []
    if leaf.uses_pkg:
        out.append("use work.fz_pkg.all;")
    out.append("entity %s is" % leaf.name)
    if leaf.has_generic:
        out.append("  generic ( g : integer := %d );"
                   % leaf.generic_default)
    out.append("  port ( clk : in bit; din : in integer; "
               "dout : out integer );")
    out.append("end %s;" % leaf.name)
    for arch_name, kind, params in leaf.archs:
        expr = _leaf_expr(kind, params, leaf.has_generic, pkg_fn,
                          leaf.uses_pkg)
        out.append("architecture %s of %s is" % (arch_name, leaf.name))
        out.append("begin")
        if kind == "concurrent":
            out.append("  dout <= %s after %d ns;"
                       % (expr, params["delay"]))
        elif kind == "clocked":
            out.append("  tick : process (clk)")
            out.append("  begin")
            out.append("    if clk'event and clk = '1' then")
            out.append("      dout <= %s;" % expr)
            out.append("    end if;")
            out.append("  end process;")
        elif kind == "comb_process":
            out.append("  comb : process (din)")
            out.append("  begin")
            out.append("    dout <= %s after %d ns;"
                       % (expr, params["delay"]))
            out.append("  end process;")
        else:  # conditional concurrent assignment
            out.append("  dout <= %s when din > %d else %d;"
                       % (expr, params["threshold"], params["j"]))
        out.append("end %s;" % arch_name)
    return out


def _component_decl(leaf_like):
    """The component declaration matching a leaf (or mid) interface."""
    out = ["  component %s" % leaf_like[0]]
    if leaf_like[1] is not None:
        out.append("    generic ( g : integer := %d );" % leaf_like[1])
    out.append("    port ( clk : in bit; din : in integer; "
               "dout : out integer );")
    out.append("  end component;")
    return out


def _render_mid(children, binds):
    """The ``fz_mid`` wrapper chaining its children (nested binding)."""
    out = ["entity fz_mid is",
           "  port ( clk : in bit; din : in integer; "
           "dout : out integer );",
           "end fz_mid;",
           "architecture wrap of fz_mid is"]
    declared = []
    for child in children:
        if child.name not in declared:
            declared.append(child.name)
            out.extend(_component_decl(
                (child.name,
                 child.generic_default if child.has_generic else None)))
    for mi, arch in sorted(binds.items()):
        out.append("  for w%d : %s use entity work.%s(%s);"
                   % (mi, children[mi].name, children[mi].name, arch))
    for mi in range(len(children) - 1):
        out.append("  signal m%d : integer := 0;" % mi)
    out.append("begin")
    prev = "din"
    for mi, child in enumerate(children):
        last = mi == len(children) - 1
        target = "dout" if last else "m%d" % mi
        out.append("  w%d : %s port map ( clk => clk, din => %s, "
                   "dout => %s );" % (mi, child.name, prev, target))
        prev = target
    out.append("end wrap;")
    return out


def _render_top(stage_children, clock_period, feedback, feedback_delay,
                feedback_transport, stim_kind, config_specs,
                generic_maps, resolved_bus, bus_events, use_assert,
                use_monitor, pkg_const, invalid, tape):
    out = []
    if pkg_const is not None:
        out.append("use work.fz_pkg.all;")
    out.extend(["entity fz_top is", "end fz_top;",
                "architecture bench of fz_top is"])
    declared = []
    for child in stage_children:
        name = "fz_mid" if child is None else child.name
        if name in declared:
            continue
        declared.append(name)
        if child is None:
            out.extend(_component_decl(("fz_mid", None)))
        else:
            out.extend(_component_decl(
                (child.name,
                 child.generic_default if child.has_generic else None)))
    for si, child, arch in config_specs:
        out.append("  for u%d : %s use entity work.%s(%s);"
                   % (si, child.name, child.name, arch))
    if resolved_bus:
        out.append("  function wired_or (bits : bit_vector) "
                   "return bit is")
        out.append("  begin")
        out.append("    for i in bits'range loop")
        out.append("      if bits(i) = '1' then")
        out.append("        return '1';")
        out.append("      end if;")
        out.append("    end loop;")
        out.append("    return '0';")
        out.append("  end wired_or;")
        out.append("  subtype rbit is wired_or bit;")
    out.append("  signal clk : bit := '0';")
    for si in range(len(stage_children) + 1):
        out.append("  signal d%d : integer := 0;" % si)
    if resolved_bus:
        out.append("  signal bus0 : rbit := '0';")
    if use_monitor:
        out.append("  signal hits : integer := 0;")
    if pkg_const is not None:
        out.append("  signal kmirror : integer := k0;")
    if invalid == "unknown_type":
        out.append("  signal ghost : no_such_type := 0;")
    elif invalid == "unknown_name":
        out.append("  signal ghost : integer := missing_constant;")
    elif invalid == "bad_init":
        out.append("  signal ghost : integer := ;")
    out.append("begin")

    out.append("  clock : process")
    out.append("  begin")
    out.append("    clk <= not clk after %d ns;" % clock_period)
    out.append("    wait on clk;")
    out.append("  end process;")

    n = len(stage_children)
    for si, child in enumerate(stage_children):
        name = "fz_mid" if child is None else child.name
        gmap = ""
        if si in generic_maps:
            gmap = "generic map ( g => %d ) " % generic_maps[si]
        out.append("  u%d : %s %sport map ( clk => clk, din => d%d, "
                   "dout => d%d );" % (si, name, gmap, si, si + 1))

    if feedback:
        kw = "transport " if feedback_transport else ""
        out.append("  feedback : d0 <= %s(d%d + 1) mod %d after "
                   "%d ns;" % (kw, n, MOD, feedback_delay))
    else:
        out.extend(_render_stimulus(stim_kind, tape))

    if resolved_bus:
        mid = max(1, len(bus_events) // 2)
        for di, group in enumerate((bus_events[:mid],
                                    bus_events[mid:])):
            if not group:
                continue
            wave = ", ".join("%s after %d ns" % (v, t)
                             for v, t in group)
            out.append("  drv%d : bus0 <= %s;" % (di, wave))

    if use_monitor:
        out.append("  mon : process")
        out.append("  begin")
        out.append("    wait until d%d /= 0;" % n)
        out.append("    hits <= hits + 1;")
        out.append("    wait;")
        out.append("  end process;")

    if use_assert:
        out.append("  watch : assert d%d < %d" % (n, MOD))
        out.append("    report \"stage out of range\" severity note;")

    if pkg_const is not None:
        out.append("  kmix : kmirror <= (d%d + k0) mod %d;"
                   % (n, MOD))

    if invalid == "generate":
        out.append("  gen0 : for i in 0 to 3 generate")
        out.append("    d%d <= d0;" % n)
        out.append("  end generate;")

    out.append("end bench;")
    return out


def _render_stimulus(stim_kind, tape):
    out = ["  stim : process"]
    if stim_kind == "steps":
        n_steps = 1 + tape.draw(3)
        out.append("  begin")
        for _ in range(n_steps):
            out.append("    wait for %d ns;" % tape.randint(3, 30))
            out.append("    d0 <= %d;" % tape.randint(1, MOD - 1))
        out.append("    wait;")
    elif stim_kind == "loop":
        n_iter = tape.randint(2, 8)
        step = tape.randint(1, 9)
        period = tape.randint(4, 25)
        out.append("    variable v : integer := 0;")
        out.append("  begin")
        out.append("    for i in 1 to %d loop" % n_iter)
        out.append("      v := (v + %d) mod %d;" % (step, MOD))
        out.append("      d0 <= v;")
        out.append("      wait for %d ns;" % period)
        out.append("    end loop;")
        out.append("    wait;")
    else:  # "until": edge-synchronized bursts
        n_iter = tape.randint(2, 6)
        step = tape.randint(1, 9)
        out.append("    variable v : integer := 0;")
        out.append("  begin")
        out.append("    for i in 1 to %d loop" % n_iter)
        out.append("      wait until clk = '1';")
        out.append("      v := (v + %d) mod %d;" % (step, MOD))
        out.append("      d0 <= v;")
        out.append("    end loop;")
        out.append("    wait;")
    out.append("  end process;")
    return out
