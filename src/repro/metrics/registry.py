"""A dependency-free metrics registry: counters, gauges, histograms.

The paper's headline claim is quantitative — compile and simulation
speed "not unacceptably slower" than hand-written compilers (§5) — so
the reproduction needs a uniform way to *measure* itself.  This module
is the single sink every subsystem reports into:

- :class:`Counter` — monotonically increasing totals (cycles run,
  cache hits, rule firings);
- :class:`Gauge` — point-in-time values (worker utilization, truncated
  transactions);
- :class:`Histogram` — distributions over fixed log-scale buckets
  (delta cycles per timestep, per-process execution time).

Every metric is a *family*: ``family.labels(process="clk")`` returns a
child carrying those labels, so one family covers all signals or all
processes.  The unlabeled family itself behaves as its own child for
the common no-label case.

Two hard requirements shape the design:

1. **Zero overhead when disabled.**  :data:`NULL_REGISTRY` (a
   :class:`NullRegistry`) hands out a shared no-op metric whose
   ``inc``/``set``/``observe`` bodies are empty — hot loops keep a
   child handle and pay one no-op method call, nothing else.  Code
   gates genuinely expensive measurement (``perf_counter`` pairs) on
   ``registry.enabled``.
2. **One snapshot format.**  :meth:`MetricsRegistry.snapshot` emits
   the ``repro-metrics/1`` JSON envelope shared by ``repro stats
   --json``, ``--metrics-out``, and the ``BENCH_*.json`` benchmark
   schema; :func:`repro.metrics.prometheus.render_prometheus` renders
   the same data in Prometheus text exposition format.
"""

import time

SCHEMA = "repro-metrics/1"


def envelope(kind, **fields):
    """The common ``repro-metrics/1`` JSON envelope."""
    data = {"schema": SCHEMA, "kind": kind,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z")}
    data.update(fields)
    return data


def log125_buckets(lo=1, hi=10**6):
    """The fixed log-scale 1-2-5 bucket bounds in [lo, hi]."""
    bounds = []
    decade = 1
    while decade <= hi:
        for mult in (1, 2, 5):
            b = decade * mult
            if lo <= b <= hi:
                bounds.append(b)
        decade *= 10
    return tuple(bounds)


#: Default histogram bounds: 1-2-5 series, six decades.
DEFAULT_BUCKETS = log125_buckets(1, 10**6)

#: Bounds for second-valued histograms (1 µs .. 10 s).
SECONDS_BUCKETS = tuple(b * 1e-6 for b in log125_buckets(1, 10**7))


def _label_key(labels):
    return tuple(sorted(labels.items()))


class _Family:
    """Shared family behaviour: named children keyed by label sets.

    A family with no labels acts as its own single child, so
    ``registry.counter("x").inc()`` works without ``labels()``.
    """

    kind = None

    def __init__(self, name, help=""):
        self.name = name
        self.help = help
        self._children = {}

    def labels(self, **labels):
        """The child metric carrying ``labels`` (created on demand)."""
        if not labels:
            return self
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _samples(self):
        """[(labels-dict, child)] including the unlabeled self."""
        out = []
        if self._has_data():
            out.append(({}, self))
        for key, child in sorted(self._children.items()):
            out.append((dict(key), child))
        return out

    def describe(self):
        """The snapshot entry for this family."""
        samples = []
        for labels, child in self._samples():
            sample = child._sample_dict()
            sample["labels"] = labels
            samples.append(sample)
        return {"type": self.kind, "help": self.help,
                "samples": samples}


class Counter(_Family):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name, help=""):
        _Family.__init__(self, name, help)
        self.value = 0

    def _make_child(self):
        return Counter(self.name, self.help)

    def inc(self, n=1):
        self.value += n

    def set_total(self, value):
        """Harvest-style update: adopt an externally maintained total.

        Bridges (AGObserver, build cache, per-signal counts) keep
        plain integer counters in their own hot paths and publish them
        here at snapshot time; the metric stays a counter semantically.
        """
        self.value = value

    def _has_data(self):
        return self.value != 0 or not self._children

    def _sample_dict(self):
        return {"value": self.value}


class Gauge(_Family):
    """A point-in-time value that can go up and down."""

    kind = "gauge"

    def __init__(self, name, help=""):
        _Family.__init__(self, name, help)
        self.value = 0

    def _make_child(self):
        return Gauge(self.name, self.help)

    def set(self, value):
        self.value = value

    def inc(self, n=1):
        self.value += n

    def dec(self, n=1):
        self.value -= n

    def _has_data(self):
        return self.value != 0 or not self._children

    def _sample_dict(self):
        return {"value": self.value}


class Histogram(_Family):
    """A distribution over fixed (log-scale by default) buckets."""

    kind = "histogram"

    def __init__(self, name, help="", buckets=DEFAULT_BUCKETS):
        _Family.__init__(self, name, help)
        self.bounds = tuple(sorted(buckets))
        self.counts = [0] * (len(self.bounds) + 1)  # +1: +Inf
        self.count = 0
        self.sum = 0
        self.min = None
        self.max = None
        self.exemplar = None  # {"trace_id", "value"} of the max obs

    def _make_child(self):
        return Histogram(self.name, self.help, self.bounds)

    def observe(self, value, trace_id=None):
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
            # OpenMetrics-style exemplar: the slowest observation
            # keeps the trace that caused it, so "p99 spiked" links
            # straight to a span tree in the ring / trace endpoint.
            if trace_id is not None:
                self.exemplar = {"trace_id": trace_id, "value": value}
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bound >= value
            mid = (lo + hi) // 2
            if self.bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1

    def _has_data(self):
        return self.count != 0 or not self._children

    def _sample_dict(self):
        buckets = []
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            buckets.append([bound, running])
        running += self.counts[-1]
        buckets.append(["+Inf", running])
        sample = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,  # cumulative, Prometheus-style
        }
        if self.exemplar is not None:
            sample["exemplar"] = dict(self.exemplar)
        return sample


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """The live registry: named metric families, one snapshot."""

    enabled = True

    def __init__(self):
        self._metrics = {}  # name -> family (insertion-ordered)

    # -- registration ------------------------------------------------------

    def _get(self, name, kind, help, **kwargs):
        family = self._metrics.get(name)
        if family is not None:
            if family.kind != kind:
                raise ValueError(
                    "metric %r already registered as a %s, not a %s"
                    % (name, family.kind, kind))
            return family
        family = _KINDS[kind](name, help, **kwargs)
        self._metrics[name] = family
        return family

    def counter(self, name, help=""):
        return self._get(name, "counter", help)

    def gauge(self, name, help=""):
        return self._get(name, "gauge", help)

    def histogram(self, name, help="", buckets=DEFAULT_BUCKETS):
        return self._get(name, "histogram", help, buckets=buckets)

    def get(self, name):
        return self._metrics.get(name)

    def names(self):
        return list(self._metrics)

    # -- export ------------------------------------------------------------

    def snapshot(self, **extra):
        """The ``repro-metrics/1`` snapshot of every family."""
        metrics = {
            name: family.describe()
            for name, family in self._metrics.items()
        }
        return envelope("metrics-snapshot", metrics=metrics, **extra)

    def render_prometheus(self):
        from .prometheus import render_prometheus

        return render_prometheus(self.snapshot())

    def summary(self, title="metrics"):
        """A short human-readable table of scalar samples."""
        lines = ["%s: %d famil(ies)" % (title, len(self._metrics))]
        for name, family in self._metrics.items():
            for labels, child in family._samples():
                tag = "{%s}" % ",".join(
                    "%s=%s" % kv for kv in sorted(labels.items())
                ) if labels else ""
                if family.kind == "histogram":
                    lines.append(
                        "  %-44s count=%d sum=%s"
                        % (name + tag, child.count, _short(child.sum)))
                else:
                    lines.append("  %-44s %s"
                                 % (name + tag, _short(child.value)))
        return "\n".join(lines)


def _short(value):
    if isinstance(value, float):
        return "%.6g" % value
    return str(value)


class _NullMetric:
    """The shared do-nothing metric the null registry hands out."""

    __slots__ = ()

    def labels(self, **labels):
        return self

    def inc(self, n=1):
        pass

    def dec(self, n=1):
        pass

    def set(self, value):
        pass

    def set_total(self, value):
        pass

    def observe(self, value, trace_id=None):
        pass

    value = 0
    count = 0
    sum = 0


NULL_METRIC = _NullMetric()


class NullRegistry:
    """The disabled-path registry: every metric is the no-op metric.

    Hot loops keep child handles, so the enabled/disabled decision is
    made once at construction; afterwards the only cost of disabled
    metrics is an empty method call.
    """

    enabled = False

    def counter(self, name, help=""):
        return NULL_METRIC

    def gauge(self, name, help=""):
        return NULL_METRIC

    def histogram(self, name, help="", buckets=DEFAULT_BUCKETS):
        return NULL_METRIC

    def get(self, name):
        return None

    def names(self):
        return []

    def snapshot(self, **extra):
        return envelope("metrics-snapshot", metrics={}, **extra)

    def render_prometheus(self):
        from .prometheus import render_prometheus

        return render_prometheus(self.snapshot())

    def summary(self, title="metrics"):
        return "%s: disabled" % title


NULL_REGISTRY = NullRegistry()
