"""repro.metrics — the unified metrics registry (PR 3).

One dependency-free registry of counters, gauges, and histograms with
labeled children; one ``repro-metrics/1`` JSON snapshot format shared
by ``repro stats --json``, ``repro sim --metrics-out``, and the
``BENCH_*.json`` benchmark schema; one Prometheus text-exposition
renderer.  :mod:`repro.metrics.bridge` publishes the simulation
kernel, AG observer, and incremental-build telemetry into the same
registry; :mod:`repro.metrics.benchcheck` turns committed snapshots
into a CI perf-regression gate (``repro bench-check``).

Disabled-path guarantee: :data:`NULL_REGISTRY` hands out shared no-op
metrics, so instrumented hot loops pay one empty method call when
telemetry is off.
"""

from .registry import (
    DEFAULT_BUCKETS,
    SECONDS_BUCKETS,
    SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_METRIC,
    NULL_REGISTRY,
    envelope,
    log125_buckets,
)
from .prometheus import render_prometheus

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_METRIC",
    "NULL_REGISTRY",
    "SCHEMA",
    "SECONDS_BUCKETS",
    "envelope",
    "log125_buckets",
    "render_prometheus",
]
