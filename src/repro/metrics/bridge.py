"""Bridges: existing telemetry sources -> the unified registry.

PR 2 gave each layer its own counters — :class:`repro.diag.AGObserver`
for rule firings and memo hits, :class:`repro.build.BuildCache.stats`
for cache accounting, :class:`repro.sim.vhdlio.SeverityLogger` for
assertion severities — and the kernel now keeps per-signal and
per-process tallies inline (plain integer attributes, so the hot paths
never touch the registry).  The functions here publish all of them
into one :class:`~repro.metrics.MetricsRegistry` at snapshot time, so
a single ``repro-metrics/1`` snapshot covers compile → elaborate →
simulate.

Harvesting uses ``Counter.set_total`` (adopt an externally maintained
total) rather than increments: bridging is idempotent — re-publishing
after a longer run simply overwrites the samples.
"""

from .registry import SECONDS_BUCKETS


# -- simulation ---------------------------------------------------------------


def bridge_kernel(registry, kernel):
    """Publish a kernel's per-signal / per-process / logger tallies."""
    if not getattr(registry, "enabled", False):
        return registry
    sig_events = registry.counter(
        "sim_signal_events_total", "value changes per signal")
    sig_txns = registry.counter(
        "sim_signal_transactions_total",
        "fired driver transactions per signal")
    for sig in kernel.signals:
        sig_events.labels(signal=sig.name).set_total(sig.events)
        sig_txns.labels(signal=sig.name).set_total(sig.transactions)
    resumes = registry.counter(
        "sim_process_resumes_by_process_total",
        "kernel resumptions per process")
    exec_s = registry.gauge(
        "sim_process_exec_seconds",
        "cumulative wall-clock execution time per process")
    exec_hist = registry.histogram(
        "sim_process_exec_seconds_distribution",
        "distribution of per-process cumulative execution time",
        buckets=SECONDS_BUCKETS)
    for proc in kernel.processes:
        resumes.labels(process=proc.name).set_total(proc.resumes)
        exec_s.labels(process=proc.name).set(proc.exec_seconds)
        exec_hist.observe(proc.exec_seconds)
    bridge_severity_logger(registry, kernel.logger)
    registry.gauge("sim_now_fs", "current simulation time").set(
        kernel.now)
    registry.gauge("sim_signals", "signals in the design").set(
        len(kernel.signals))
    registry.gauge("sim_processes", "processes in the design").set(
        len(kernel.processes))
    # -- activity-driven scheduler (event calendar + fanout index).
    # Plain integer attributes on the kernel, harvested here like
    # every other hot-path tally.
    registry.gauge(
        "sim_calendar_heap_size",
        "calendar entries (live + stale) currently in the "
        "scheduling heap").set(len(getattr(kernel, "_calendar", ())))
    registry.gauge(
        "sim_calendar_heap_peak",
        "high-water calendar heap size").set(
            getattr(kernel, "calendar_peak", 0))
    registry.counter(
        "sim_calendar_stale_pops_total",
        "calendar entries discarded by lazy deletion (preempted "
        "transactions, satisfied waits)").set_total(
            getattr(kernel, "stale_pops", 0))
    registry.counter(
        "sim_calendar_fanout_visits_total",
        "waiting-process visits through the signal fanout "
        "index").set_total(getattr(kernel, "fanout_visits", 0))
    # -- compiled backend (repro.sim.compiled).  Emitted only for a
    # CompiledKernel, so the event/scan snapshots stay unchanged —
    # and, like sim_calendar_*, these describe the scheduler, not the
    # simulated design, so the differential oracle ignores them.
    if getattr(kernel, "program", None) is not None:
        registry.gauge(
            "sim_codegen_seconds",
            "wall-clock spent specializing this design (cold cost; "
            "zero after a fingerprint cache hit would still bind)"
        ).set(kernel.codegen_seconds)
        registry.gauge(
            "sim_compiled_procs",
            "processes dispatched as specialized plain functions"
        ).set(kernel.compiled_procs)
        registry.gauge(
            "sim_compiled_slot_signals",
            "signals with flat-slot storage (no Driver objects)"
        ).set(kernel.slot_signals)
        registry.counter(
            "sim_levelized_evals_total",
            "slot-signal updates evaluated outside the event "
            "calendar").set_total(kernel.levelized_evals)
    return registry


def bridge_severity_logger(registry, logger):
    """Publish assertion-severity counts."""
    if not getattr(registry, "enabled", False):
        return registry
    family = registry.counter(
        "sim_assertions_total", "assertion reports by severity")
    for severity, count in sorted(logger.counts.items()):
        family.labels(severity=severity).set_total(count)
    return registry


def hot_processes(kernel, top=5):
    """The ``--top N`` rows: (name, resumes, exec_seconds,
    sensitivity-names) sorted hottest-first.

    When per-process wall clock was never measured (metrics disabled)
    the sort falls back to resume counts, so the table still ranks."""
    rows = []
    for proc in kernel.processes:
        sens = [s.name for s in (proc.sensitivity or ())]
        rows.append((proc.name, proc.resumes, proc.exec_seconds, sens))
    rows.sort(key=lambda r: (r[2], r[1]), reverse=True)
    return rows[:top] if top is not None else rows


def format_hot_processes(kernel, top=5):
    """A human-readable hot-process table."""
    rows = hot_processes(kernel, top)
    lines = ["hot processes (top %d of %d):"
             % (len(rows), len(kernel.processes))]
    lines.append("  %-36s %10s %12s  %s"
                 % ("process", "resumes", "exec ms", "sensitivity"))
    for name, resumes, seconds, sens in rows:
        lines.append("  %-36s %10d %12.3f  %s"
                     % (name, resumes, seconds * 1e3,
                        ",".join(sens) if sens else "-"))
    return "\n".join(lines)


def format_calendar_stats(kernel):
    """A one-line scheduler summary for ``repro sim --metrics``:
    how activity-driven the run actually was (fanout visits vs the
    resumes a full sweep would have tested), plus the calendar's
    high-water size and lazy-deletion discards."""
    cycles = max(kernel.cycles, 1)
    swept = cycles * len(kernel.processes)
    visits = getattr(kernel, "fanout_visits", 0)
    return (
        "scheduler: %d cycles (%d delta), calendar peak %d, "
        "%d stale pop(s), %d fanout visit(s) "
        "(full sweep would test %d waits)"
        % (kernel.cycles, kernel.delta_cycles,
           getattr(kernel, "calendar_peak", 0),
           getattr(kernel, "stale_pops", 0), visits, swept))


# -- attribute-grammar evaluation --------------------------------------------


def bridge_observer(registry, observer, top_productions=None):
    """Publish an :class:`AGObserver`'s counters.

    ``top_productions`` bounds the per-production label cardinality
    (None = all ~hundreds of productions)."""
    if not getattr(registry, "enabled", False) or observer is None:
        return registry
    registry.counter(
        "ag_rule_firings_total",
        "semantic-rule firings").set_total(observer.total_firings)
    per_prod = registry.counter(
        "ag_rule_firings_by_production_total",
        "semantic-rule firings per production")
    items = observer.rule_firings.most_common(top_productions)
    for label, count in items:
        per_prod.labels(production=label).set_total(count)
    per_grammar = registry.counter(
        "ag_rule_firings_by_grammar_total",
        "semantic-rule firings per grammar")
    for grammar, count in sorted(observer.grammar_firings.items()):
        per_grammar.labels(grammar=grammar).set_total(count)
    registry.counter(
        "ag_memo_hits_total",
        "demanded attributes served from the memo "
        "table").set_total(observer.cache_hits)
    registry.counter(
        "ag_memo_misses_total",
        "attributes computed fresh").set_total(observer.cache_misses)
    registry.gauge(
        "ag_memo_hit_rate", "memo hit rate").set(observer.hit_rate)
    registry.counter(
        "ag_visits_total", "static-evaluator symbol visits").set_total(
            sum(observer.visits.values()))
    return registry


def bridge_ag_stats(registry, stats):
    """Publish a merged worker ``ag_stats`` dict (build reports)."""
    if not getattr(registry, "enabled", False) or not stats:
        return registry
    registry.counter(
        "ag_rule_firings_total", "semantic-rule firings").set_total(
            stats.get("total_firings", 0))
    registry.counter(
        "ag_memo_hits_total",
        "demanded attributes served from the memo table").set_total(
            stats.get("cache_hits", 0))
    registry.counter(
        "ag_memo_misses_total", "attributes computed fresh").set_total(
            stats.get("cache_misses", 0))
    registry.gauge("ag_memo_hit_rate", "memo hit rate").set(
        stats.get("hit_rate", 0.0))
    return registry


# -- incremental build --------------------------------------------------------


def bridge_build_report(registry, report):
    """Publish an :class:`IncrementalBuilder` report: cache stats,
    per-worker busy seconds, and worker utilization computed from the
    merged Chrome trace (busy span time / wall span per pid)."""
    if not getattr(registry, "enabled", False):
        return registry
    stats = getattr(report, "stats", {}) or {}
    cache = registry.counter(
        "build_cache_total", "build cache outcomes")
    for key in ("hits", "misses", "invalidated", "quarantined"):
        cache.labels(outcome=key).set_total(stats.get(key, 0))
    registry.counter(
        "build_ag_evaluations_total",
        "files that required a fresh AG evaluation").set_total(
            stats.get("ag_evaluations", 0))
    registry.gauge("build_jobs", "configured worker count").set(
        getattr(report, "jobs", 1))
    events = list(getattr(report, "trace_events", ()) or ())
    busy = registry.gauge(
        "build_worker_busy_seconds",
        "summed phase-span seconds per worker pid")
    util = registry.gauge(
        "build_worker_utilization",
        "busy seconds / build wall seconds per worker pid")
    spans = [e for e in events if e.get("ph") == "X"]
    if spans:
        t0 = min(e["ts"] for e in spans)
        t1 = max(e["ts"] + e.get("dur", 0.0) for e in spans)
        wall = max((t1 - t0) / 1e6, 1e-9)
        per_pid = {}
        for e in spans:
            pid = str(e.get("pid", "?"))
            per_pid[pid] = per_pid.get(pid, 0.0) + \
                e.get("dur", 0.0) / 1e6
        for pid, seconds in sorted(per_pid.items()):
            busy.labels(pid=pid).set(seconds)
            util.labels(pid=pid).set(min(seconds / wall, 1.0))
        registry.gauge(
            "build_wall_seconds",
            "wall-clock span of the merged build trace").set(wall)
    bridge_ag_stats(registry, getattr(report, "ag_stats", {}) or {})
    return registry


# -- compiler phases ----------------------------------------------------------


def bridge_tracer(registry, tracer, prefix="compile"):
    """Publish a :class:`repro.diag.Tracer`'s per-phase seconds."""
    if not getattr(registry, "enabled", False) or tracer is None:
        return registry
    family = registry.gauge(
        "%s_phase_seconds" % prefix,
        "wall-clock seconds per %s phase" % prefix)
    for phase, seconds in sorted(tracer.phase_seconds().items()):
        family.labels(phase=phase).set(seconds)
    return registry
