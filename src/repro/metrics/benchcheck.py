"""``repro bench-check`` — the CI perf-regression gate.

A *baseline* is a committed ``BENCH_<name>.json`` file in the shared
``repro-metrics/1`` envelope: a ``values`` dict of named measurements
plus a ``checks`` dict assigning each value a comparison mode.  The
gate re-runs the named scenario fresh (or reads ``--current FILE``)
and compares against the baseline:

- ``exact``  — deterministic counters (simulation cycles, signal
  events, AG evaluations): must match bit-for-bit; any drift means the
  *semantics* changed, not just the speed.
- ``max``    — cost-like values: current must not exceed
  ``base * (1 + tolerance)``.
- ``min``    — benefit-like values (speedups): current must be at
  least ``base * (1 - tolerance)``.
- ``ratio``  — must stay within ``tolerance`` relative either way.

Wall-clock costs are *normalized*: every scenario first times a fixed
pure-Python calibration loop on the same machine and reports
``cost / calibration`` ratios, so a committed baseline transfers
between hosts of different absolute speed — slowing the kernel still
moves the ratio, which is exactly what the gate must catch.

Baselines are refreshed with ``repro bench-check --baseline FILE
--update`` (re-runs the scenario and rewrites the file); CI runs the
gate with a generous tolerance so only genuine regressions fail.
"""

import json
import os
import shutil
import tempfile
import time

from .registry import MetricsRegistry, envelope

#: Iterations of the calibration loop (pure-Python integer work).
CALIBRATION_N = 300_000

#: Measurement repeats; the best (minimum) ratio is kept.
REPEATS = 5


def calibrate(n=CALIBRATION_N, repeats=3):
    """Seconds for the fixed reference loop (best of ``repeats``)."""
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        acc = 0
        for i in range(n):
            acc += i & 7
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return max(best, 1e-9)


def normalized_cost(measure, repeats=REPEATS):
    """``min over repeats of (measure() seconds / calibration
    seconds)`` — the calibration loop runs inside the same time window
    as each measurement, so host-load and frequency drift hit both and
    mostly cancel out of the ratio."""
    best = None
    for _ in range(repeats):
        calib = calibrate(repeats=1)
        t0 = time.perf_counter()
        result = measure()
        dt = time.perf_counter() - t0
        calib = min(calib, calibrate(repeats=1))
        ratio = dt / calib
        if best is None or ratio < best[0]:
            best = (ratio, dt, calib, result)
    return best


# -- scenarios ---------------------------------------------------------------

_SIM_SOURCE = """
    entity stage is
      port ( clk : in bit; din : in integer; dout : out integer );
    end stage;
    architecture rtl of stage is
      signal hold : integer := 0;
    begin
      process (clk)
      begin
        if clk'event and clk = '1' then
          hold <= (din + 1) mod 1000;
        end if;
      end process;
      dout <= hold;
    end rtl;

    entity gate_top is end gate_top;
    architecture top of gate_top is
      component stage
        port ( clk : in bit; din : in integer; dout : out integer );
      end component;
      signal clk : bit := '0';
      signal d0 : integer := 0;
      signal d1 : integer := 0;
      signal d2 : integer := 0;
    begin
      clock : process
      begin
        clk <= not clk after 5 ns;
        wait on clk;
      end process;
      s1 : stage port map ( clk => clk, din => d0, dout => d1 );
      s2 : stage port map ( clk => clk, din => d1, dout => d2 );
      feedback : d0 <= d2;
    end top;
"""

_SIM_UNTIL_FS = 1000 * 10**6  # 1 us: 200 clock edges


def scenario_simulation():
    """Compile a small pipeline once, run the kernel, measure."""
    from ..sim import Kernel
    from ..vhdl.compiler import Compiler
    from ..vhdl.elaborate import Elaborator

    compiler = Compiler(strict=False)
    result = compiler.compile(_SIM_SOURCE)
    if not result.ok:
        raise RuntimeError("bench-check design failed to compile: %s"
                           % result.messages[:3])

    def measure():
        registry = MetricsRegistry()
        kernel = Kernel(metrics=registry)
        sim = Elaborator(compiler.library,
                         kernel=kernel).elaborate("gate_top")
        sim.run(until_fs=_SIM_UNTIL_FS)
        return registry, kernel

    ratio, best, calib, (registry, kernel) = normalized_cost(measure)
    from .bridge import bridge_kernel

    bridge_kernel(registry, kernel)
    values = {
        "cycles": kernel.cycles,
        "delta_cycles": kernel.delta_cycles,
        "signal_events": sum(s.events for s in kernel.signals),
        "signal_transactions": sum(
            s.transactions for s in kernel.signals),
        "process_resumes": sum(p.resumes for p in kernel.processes),
        "normalized_cost": round(ratio, 4),
    }
    checks = {
        "cycles": "exact",
        "delta_cycles": "exact",
        "signal_events": "exact",
        "signal_transactions": "exact",
        "process_resumes": "exact",
        "normalized_cost": "max",
    }
    timings = {"run_s": round(best, 6),
               "calibration_s": round(calib, 6)}
    return envelope("bench", bench="simulation", values=values,
                    checks=checks, timings=timings,
                    metrics=registry.snapshot()["metrics"])


_INC_PKG = """
    package pkg0 is
      constant width : integer := 8;
      function clamp(x : integer) return integer;
    end pkg0;
    package body pkg0 is
      function clamp(x : integer) return integer is
      begin
        if x > 255 then return 255; end if;
        return x;
      end clamp;
    end pkg0;
"""

_INC_UNIT = """
    use work.pkg0.all;
    entity unit%(i)d is end unit%(i)d;
    architecture rtl of unit%(i)d is
      signal acc : integer := 0;
      signal tick : bit := '0';
    begin
      clock : process
      begin
        tick <= not tick after 10 ns;
        wait on tick;
      end process;
      count : process (tick)
      begin
        acc <= clamp(acc + %(i)d + 1);
      end process;
    end rtl;
"""


def scenario_incremental():
    """Cold vs warm incremental build of a small package+units
    project; warm must do zero AG evaluations."""
    from ..build import IncrementalBuilder
    from ..vhdl.grammar import principal_grammar

    principal_grammar()  # Linguist runs before compiling (paper §2)
    base = tempfile.mkdtemp(prefix="repro-bench-check-")
    try:
        files = [os.path.join(base, "pkg0.vhd")]
        with open(files[0], "w") as f:
            f.write(_INC_PKG)
        for i in range(2):
            path = os.path.join(base, "unit%d.vhd" % i)
            with open(path, "w") as f:
                f.write(_INC_UNIT % {"i": i})
            files.append(path)
        root = os.path.join(base, "libs")

        def build():
            t0 = time.perf_counter()
            report = IncrementalBuilder(root).build(files)
            dt = time.perf_counter() - t0
            if not report.ok:
                raise RuntimeError("bench-check build failed:\n%s"
                                   % report.summary())
            return dt, report

        def cold_build():
            shutil.rmtree(root, ignore_errors=True)
            return build()

        cold_ratio, _, calib, (cold_s, cold) = normalized_cost(
            cold_build)
        warm_s, warm = build()
        for _ in range(2):  # best-of-3 stabilizes the speedup ratio
            warm_again_s, warm = build()
            warm_s = min(warm_s, warm_again_s)
        registry = MetricsRegistry()
        from .bridge import bridge_build_report

        bridge_build_report(registry, warm)
        values = {
            "files": len(files),
            "cold_ag_evaluations": cold.stats.get(
                "ag_evaluations", 0),
            "warm_ag_evaluations": warm.stats.get(
                "ag_evaluations", 0),
            "warm_cache_hits": warm.stats.get("hits", 0),
            "warm_speedup": round(cold_s / max(warm_s, 1e-9), 1),
            "normalized_cold_cost": round(cold_ratio, 4),
        }
        checks = {
            "files": "exact",
            "cold_ag_evaluations": "exact",
            "warm_ag_evaluations": "exact",
            "warm_cache_hits": "exact",
            "warm_speedup": "min",
            "normalized_cold_cost": "max",
        }
        timings = {"cold_s": round(cold_s, 6),
                   "warm_s": round(warm_s, 6),
                   "calibration_s": round(calib, 6)}
        return envelope("bench", bench="incremental", values=values,
                        checks=checks, timings=timings,
                        metrics=registry.snapshot()["metrics"])
    finally:
        shutil.rmtree(base, ignore_errors=True)


_LINT_DEFECTS = """
    entity lint_mix is end lint_mix;
    architecture a of lint_mix is
      signal a1 : bit := '0';
      signal b1 : bit := '0';
      signal y1 : bit := '0';
      signal unused : bit := '0';
    begin
      comb : process (a1)           -- RPL001: reads b1, not listed
      begin
        y1 <= a1 and b1;
      end process;
      stim : process
      begin
        a1 <= '1' after 1 ns;
        b1 <= '1' after 2 ns;
        wait;
      end process;
      mon : process (y1)
      begin
        assert y1 = '0' or y1 = '1';
      end process;
    end a;
"""


def scenario_lint():
    """Compile the simulation pipeline plus a seeded-defect unit,
    then measure a full-library lint pass.  Finding counts are
    deterministic (``exact``); the pass cost is normalized."""
    from ..analysis import LintEngine
    from ..vhdl.compiler import Compiler

    compiler = Compiler(strict=False)
    result = compiler.compile(_SIM_SOURCE + _LINT_DEFECTS)
    if not result.ok:
        raise RuntimeError("bench-check lint design failed to "
                           "compile: %s" % result.messages[:3])

    def measure():
        registry = MetricsRegistry()
        engine = LintEngine(library=compiler.library,
                            metrics=registry)
        return registry, engine.lint_library()

    ratio, best, calib, (registry, findings) = normalized_cost(
        measure)
    by_rule = {}
    for diag in findings:
        by_rule[diag.code] = by_rule.get(diag.code, 0) + 1
    units = len(compiler.library._units)
    values = {
        "units_checked": units,
        "findings_total": len(findings),
        "findings_rpl001": by_rule.get("RPL001", 0),
        "findings_rpl003": by_rule.get("RPL003", 0),
        "normalized_cost": round(ratio, 4),
    }
    checks = {
        "units_checked": "exact",
        "findings_total": "exact",
        "findings_rpl001": "exact",
        "findings_rpl003": "exact",
        "normalized_cost": "max",
    }
    timings = {"run_s": round(best, 6),
               "calibration_s": round(calib, 6)}
    return envelope("bench", bench="lint", values=values,
                    checks=checks, timings=timings,
                    metrics=registry.snapshot()["metrics"])


_RING_CELLS = 1500
_RING_TOKENS = 15  # 1% of cells active per timestep
_RING_WINDOW_FS = 150 * 10**6  # 150 timesteps


def _build_ring(kernel_cls, n=_RING_CELLS, tokens=_RING_TOKENS):
    """The sparse-activity token ring (the compact twin of
    ``benchmarks/bench_kernel_scaling.py``): ``tokens`` tokens circle
    ``n`` cells, waking exactly ``tokens`` processes per timestep."""
    k = kernel_cls()
    sigs = [k.signal("cell%d" % i, 0) for i in range(n)]
    rt = k.rt
    stride = n // tokens
    starters = frozenset(j * stride for j in range(tokens))

    def cell(i):
        me = sigs[i]
        nxt = sigs[(i + 1) % n]
        starter = i in starters

        def proc():
            if starter:
                rt.assign(nxt, ((1 - rt.read(nxt), 10**6),))
            while True:
                yield rt.wait([me])
                rt.assign(nxt, ((1 - rt.read(nxt), 10**6),))

        return proc

    for i in range(n):
        k.process("cell%d" % i, cell(i), sensitivity=[sigs[i]])
    return k


def _ring_vhdl(n, tokens):
    """The token ring as VHDL source (the compiled backend
    specializes elaborated designs, so its axes need real source):
    ``tokens`` evenly spaced starter cells use sensitivity-list
    processes whose initialization run launches the token."""
    stride = n // tokens
    starters = frozenset(j * stride for j in range(tokens))
    lines = ["entity ring is", "end ring;", "",
             "architecture rtl of ring is"]
    for i in range(n):
        lines.append("  signal c_%d : integer := 0;" % i)
    lines.append("begin")
    for i in range(n):
        j = (i + 1) % n
        if i in starters:
            lines.append(
                "  p_%d: process (c_%d) begin "
                "c_%d <= 1 - c_%d after 1 ns; end process;"
                % (i, i, j, j))
        else:
            lines.append(
                "  p_%d: process begin wait on c_%d; "
                "c_%d <= 1 - c_%d after 1 ns; end process;"
                % (i, i, j, j))
    lines.append("end rtl;")
    return "\n".join(lines)


def _compile_vhdl_ring(n, tokens):
    from ..vhdl.compiler import Compiler

    compiler = Compiler(strict=False)
    result = compiler.compile(_ring_vhdl(n, tokens),
                              filename="ring.vhd")
    if not result.ok:
        raise RuntimeError("bench-check ring failed to compile: %s"
                           % result.messages[:3])
    return compiler.library


#: Window for the compiled-backend axis of ``kernel_scaling`` — long
#: enough that the run phase dominates elaboration noise.
_RING_COMPILED_WINDOW_FS = 1000 * 10**6  # 1000 timesteps


def scenario_kernel_scaling():
    """The activity-driven scheduler's gate: on a ~1%-active design
    the calendar kernel must stay >= 5x faster than the full-scan
    reference (``min`` check), with byte-identical semantics
    (``exact`` counters) and a normalized absolute cost ceiling.

    The backend axis rides along: the same ring as VHDL source, run
    through the event kernel and the compiled backend — identical
    counters (``exact``) and a ``min``-gated speedup, with cold
    codegen reported separately in ``timings`` so the amortized
    compile time cannot flatter the ratio."""
    from ..sim import CompiledKernel, Kernel, ScanKernel
    from ..sim.compiled import _PROGRAM_CACHE
    from ..vhdl.elaborate import Elaborator

    def run_only(kernel_cls, repeats):
        best = None
        kernel = None
        for _ in range(repeats):
            k = _build_ring(kernel_cls)
            k.initialize()
            t0 = time.perf_counter()
            k.run(until=_RING_WINDOW_FS)
            dt = time.perf_counter() - t0
            if best is None or dt < best:
                best, kernel = dt, k
        return best, kernel

    cal_s, cal = run_only(Kernel, repeats=3)
    scan_s, scan = run_only(ScanKernel, repeats=2)
    if scan.cycles != cal.cycles or [s.value for s in scan.signals] \
            != [s.value for s in cal.signals]:
        raise RuntimeError(
            "calendar and scan kernels diverged on the ring workload")

    def measure():
        k = _build_ring(Kernel)
        k.run(until=_RING_WINDOW_FS)
        return k

    ratio, best, calib, kernel = normalized_cost(measure)

    # -- the backend axis: event vs compiled on the VHDL ring --------
    library = _compile_vhdl_ring(_RING_CELLS, _RING_TOKENS)

    def vhdl_run(kernel_cls, repeats, compiled=False):
        best_dt = None
        best_k = None
        codegen_s = 0.0
        for _ in range(repeats):
            k = kernel_cls()
            sim = Elaborator(library, kernel=k).elaborate("ring")
            if compiled:
                t0 = time.perf_counter()
                k.compile_design(sim.records)
                codegen_s = max(codegen_s,
                                time.perf_counter() - t0)
            k.initialize()
            t0 = time.perf_counter()
            k.run(until=_RING_COMPILED_WINDOW_FS)
            dt = time.perf_counter() - t0
            if best_dt is None or dt < best_dt:
                best_dt, best_k = dt, k
        return best_dt, best_k, codegen_s

    _PROGRAM_CACHE.clear()  # the first repeat pays codegen cold
    event_s, k_ev, _ = vhdl_run(Kernel, repeats=3)
    comp_s, k_co, codegen_cold_s = vhdl_run(
        CompiledKernel, repeats=3, compiled=True)
    if (k_ev.cycles, k_ev.delta_cycles) != \
            (k_co.cycles, k_co.delta_cycles) \
            or [s.value for s in k_ev.signals] != \
            [s.value for s in k_co.signals] \
            or [p.resumes for p in k_ev.processes] != \
            [p.resumes for p in k_co.processes]:
        raise RuntimeError(
            "event and compiled backends diverged on the ring")

    registry = MetricsRegistry()
    from .bridge import bridge_kernel

    bridge_kernel(registry, kernel)
    values = {
        "cells": _RING_CELLS,
        "tokens": _RING_TOKENS,
        "cycles": kernel.cycles,
        "delta_cycles": kernel.delta_cycles,
        "process_resumes": sum(
            p.resumes for p in kernel.processes),
        "signal_events": sum(s.events for s in kernel.signals),
        "fanout_visits": kernel.fanout_visits,
        "speedup_vs_scan": round(scan_s / cal_s, 1),
        "normalized_cost": round(ratio, 4),
        "compiled_cycles": k_co.cycles,
        "compiled_procs": k_co.compiled_procs,
        "compiled_slot_signals": k_co.slot_signals,
        "compiled_speedup_vs_event": round(event_s / comp_s, 2),
    }
    checks = {
        "cells": "exact",
        "tokens": "exact",
        "cycles": "exact",
        "delta_cycles": "exact",
        "process_resumes": "exact",
        "signal_events": "exact",
        "fanout_visits": "exact",
        "speedup_vs_scan": "min",
        "normalized_cost": "max",
        "compiled_cycles": "exact",
        "compiled_procs": "exact",
        "compiled_slot_signals": "exact",
        "compiled_speedup_vs_event": "min",
    }
    timings = {"calendar_s": round(cal_s, 6),
               "scan_s": round(scan_s, 6),
               "run_s": round(best, 6),
               "calibration_s": round(calib, 6),
               "codegen_cold_s": round(codegen_cold_s, 6),
               "event_vhdl_s": round(event_s, 6),
               "compiled_s": round(comp_s, 6)}
    # The per-signal / per-process labeled series are _RING_CELLS wide
    # here (1500 samples each); the gate only reads ``values``, so the
    # embedded snapshot keeps just the unlabeled aggregate families to
    # stay a reviewable committed baseline.
    metrics = {
        name: fam
        for name, fam in registry.snapshot()["metrics"].items()
        if not any(s.get("labels") for s in fam["samples"])
    }
    return envelope("bench", bench="kernel_scaling", values=values,
                    checks=checks, timings=timings, metrics=metrics)


_COMPILED_CELLS = 400
_COMPILED_TOKENS = 8  # 2% of cells active per timestep
_COMPILED_WINDOW_FS = 2000 * 10**6  # 2000 timesteps


def scenario_compiled_codegen():
    """The cold half of the compiled backend's cost: with the program
    cache cleared every repeat, elaborate the ring and specialize it.
    The normalized cost pins the whole cold flow (``max``); structure
    counters are ``exact`` — every process must compile and every
    signal must get slot storage, or the specializer regressed."""
    from ..sim import CompiledKernel
    from ..sim.compiled import _PROGRAM_CACHE
    from ..vhdl.elaborate import Elaborator

    library = _compile_vhdl_ring(_COMPILED_CELLS, _COMPILED_TOKENS)

    def measure():
        _PROGRAM_CACHE.clear()
        kernel = CompiledKernel()
        sim = Elaborator(library, kernel=kernel).elaborate("ring")
        kernel.compile_design(sim.records)
        return kernel

    ratio, best, calib, kernel = normalized_cost(measure, repeats=3)
    values = {
        "cells": _COMPILED_CELLS,
        "compiled_procs": kernel.compiled_procs,
        "slot_signals": kernel.slot_signals,
        "programs_cached": len(_PROGRAM_CACHE),
        "normalized_cost": round(ratio, 4),
    }
    checks = {
        "cells": "exact",
        "compiled_procs": "exact",
        "slot_signals": "exact",
        "programs_cached": "exact",
        "normalized_cost": "max",
    }
    timings = {"cold_s": round(best, 6),
               "codegen_s": round(kernel.codegen_seconds, 6),
               "calibration_s": round(calib, 6)}
    return envelope("bench", bench="compiled_codegen", values=values,
                    checks=checks, timings=timings, metrics={})


def scenario_compiled_warm():
    """The warm half: with the program cache primed, each repeat is
    elaborate + fingerprint-hit bind + run — the steady-state cost of
    a repeat simulation, gated separately from codegen so neither can
    hide behind the other.  Semantics counters are ``exact``, and
    ``programs_cached`` staying at 1 across repeats proves the design
    fingerprint is stable (a drifting fingerprint would grow the
    cache and silently re-pay codegen)."""
    from ..sim import CompiledKernel
    from ..sim.compiled import _PROGRAM_CACHE
    from ..vhdl.elaborate import Elaborator

    library = _compile_vhdl_ring(_COMPILED_CELLS, _COMPILED_TOKENS)
    _PROGRAM_CACHE.clear()

    def measure():
        kernel = CompiledKernel()
        sim = Elaborator(library, kernel=kernel).elaborate("ring")
        kernel.compile_design(sim.records)
        kernel.run(until=_COMPILED_WINDOW_FS)
        return kernel

    measure()  # prime the cache: every timed repeat binds warm
    ratio, best, calib, kernel = normalized_cost(measure, repeats=3)
    registry = MetricsRegistry()
    from .bridge import bridge_kernel

    bridge_kernel(registry, kernel)
    values = {
        "cells": _COMPILED_CELLS,
        "tokens": _COMPILED_TOKENS,
        "cycles": kernel.cycles,
        "delta_cycles": kernel.delta_cycles,
        "process_resumes": sum(
            p.resumes for p in kernel.processes),
        "signal_events": sum(s.events for s in kernel.signals),
        "levelized_evals": kernel.levelized_evals,
        "compiled_procs": kernel.compiled_procs,
        "slot_signals": kernel.slot_signals,
        "programs_cached": len(_PROGRAM_CACHE),
        "normalized_cost": round(ratio, 4),
    }
    checks = {key: "exact" for key in values}
    checks["normalized_cost"] = "max"
    timings = {"warm_s": round(best, 6),
               "bind_s": round(kernel.codegen_seconds, 6),
               "calibration_s": round(calib, 6)}
    metrics = {
        name: fam
        for name, fam in registry.snapshot()["metrics"].items()
        if not any(s.get("labels") for s in fam["samples"])
    }
    return envelope("bench", bench="compiled_warm", values=values,
                    checks=checks, timings=timings, metrics=metrics)


_ANALYSIS_CELLS = 2000


def _ring_source(n=_ANALYSIS_CELLS, cut=False):
    """A ``n``-cell combinational inverter ring as VHDL source.

    ``cut`` drops the wrap-around assignment, turning the one giant
    SCC into an ``n - 1``-level acyclic chain — the levelization
    workload."""
    decls = ";\n  ".join("signal c%d : bit := '0'" % i
                         for i in range(n))
    stmts = "\n  ".join(
        "a%d : c%d <= not c%d;" % (i, i, (i - 1) % n)
        for i in range(1 if cut else 0, n))
    return ("entity ring_top is end ring_top;\n"
            "architecture a of ring_top is\n  %s;\nbegin\n  %s\n"
            "end a;\n" % (decls, stmts))


def scenario_analysis():
    """The elaborated-design analyzer's gate: flatten a 2000-cell
    combinational ring and find its single giant SCC, then levelize
    the cut (acyclic) variant.  Structure counters are ``exact`` —
    the ring has exactly one loop of exactly 2000 signals, and the
    chain levelizes to exactly 1999 levels — and the analysis cost
    (netlist build + SCC + rules) is normalized (``max``)."""
    from ..analysis import (
        LintEngine,
        build_netlist,
        combinational_loops,
        levelize,
    )
    from ..vhdl.compiler import Compiler
    from ..vhdl.elaborate import Elaborator

    ring = Compiler(strict=False)
    result = ring.compile(_ring_source())
    if not result.ok:
        raise RuntimeError("bench-check analysis ring failed to "
                           "compile: %s" % result.messages[:3])
    chain = Compiler(strict=False)
    result = chain.compile(_ring_source(cut=True))
    if not result.ok:
        raise RuntimeError("bench-check analysis chain failed to "
                           "compile: %s" % result.messages[:3])
    ring_sim = Elaborator(ring.library).elaborate("ring_top")
    chain_sim = Elaborator(chain.library).elaborate("ring_top")

    def measure():
        registry = MetricsRegistry()
        graph = build_netlist(ring_sim.records)
        loops = combinational_loops(graph)
        findings = LintEngine(library=ring.library,
                              metrics=registry).lint_design(graph)
        chain_graph = build_netlist(chain_sim.records)
        levels, order, cyclic = levelize(chain_graph)
        return registry, graph, loops, findings, levels, order, \
            cyclic

    ratio, best, calib, (registry, graph, loops, findings, levels,
                         order, cyclic) = normalized_cost(measure)
    by_rule = {}
    for diag in findings:
        by_rule[diag.code] = by_rule.get(diag.code, 0) + 1
    values = {
        "cells": _ANALYSIS_CELLS,
        "graph_signals": len(graph.signals),
        "graph_processes": len(graph.processes),
        "comb_edges": sum(1 for _ in graph.comb_edges()),
        "loops_found": len(loops),
        "loop_signals": len(loops[0][0]) if loops else 0,
        "findings_rpe001": by_rule.get("RPE001", 0),
        "findings_rpe004": by_rule.get("RPE004", 0),
        "chain_levels": max(levels.values()) if levels else 0,
        "chain_eval_order": len(order),
        "chain_cyclic": len(cyclic),
        "normalized_cost": round(ratio, 4),
    }
    checks = {key: "exact" for key in values}
    checks["normalized_cost"] = "max"
    timings = {"run_s": round(best, 6),
               "calibration_s": round(calib, 6)}
    # Keep only unlabeled aggregates: lint_findings_total carries a
    # 2000-sample per-rule series here.
    metrics = {
        name: fam
        for name, fam in registry.snapshot()["metrics"].items()
        if not any(s.get("labels") for s in fam["samples"])
    }
    return envelope("bench", bench="analysis", values=values,
                    checks=checks, timings=timings, metrics=metrics)


_SERVE_SESSIONS = 3
_SERVE_SIMS_PER_SESSION = 3
_SERVE_UNTIL_FS = 250 * 10**6  # 250 ns of the gate_top pipeline


def _serve_request(port, method, path, body=None):
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        payload = None if body is None else json.dumps(body)
        conn.request(method, path, body=payload)
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())
    finally:
        conn.close()


def scenario_serve():
    """Boot the ``repro serve`` daemon on a private port, prime a few
    sessions with the simulation pipeline, then gate on a concurrent
    burst of ``/sim`` requests: per-request results are deterministic
    (``exact`` cycle counters, zero failures) and the burst cost is
    normalized (``max``)."""
    from concurrent.futures import ThreadPoolExecutor

    from ..serve import BackgroundServer

    sids = ["bench%d" % i for i in range(_SERVE_SESSIONS)]
    burst = [(sid, n) for sid in sids
             for n in range(_SERVE_SIMS_PER_SESSION)]

    with BackgroundServer(workers=2, batch_window=0.005) as server:
        port = server.port
        for sid in sids:
            status, data = _serve_request(
                port, "POST", "/compile",
                {"session": sid,
                 "files": [{"name": "pipe.vhd",
                            "text": _SIM_SOURCE}]})
            if status != 200 or not data.get("ok"):
                raise RuntimeError("bench-check serve prime failed: "
                                   "%s" % (data,))

        def measure():
            latencies = []

            def one(job):
                sid, _ = job
                t0 = time.perf_counter()
                status, data = _serve_request(
                    port, "POST", "/sim",
                    {"session": sid, "top": "gate_top",
                     "until": "%dfs" % _SERVE_UNTIL_FS})
                latencies.append(time.perf_counter() - t0)
                return status, data
            with ThreadPoolExecutor(max_workers=8) as pool:
                results = list(pool.map(one, burst))
            return results, sorted(latencies)

        ratio, best, calib, (results, latencies) = normalized_cost(
            measure, repeats=3)

    failures = sum(1 for status, data in results
                   if status != 200 or not data.get("ok"))
    cycles = sorted({data.get("cycles") for _, data in results})
    n = len(latencies)
    p50 = latencies[n // 2]
    p95 = latencies[min(n - 1, (n * 95) // 100)]
    values = {
        "sessions": _SERVE_SESSIONS,
        "requests": len(burst),
        "failures": failures,
        # Every request simulates the same design to the same time,
        # so the kernels must agree bit-for-bit across sessions.
        "distinct_cycle_counts": len(cycles),
        "cycles": cycles[0] if cycles else 0,
        "normalized_cost": round(ratio, 4),
    }
    checks = {
        "sessions": "exact",
        "requests": "exact",
        "failures": "exact",
        "distinct_cycle_counts": "exact",
        "cycles": "exact",
        "normalized_cost": "max",
    }
    timings = {
        "run_s": round(best, 6),
        "calibration_s": round(calib, 6),
        "rps": round(len(burst) / best, 1),
        "p50_ms": round(p50 * 1e3, 3),
        "p95_ms": round(p95 * 1e3, 3),
    }
    return envelope("bench", bench="serve", values=values,
                    checks=checks, timings=timings, metrics={})


_FUZZ_SEED = 7
_FUZZ_BUDGET = 15


def scenario_fuzz():
    """The generative conformance harness's gate: a fixed-seed sweep
    must be *deterministic* (``exact`` outcome counts, zero
    divergences/crashes, exact total design size — any drift means
    the generator or an oracle input changed semantics) and its
    normalized cost must not regress (``max``)."""
    from ..gen.runner import run_sweep

    def measure():
        registry = MetricsRegistry()
        return run_sweep(_FUZZ_SEED, _FUZZ_BUDGET, jobs=1,
                         shrink_failures=False, metrics=registry), \
            registry

    ratio, best, calib, (report, registry) = normalized_cost(
        measure, repeats=3)
    values = {
        "seed": _FUZZ_SEED,
        "budget": _FUZZ_BUDGET,
        "ok": report.counts.get("ok", 0),
        "rejected": report.counts.get("rejected", 0),
        "sim_error": report.counts.get("sim_error", 0),
        "divergences": report.counts.get("divergence", 0),
        "crashes": report.counts.get("crash", 0),
        "total_lines": sum(r["lines"] for r in report.records),
        "designs_per_second": round(
            _FUZZ_BUDGET / max(best, 1e-9), 1),
        "normalized_cost": round(ratio, 4),
    }
    checks = {
        "seed": "exact",
        "budget": "exact",
        "ok": "exact",
        "rejected": "exact",
        "sim_error": "exact",
        "divergences": "exact",
        "crashes": "exact",
        "total_lines": "exact",
        "designs_per_second": "min",
        "normalized_cost": "max",
    }
    timings = {"sweep_s": round(best, 6),
               "calibration_s": round(calib, 6)}
    metrics = {
        name: fam
        for name, fam in registry.snapshot()["metrics"].items()
        if name.startswith("fuzz_")
    }
    return envelope("bench", bench="fuzz", values=values,
                    checks=checks, timings=timings, metrics=metrics)


def scenario_trace():
    """The tracing gate.  Two invariants: (a) a kernel constructed
    with ``trace=None`` must cost what it always cost — the disabled
    path is one hoisted bool test per cycle, pinned by
    ``normalized_cost_disabled`` (``max``); (b) with every timestep
    and resume traced (``trace_sample=1``) the span counts are a pure
    function of the design — ``exact`` — and the traced cost is
    pinned loosely (``max``, tracing is allowed to cost something)."""
    from ..diag.trace import Tracer
    from ..sim import Kernel
    from ..trace.context import SpanContext, use
    from ..vhdl.compiler import Compiler
    from ..vhdl.elaborate import Elaborator

    compiler = Compiler(strict=False)
    result = compiler.compile(_SIM_SOURCE)
    if not result.ok:
        raise RuntimeError("bench-check design failed to compile: %s"
                           % result.messages[:3])

    def run(trace=None):
        kernel = Kernel(trace=trace, trace_sample=1)
        sim = Elaborator(compiler.library,
                         kernel=kernel).elaborate("gate_top")
        sim.run(until_fs=_SIM_UNTIL_FS)
        return kernel

    ratio_off, best_off, calib, kernel_off = normalized_cost(run)

    def run_traced():
        tracer = Tracer()
        with use(SpanContext()):
            kernel = run(trace=tracer)
        return tracer, kernel

    ratio_on, best_on, _, (tracer, _kernel_on) = normalized_cost(
        run_traced)

    timesteps = sum(1 for e in tracer.events
                    if e.get("name") == "timestep")
    resumes = sum(1 for e in tracer.events
                  if e.get("name") == "process_resume")
    roots = sum(1 for e in tracer.events
                if e.get("ph") == "X" and not e.get("parent_id"))
    values = {
        "cycles": kernel_off.cycles,
        "span_timesteps": timesteps,
        "span_resumes": resumes,
        "orphan_spans": roots,
        "normalized_cost_disabled": round(ratio_off, 4),
        "normalized_cost_enabled": round(ratio_on, 4),
    }
    checks = {
        "cycles": "exact",
        "span_timesteps": "exact",
        "span_resumes": "exact",
        "orphan_spans": "exact",
        "normalized_cost_disabled": "max",
        "normalized_cost_enabled": "max",
    }
    timings = {"run_disabled_s": round(best_off, 6),
               "run_enabled_s": round(best_on, 6),
               "calibration_s": round(calib, 6)}
    return envelope("bench", bench="trace", values=values,
                    checks=checks, timings=timings)


SCENARIOS = {
    "simulation": scenario_simulation,
    "incremental": scenario_incremental,
    "lint": scenario_lint,
    "analysis": scenario_analysis,
    "kernel_scaling": scenario_kernel_scaling,
    "compiled_codegen": scenario_compiled_codegen,
    "compiled_warm": scenario_compiled_warm,
    "serve": scenario_serve,
    "fuzz": scenario_fuzz,
    "trace": scenario_trace,
}


# -- comparison --------------------------------------------------------------


class CheckFailure(Exception):
    """A baseline could not be loaded or compared."""


def _close(a, b):
    if isinstance(a, float) or isinstance(b, float):
        scale = max(abs(a), abs(b), 1e-12)
        return abs(a - b) / scale <= 1e-9
    return a == b


def compare(baseline, current_values, tolerance=0.15):
    """[(key, mode, base, current, ok, detail)] for every check."""
    values = baseline.get("values", {})
    checks = baseline.get("checks", {})
    rows = []
    for key in sorted(values):
        mode = checks.get(key, "ratio")
        base = values[key]
        cur = current_values.get(key)
        if cur is None:
            rows.append((key, mode, base, None, False,
                         "missing from current run"))
            continue
        if mode == "exact":
            ok = _close(base, cur)
            detail = "must equal baseline"
        elif mode == "max":
            limit = base * (1.0 + tolerance)
            ok = cur <= limit
            detail = "<= %.6g (base %.6g +%.0f%%)" % (
                limit, base, tolerance * 100)
        elif mode == "min":
            limit = base * (1.0 - tolerance)
            ok = cur >= limit
            detail = ">= %.6g (base %.6g -%.0f%%)" % (
                limit, base, tolerance * 100)
        elif mode == "ratio":
            scale = max(abs(base), 1e-12)
            ok = abs(cur - base) / scale <= tolerance
            detail = "within %.0f%% of %.6g" % (tolerance * 100, base)
        else:
            ok, detail = False, "unknown check mode %r" % mode
        rows.append((key, mode, base, cur, ok, detail))
    return rows


def load_bench_json(path):
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, dict) or "values" not in data:
        raise CheckFailure(
            "%s: not a repro-metrics bench file (no 'values')" % path)
    return data


def bench_check(baseline_path, tolerance=0.15, current_path=None,
                update=False, out=print):
    """Run one gate; returns a process exit code (0 = pass)."""
    try:
        baseline = load_bench_json(baseline_path)
    except FileNotFoundError:
        if not update:
            out("bench-check: no baseline %s (run with --update to "
                "create it)" % baseline_path)
            return 2
        name = _bench_name_from_path(baseline_path)
        baseline = {"bench": name}
    except CheckFailure as exc:
        out("bench-check: %s" % exc)
        return 2
    name = baseline.get("bench") or _bench_name_from_path(
        baseline_path)
    if current_path is not None:
        current = load_bench_json(current_path)
        source = current_path
    else:
        scenario = SCENARIOS.get(name)
        if scenario is None:
            out("bench-check: no built-in scenario %r "
                "(known: %s); pass --current FILE"
                % (name, ", ".join(sorted(SCENARIOS))))
            return 2
        current = scenario()
        source = "fresh %r run" % name
    if update:
        tmp = "%s.tmp.%d" % (baseline_path, os.getpid())
        with open(tmp, "w") as f:
            json.dump(current, f, indent=1, sort_keys=True)
            f.write("\n")
        os.replace(tmp, baseline_path)
        out("bench-check: baseline %s updated from %s"
            % (baseline_path, source))
        return 0
    rows = compare(baseline, current.get("values", {}), tolerance)
    failures = 0
    out("bench-check %s: baseline %s vs %s (tolerance %.0f%%)"
        % (name, baseline_path, source, tolerance * 100))
    for key, mode, base, cur, ok, detail in rows:
        mark = "ok  " if ok else "FAIL"
        out("  %s %-26s %-6s base=%-12s current=%-12s %s"
            % (mark, key, mode, _fmt(base), _fmt(cur), detail))
        if not ok:
            failures += 1
    if failures:
        out("bench-check: %d regression(s) against %s"
            % (failures, baseline_path))
        return 1
    out("bench-check: ok (%d check(s))" % len(rows))
    return 0


def _bench_name_from_path(path):
    stem = os.path.splitext(os.path.basename(path))[0]
    if stem.startswith("BENCH_"):
        stem = stem[len("BENCH_"):]
    return stem.lower()


def _fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return "%.6g" % value
    return str(value)
