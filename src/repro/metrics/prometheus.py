"""Prometheus text exposition rendering of a metrics snapshot.

Renders the ``repro-metrics/1`` snapshot produced by
:meth:`repro.metrics.MetricsRegistry.snapshot` in the Prometheus
text-based exposition format (version 0.0.4): ``# HELP`` / ``# TYPE``
headers, one sample line per child, histograms expanded into
cumulative ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
Dependency-free on purpose — a scrape endpoint or a file sink can use
it without pulling in a client library.
"""

_NAME_OK = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _metric_name(name):
    out = "".join(ch if ch in _NAME_OK else "_" for ch in name)
    if out and out[0].isdigit():
        out = "_" + out
    return out or "_"


def _label_value(value):
    return str(value).replace("\\", r"\\").replace(
        "\n", r"\n").replace('"', r'\"')


def _labels_text(labels, extra=None):
    items = []
    for key, value in sorted((labels or {}).items()):
        items.append('%s="%s"' % (_metric_name(key),
                                  _label_value(value)))
    if extra:
        items.extend(extra)
    return "{%s}" % ",".join(items) if items else ""


def _num(value):
    if value is None:
        return "NaN"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def render_prometheus(snapshot):
    """The text exposition document for one snapshot dict."""
    metrics = snapshot.get("metrics", {})
    lines = []
    for name in sorted(metrics):
        family = metrics[name]
        pname = _metric_name(name)
        kind = family.get("type", "untyped")
        help_text = family.get("help", "")
        if help_text:
            lines.append("# HELP %s %s"
                         % (pname, help_text.replace("\n", " ")))
        lines.append("# TYPE %s %s" % (pname, kind))
        for sample in family.get("samples", ()):
            labels = sample.get("labels", {})
            if kind == "histogram":
                for bound, count in sample.get("buckets", ()):
                    le = "+Inf" if bound == "+Inf" else _num(bound)
                    lines.append("%s_bucket%s %s" % (
                        pname,
                        _labels_text(labels,
                                     extra=['le="%s"' % le]),
                        _num(count)))
                lines.append("%s_sum%s %s"
                             % (pname, _labels_text(labels),
                                _num(sample.get("sum", 0))))
                lines.append("%s_count%s %s"
                             % (pname, _labels_text(labels),
                                _num(sample.get("count", 0))))
                exemplar = sample.get("exemplar")
                if exemplar:
                    # Text format 0.0.4 has no native exemplar
                    # syntax; a comment keeps the document valid for
                    # every scraper while still shipping the link
                    # from the slowest observation to its trace.
                    lines.append(
                        "# exemplar %s%s trace_id=%s value=%s"
                        % (pname, _labels_text(labels),
                           exemplar.get("trace_id"),
                           _num(exemplar.get("value"))))
            else:
                lines.append("%s%s %s"
                             % (pname, _labels_text(labels),
                                _num(sample.get("value", 0))))
    return "\n".join(lines) + "\n"
