"""The persistent build manifest (``build.state.json``).

One manifest per library root.  For every source file it records the
token-stream fingerprint, the units the file produced, and the
interface digest of every foreign unit the compile read; for every
unit it records the current interface digest; and it persists the
unit dependency graph plus the recorded compile order (so §3.3's
usage-history-dependent "latest compiled architecture" default stays
reproducible across incremental sessions).

Writes are atomic (tempfile + ``os.replace``), and loads are
tolerant: a corrupt manifest is quarantined to ``*.corrupt`` and the
build degrades to a cold one instead of crashing.
"""

import json
import os
import tempfile

from .depgraph import DependencyGraph
from .fingerprint import FINGERPRINT_VERSION

STATE_NAME = "build.state.json"
STATE_VERSION = 1

_SEP = "\x1f"


def _uk(unit):
    """(lib, key) -> JSON-safe string key."""
    return "%s%s%s" % (unit[0], _SEP, unit[1])


def _unit(text):
    lib, _, key = text.partition(_SEP)
    return (lib, key)


class BuildCache:
    """Manifest mapping source files and units to their fingerprints,
    with hit/miss/invalidate accounting."""

    def __init__(self, root, state_name=STATE_NAME):
        self.root = root
        self.path = os.path.join(root, state_name)
        self._files = {}    # path -> {fingerprint, units, deps}
        self._digests = {}  # "lib\x1fkey" -> digest
        self.graph = DependencyGraph()
        self.compile_order = []  # [(lib, key), ...]
        self.stats = {
            "hits": 0,
            "misses": 0,
            "invalidated": 0,
            "quarantined": 0,
            "ag_evaluations": 0,
        }
        self.loaded_from_disk = False

    # -- persistence -------------------------------------------------------

    def load(self):
        """Read the manifest; tolerate absence and quarantine rot."""
        try:
            with open(self.path) as f:
                data = json.load(f)
        except FileNotFoundError:
            return self
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            self._quarantine()
            return self
        if not isinstance(data, dict) \
                or data.get("version") != STATE_VERSION \
                or data.get("fingerprint_version") != FINGERPRINT_VERSION:
            # A manifest from another scheme: a cold build re-creates
            # it; no need to quarantine a merely old file.
            return self
        self._files = {
            path: {
                "fingerprint": entry.get("fingerprint", ""),
                "units": [tuple(u) for u in entry.get("units", [])],
                "deps": dict(entry.get("deps", {})),
            }
            for path, entry in data.get("files", {}).items()
            if isinstance(entry, dict)
        }
        self._digests = dict(data.get("digests", {}))
        self.graph = DependencyGraph.from_json(data.get("graph", {}))
        self.compile_order = [
            tuple(u) for u in data.get("compile_order", [])
        ]
        self.loaded_from_disk = True
        return self

    def save(self):
        """Atomically write the manifest next to the library data."""
        os.makedirs(self.root, exist_ok=True)
        payload = {
            "version": STATE_VERSION,
            "fingerprint_version": FINGERPRINT_VERSION,
            "files": {
                path: {
                    "fingerprint": entry["fingerprint"],
                    "units": [list(u) for u in entry["units"]],
                    "deps": entry["deps"],
                }
                for path, entry in sorted(self._files.items())
            },
            "digests": dict(sorted(self._digests.items())),
            "graph": self.graph.to_json(),
            "compile_order": [list(u) for u in self.compile_order],
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".build.state.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(payload, f, indent=1, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _quarantine(self):
        """Move a corrupt manifest aside so the next save is clean."""
        self.stats["quarantined"] += 1
        try:
            os.replace(self.path, self.path + ".corrupt")
        except OSError:
            pass

    # -- file entries ------------------------------------------------------

    def files(self):
        return sorted(self._files)

    def file_entry(self, path):
        return self._files.get(path)

    def set_file_entry(self, path, fingerprint, units, dep_digests):
        """Record a successful build of ``path``.

        ``units`` — (lib, key) pairs the file produced, in compile
        order; ``dep_digests`` — {(lib, key): digest} of every foreign
        unit the compile read, as observed at build time.
        """
        self._files[path] = {
            "fingerprint": fingerprint,
            "units": [tuple(u) for u in units],
            "deps": {_uk(u): d for u, d in dep_digests.items()},
        }

    def forget_file(self, path):
        self._files.pop(path, None)

    def recorded_dep_digests(self, path):
        entry = self._files.get(path)
        if not entry:
            return {}
        return {_unit(k): d for k, d in entry["deps"].items()}

    # -- unit digests ------------------------------------------------------

    def digest_of(self, unit):
        return self._digests.get(_uk(unit))

    def set_digest(self, unit, digest):
        self._digests[_uk(unit)] = digest

    def owner_of(self, unit):
        """Which manifest file produced ``unit`` (None if external)."""
        unit = tuple(unit)
        for path, entry in self._files.items():
            if unit in entry["units"]:
                return path
        return None

    # -- accounting --------------------------------------------------------

    def record_hit(self):
        self.stats["hits"] += 1

    def record_miss(self):
        self.stats["misses"] += 1

    def record_invalidation(self):
        self.stats["invalidated"] += 1

    def format_stats(self):
        s = self.stats
        return (
            "cache: %d hit(s), %d miss(es), %d invalidated, "
            "%d AG evaluation(s)"
            % (s["hits"], s["misses"], s["invalidated"],
               s["ag_evaluations"])
        )
