"""The :class:`IncrementalBuilder` facade.

Rebuilds only source files whose token-stream fingerprint or whose
recorded dependency *interface digests* changed; everything else is a
cache hit that performs **zero** AG evaluations.  Dirty files are
compiled in topological batches, optionally in parallel, and the
manifest (fingerprints, digests, unit graph, compile order) is saved
atomically back to ``build.state.json`` in the library root.

Invalidation is digest-based, which yields early cutoff: editing a
package *body* rebuilds that file, but because the package
declaration's interface digest is unchanged the architectures that
merely ``use`` the package stay cached.
"""

import os

from ..diag import Tracer
from ..vhdl.lexer import scan
from .cache import STATE_NAME, BuildCache
from .fingerprint import interface_digest, raw_fingerprint, \
    tokens_fingerprint
from .scheduler import Scheduler, file_batches, harvest_names


class BuildError(Exception):
    """The build could not run (bad root, unreadable input, ...)."""


class BuildReport:
    """What one :meth:`IncrementalBuilder.build` call did."""

    #: Per-file actions, in the order the build considered them.
    ACTIONS = ("compiled", "hit", "failed", "skipped")

    def __init__(self):
        self.order = []        # paths, schedule order
        self.actions = {}      # path -> action
        self.reasons = {}      # path -> why it was rebuilt / skipped
        self.messages = {}     # path -> [legacy string, ...]
        self.diagnostics = {}  # path -> [Diagnostic dict, ...]
        self.units = {}        # path -> [(lib, key), ...]
        self.stats = {}        # cache stats snapshot
        self.batches = []      # the file schedule that was used
        self.jobs = 1
        #: merged Chrome trace events: driver phases + every worker's
        #: compile phases (each carrying the recording pid)
        self.trace_events = []
        #: merged AG-evaluation counters across all compiled files
        self.ag_stats = {}
        #: repro.diag.Diagnostic lint findings (``build(lint=...)``)
        self.lint_findings = []

    def record(self, path, action, reason="", messages=(), units=(),
               diagnostics=()):
        if path not in self.actions:
            self.order.append(path)
        self.actions[path] = action
        if reason:
            self.reasons[path] = reason
        if messages:
            self.messages[path] = list(messages)
        if diagnostics:
            self.diagnostics[path] = [dict(d) for d in diagnostics]
        if units:
            self.units[path] = [tuple(u) for u in units]

    def all_diagnostics(self):
        """Structured :class:`repro.diag.Diagnostic` records, in
        schedule order (for SARIF / JSON rendering)."""
        from ..diag import Diagnostic

        out = []
        for path in self.order:
            for d in self.diagnostics.get(path, ()):
                out.append(Diagnostic.from_dict(d))
        return out

    def paths(self, action):
        return [p for p in self.order if self.actions[p] == action]

    @property
    def ok(self):
        return not self.paths("failed") and not self.paths("skipped")

    def summary(self):
        lines = []
        for path in self.order:
            action = self.actions[path]
            reason = self.reasons.get(path, "")
            line = "%-8s %s" % (action, path)
            if reason:
                line += "  (%s)" % reason
            lines.append(line)
            for msg in self.messages.get(path, ()):
                lines.append("  %s" % msg)
        s = self.stats
        if s:
            lines.append(
                "cache: %d hit(s), %d miss(es), %d invalidated, "
                "%d AG evaluation(s)"
                % (s.get("hits", 0), s.get("misses", 0),
                   s.get("invalidated", 0), s.get("ag_evaluations", 0)))
        return "\n".join(lines)


class IncrementalBuilder:
    """Incremental, parallel front end over the one-shot compiler."""

    def __init__(self, root, work="work", reference_libs=(), jobs=1,
                 state_name=STATE_NAME):
        if not root:
            raise BuildError(
                "incremental builds need a persistent library root")
        self.root = os.path.abspath(root)
        self.work = work
        self.reference_libs = tuple(reference_libs)
        self.jobs = max(1, int(jobs or 1))
        self.cache = BuildCache(self.root, state_name=state_name).load()

    # -- public API --------------------------------------------------------

    def build(self, paths, force=False, lint=None):
        """Bring the library up to date with ``paths``.

        Returns a :class:`BuildReport`.  Only the *work* library is
        ever written; reference libraries are read-only inputs whose
        interface digests participate in invalidation but which are
        never scheduled for a rebuild.

        ``lint`` is an optional :class:`repro.analysis.LintEngine`;
        when given, the driver invokes it on every unit the build
        touched (compiled *or* cache-hit — lint rules evolve
        independently of source content) and collects the findings in
        ``report.lint_findings``.
        """
        paths = self._normalize(paths)
        report = BuildReport()
        report.jobs = self.jobs
        tracer = Tracer()

        # One root span over the whole build: every phase below it —
        # including worker-side spans shipped back across the fork
        # boundary — forms a single connected tree, which attaches to
        # the caller's ambient span (e.g. a serve request) when one
        # is active.
        with tracer.phase("build", cat="build", files=len(paths)):
            self._build_steps(paths, force, lint, report, tracer)

        report.stats = dict(self.cache.stats)
        report.trace_events = tracer.events
        return report

    def _build_steps(self, paths, force, lint, report, tracer):
        """The traced body of :meth:`build` (one span per phase)."""
        texts = {}
        with tracer.phase("read_sources", files=len(paths)):
            for path in paths:
                try:
                    with open(path) as f:
                        texts[path] = f.read()
                except OSError as exc:
                    raise BuildError("cannot read %s: %s" % (path, exc))

        fingerprints, provides, requires = {}, {}, {}
        with tracer.phase("fingerprint", files=len(paths)):
            for path, text in texts.items():
                try:
                    tokens = scan(text, path)
                except Exception:
                    fingerprints[path] = raw_fingerprint(text)
                    provides[path], requires[path] = set(), set()
                    continue
                fingerprints[path] = tokens_fingerprint(tokens)
                provides[path], requires[path] = harvest_names(
                    tokens, work=self.work,
                    reference_libs=self.reference_libs)

        # File-level scheduling DAG from the syntactic name sets.
        provider = {}
        for path in paths:  # later files win, like recompilation does
            for name in provides[path]:
                provider[name] = path
        deps = {
            path: {
                provider[name]
                for name in requires[path]
                if provider.get(name) not in (None, path)
            }
            for path in paths
        }
        report.batches = file_batches(paths, deps)

        new_digests = {}
        failed = set()
        scheduler = Scheduler(self.root, self.work,
                              self.reference_libs, jobs=self.jobs)
        try:
            for batch_no, batch in enumerate(report.batches):
                to_compile = []
                for path in batch:
                    if deps[path] & failed:
                        failed.add(path)  # propagate downstream
                        report.record(
                            path, "skipped",
                            reason="depends on a failed file")
                        continue
                    reason = self._dirty_reason(
                        path, fingerprints[path], new_digests, force)
                    if reason is None:
                        self.cache.record_hit()
                        entry = self.cache.file_entry(path)
                        report.record(path, "hit",
                                      units=entry["units"])
                    else:
                        self.cache.record_miss()
                        to_compile.append(path)
                        report.reasons[path] = reason
                with tracer.phase("batch", index=batch_no,
                                  files=len(to_compile)):
                    results = scheduler.run_batch(to_compile)
                for result in results:
                    tracer.add_events(result.get("trace", ()))
                    _merge_ag_stats(report.ag_stats,
                                    result.get("ag_stats", {}))
                    self._absorb(result, fingerprints, requires,
                                 new_digests, failed, report)
        finally:
            scheduler.close()

        with tracer.phase("save_manifest"):
            self.cache.save()
        if lint is not None:
            with tracer.phase("lint", files=len(report.units)):
                self._lint(report, lint)

    def _lint(self, report, lint):
        """Invoke the lint engine per built unit, in build order."""
        library = self.library()
        lint.context.library = library
        seen = set()
        for path in report.order:
            for key in report.units.get(path, ()):
                key = tuple(key)
                if key in seen:
                    continue
                seen.add(key)
                node = library.find_unit(*key) \
                    or library._units.get(key)
                if node is not None:
                    report.lint_findings.extend(lint.lint_unit(node))

    def library(self):
        """A :class:`LibraryManager` over the built root, with the
        recorded deterministic compile order applied."""
        from ..vhdl.library import LibraryManager

        lib = LibraryManager(root=self.root, work=self.work,
                             reference_libs=self.reference_libs)
        lib.apply_compile_order(self.cache.compile_order)
        return lib

    # -- internals ---------------------------------------------------------

    def _normalize(self, paths):
        out, seen = [], set()
        for path in paths:
            ap = os.path.abspath(path)
            if ap not in seen:
                seen.add(ap)
                out.append(ap)
        if not out:
            raise BuildError("nothing to build")
        return out

    def _dirty_reason(self, path, fingerprint, new_digests, force):
        """Why ``path`` must be rebuilt, or None for a cache hit."""
        if force:
            return "forced"
        entry = self.cache.file_entry(path)
        if entry is None:
            return "not built before"
        if entry["fingerprint"] != fingerprint:
            return "source changed"
        for lib, key in entry["units"]:
            if not os.path.exists(self._artifact(lib, key)):
                return "artifact missing"
        for unit, recorded in sorted(
                self.cache.recorded_dep_digests(path).items()):
            current = self._current_digest(unit, new_digests)
            if current != recorded:
                self.cache.record_invalidation()
                return "interface of %s.%s changed" % unit
        return None

    def _absorb(self, result, fingerprints, requires, new_digests,
                failed, report):
        """Fold one compile result into cache, graph, and report."""
        path = result["path"]
        self.cache.stats["ag_evaluations"] += 1
        if not result["ok"]:
            failed.add(path)
            self.cache.forget_file(path)
            report.record(path, "failed",
                          reason=report.reasons.get(path, ""),
                          messages=result["messages"],
                          diagnostics=result.get("diagnostics", ()))
            return
        units = [(u["lib"], u["key"]) for u in result["units"]]
        unit_set = set(units)
        dep_digests = {}
        for u in result["units"]:
            unit = (u["lib"], u["key"])
            new_digests[unit] = u["digest"]
            self.cache.set_digest(unit, u["digest"])
            edges = [tuple(d) for d in u["depends"]]
            self.cache.graph.set_deps(unit, edges)
            for dep in edges:
                if dep in unit_set:
                    continue
                digest = self._current_digest(dep, new_digests)
                if digest is not None:
                    dep_digests[dep] = digest
        # The VIF depends-set records what was *referenced*; values the
        # compiler folded at compile time (a used package's constants,
        # say) leave no foreign ref behind.  Union in the syntactic
        # requirements so those reads invalidate too.
        for dep in self._resolve_requires(requires.get(path, ())):
            if dep in unit_set or dep in dep_digests:
                continue
            digest = self._current_digest(dep, new_digests)
            if digest is not None:
                dep_digests[dep] = digest
        self.cache.set_file_entry(path, fingerprints[path], units,
                                  dep_digests)
        # Deterministic compile-order recording: recompiled units move
        # to the end (the §3.3 latest-architecture rule), in schedule
        # order — never in worker completion order.
        self.cache.compile_order = [
            entry for entry in self.cache.compile_order
            if entry not in unit_set
        ] + units
        report.record(path, "compiled",
                      reason=report.reasons.get(path, ""),
                      messages=result["messages"], units=units,
                      diagnostics=result.get("diagnostics", ()))

    def _resolve_requires(self, names):
        """Map syntactic required names to library units that exist
        (work first, then reference libraries, then STD)."""
        out = []
        for name in sorted(names):
            for lib in (self.work,) + self.reference_libs + ("std",):
                unit = (lib, name)
                if unit == ("std", "standard") or os.path.exists(
                        self._artifact(lib, name)):
                    out.append(unit)
                    break
        return out

    def _artifact(self, lib, key):
        from ..vhdl.library import unit_filename

        return os.path.join(self.root, lib,
                            unit_filename(key, "vif.json"))

    def _current_digest(self, unit, new_digests):
        """Interface digest of ``unit`` as of now (None if unknown)."""
        if unit in new_digests:
            return new_digests[unit]
        digest = self.cache.digest_of(unit)
        if digest is not None:
            return digest
        payload = self._load_payload(unit)
        if payload is None:
            return None
        digest = interface_digest(payload)
        self.cache.set_digest(unit, digest)
        return digest

    def _load_payload(self, unit):
        lib, key = unit
        if (lib, key) == ("std", "standard"):
            from ..vhdl.stdpkg import standard

            return standard().payload
        path = self._artifact(lib, key)
        if not os.path.exists(path):
            return None
        import json

        try:
            with open(path) as f:
                return json.load(f)
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            return None


def _merge_ag_stats(into, stats):
    """Fold one worker's AGObserver dict into the report aggregate."""
    for key, value in (stats or {}).items():
        if isinstance(value, dict):
            bucket = into.setdefault(key, {})
            for k, v in value.items():
                bucket[k] = bucket.get(k, 0) + v
        elif isinstance(value, (int, float)) and key != "hit_rate":
            into[key] = into.get(key, 0) + value
    hits = into.get("cache_hits", 0)
    misses = into.get("cache_misses", 0)
    into["hit_rate"] = hits / (hits + misses) if hits + misses else 0.0
