"""The unit-level dependency DAG.

Edges come straight from the ``depends`` set the
:class:`repro.vif.io.VIFWriter` records on every payload whenever it
encodes a foreign reference — i.e. whenever a compiled unit points at
a node owned by another unit (a ``use``\\ d package, the entity of an
architecture, a configured component's entity, ...).  That makes the
graph a faithful "what did this compile actually read" record rather
than a syntactic approximation.

Nodes are ``(library, key)`` pairs exactly as in
``LibraryManager.compile_order``.  The graph is JSON-serializable so
the build cache can persist it in ``build.state.json``.
"""


class DependencyGraph:
    """Directed graph: unit -> set of units it depends on."""

    def __init__(self):
        self._deps = {}  # (lib, key) -> set((lib, key))

    # -- construction ------------------------------------------------------

    def set_deps(self, node, deps):
        """Record (replacing) the dependency set of ``node``."""
        node = tuple(node)
        self._deps[node] = {tuple(d) for d in deps if tuple(d) != node}

    def add_node(self, node):
        self._deps.setdefault(tuple(node), set())

    def discard(self, node):
        self._deps.pop(tuple(node), None)

    # -- queries -----------------------------------------------------------

    def nodes(self):
        return sorted(self._deps)

    def deps_of(self, node):
        """Direct dependencies, deterministic order."""
        return sorted(self._deps.get(tuple(node), ()))

    def dependents_of(self, node):
        """Direct reverse edges: who depends on ``node``."""
        node = tuple(node)
        return sorted(n for n, deps in self._deps.items() if node in deps)

    def transitive_dependents(self, nodes):
        """Every unit reachable by following reverse edges from
        ``nodes`` (the invalidation frontier), excluding the seeds."""
        seeds = {tuple(n) for n in nodes}
        out = set()
        frontier = set(seeds)
        while frontier:
            nxt = set()
            for n, deps in self._deps.items():
                if n not in out and n not in seeds and deps & frontier:
                    nxt.add(n)
            out |= nxt
            frontier = nxt
        return sorted(out)

    # -- scheduling --------------------------------------------------------

    def topo_batches(self, nodes=None):
        """Kahn layering restricted to ``nodes`` (default: all).

        Returns a list of batches; every unit in a batch depends only
        on units in earlier batches (edges leaving the restricted set
        are ignored).  Batches and their contents are sorted, so the
        schedule is deterministic.  Cycles — which a correct VHDL
        library cannot contain, but a corrupt manifest might — are
        flushed as one final sorted batch rather than looping forever.
        """
        if nodes is None:
            pool = set(self._deps)
        else:
            pool = {tuple(n) for n in nodes}
        remaining = {
            n: {d for d in self._deps.get(n, ()) if d in pool}
            for n in pool
        }
        batches = []
        while remaining:
            ready = sorted(n for n, deps in remaining.items() if not deps)
            if not ready:  # cycle: emit deterministically and stop
                batches.append(sorted(remaining))
                break
            batches.append(ready)
            for n in ready:
                del remaining[n]
            ready_set = set(ready)
            for deps in remaining.values():
                deps -= ready_set
        return batches

    # -- persistence -------------------------------------------------------

    def to_json(self):
        return {
            "%s\x1f%s" % node: sorted("%s\x1f%s" % d for d in deps)
            for node, deps in sorted(self._deps.items())
        }

    @classmethod
    def from_json(cls, data):
        graph = cls()
        for node_s, deps_s in (data or {}).items():
            node = tuple(node_s.split("\x1f", 1))
            if len(node) != 2:
                continue
            deps = [
                tuple(d.split("\x1f", 1))
                for d in deps_s
                if "\x1f" in d
            ]
            graph.set_deps(node, deps)
        return graph
