"""Stable content hashes for incremental builds.

Two kinds of fingerprints:

* :func:`source_fingerprint` hashes a VHDL source text by its
  *canonical token stream* — the scanner already skips whitespace and
  comments and lower-cases identifiers, so an edit that only reflows
  layout or touches comments produces the identical fingerprint and
  the cached compile stays valid.

* :func:`interface_digest` hashes a unit's VIF payload with volatile
  fields (generated code, line numbers) stripped.  Dependent units are
  invalidated only when this digest changes, which gives the classic
  "early cutoff": recompiling a package *body* does not cascade into
  every architecture that merely ``use``\\ s the package declaration.

Both are hex SHA-256 strings, salted with a format version so a
change to the hashing scheme invalidates old manifests wholesale
instead of silently mis-hitting.
"""

import hashlib
import json

# bfp-3: generated models now pass declaration line coordinates to
# ctx.signal()/ctx.port()/ctx.process(), and units record their
# source file; bumping invalidates cached payloads built before.
FINGERPRINT_VERSION = "bfp-3"

#: Payload node fields that do not affect a unit's *interface* as seen
#: by dependents: generated back-end text and source coordinates
#: (``source_file`` included, so renaming a file does not cascade).
VOLATILE_FIELDS = ("py_source", "c_source", "line", "source_file")

_SEP = b"\x1f"
_END = b"\x1e"


def _base_hash():
    h = hashlib.sha256()
    h.update(FINGERPRINT_VERSION.encode())
    h.update(_END)
    return h


def tokens_fingerprint(tokens):
    """Hex digest of a canonical token stream.

    Only ``(kind, value)`` pairs enter the hash — positions do not —
    so reflowing layout or editing comments leaves it unchanged, and
    the scanner's lower-casing makes identifier case irrelevant, as
    VHDL's lexical rules demand.
    """
    h = _base_hash()
    for tok in tokens:
        h.update(tok.kind.encode())
        h.update(_SEP)
        value = tok.value
        if isinstance(value, (str, int, float, bool)) or value is None:
            h.update(repr(value).encode("utf-8", "replace"))
        else:
            h.update(repr(tok.text).encode("utf-8", "replace"))
        h.update(_END)
    return h.hexdigest()


def raw_fingerprint(text):
    """Fallback digest of the raw text, under a distinct salt (used
    when the file does not even scan — it will not compile either,
    but it still deserves a stable, distinct fingerprint)."""
    h = _base_hash()
    h.update(b"raw")
    h.update(_END)
    h.update(text.encode("utf-8", "replace"))
    return h.hexdigest()


def source_fingerprint(text, scan=None):
    """Hex digest of the canonical token stream of ``text``.

    ``scan`` defaults to the VHDL scanner; it is injectable so the
    fingerprint layer stays usable for other front ends (and cheap to
    unit-test).  If scanning fails, falls back to
    :func:`raw_fingerprint`.
    """
    if scan is None:
        from ..vhdl.lexer import scan as scan  # noqa: PLW0127
    try:
        tokens = scan(text, "<fingerprint>")
    except Exception:
        return raw_fingerprint(text)
    return tokens_fingerprint(tokens)


def interface_digest(payload):
    """Hex digest of the interface-relevant part of a VIF payload.

    Strips :data:`VOLATILE_FIELDS` from every node so body-only and
    layout-only recompiles keep the digest stable, then hashes the
    canonical JSON form.  The node *table order* is part of the digest
    on purpose: foreign references address nodes by index, so a
    reordering is an interface change even if no field differs.
    """
    nodes = []
    for kind, fields in payload.get("nodes", ()):
        kept = {
            name: value
            for name, value in fields.items()
            if name not in VOLATILE_FIELDS
        }
        nodes.append([kind, kept])
    canonical = {
        "format": payload.get("format"),
        "library": payload.get("library"),
        "unit": payload.get("unit"),
        "roots": payload.get("roots", {}),
        "depends": payload.get("depends", []),
        "nodes": nodes,
    }
    h = hashlib.sha256()
    h.update(FINGERPRINT_VERSION.encode())
    h.update(_END)
    h.update(
        json.dumps(
            canonical, sort_keys=True, separators=(",", ":"), default=str
        ).encode()
    )
    return h.hexdigest()
