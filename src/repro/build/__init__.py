"""Incremental build subsystem.

The paper's architecture (§2) stores compiled units in persistent
work/reference libraries of immutable VIF — exactly the substrate an
incremental build system needs.  This package turns the one-shot
:class:`repro.vhdl.compiler.Compiler` into an incremental, parallel
build system:

``fingerprint``
    Stable content hashes over the canonical *token stream* (so
    whitespace/comment edits do not invalidate) and per-unit
    *interface digests* over the VIF payload with volatile fields
    stripped (so body-only recompiles do not cascade).

``depgraph``
    A unit-level dependency DAG harvested from the ``depends`` sets
    the :class:`repro.vif.io.VIFWriter` records on every payload.

``cache``
    The ``build.state.json`` manifest in the library root: source
    fingerprints, per-unit digests, dependency edges, and the
    recorded compile order — written atomically, loaded tolerantly.

``scheduler``
    Topological batch scheduling with optional parallel workers
    (``fork``-based so the generated principal grammar is inherited,
    not rebuilt per worker).

``driver``
    The :class:`IncrementalBuilder` facade that rebuilds only files
    whose fingerprint or transitive interface digest changed.
"""

from .cache import BuildCache
from .depgraph import DependencyGraph
from .driver import BuildError, BuildReport, IncrementalBuilder
from .fingerprint import interface_digest, source_fingerprint

__all__ = [
    "BuildCache",
    "BuildError",
    "BuildReport",
    "DependencyGraph",
    "IncrementalBuilder",
    "interface_digest",
    "source_fingerprint",
]
