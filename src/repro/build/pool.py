"""A warmed fork-context worker pool shared across subsystems.

Both the incremental build scheduler and the ``repro fuzz`` sweep
runner fan CPU-bound tasks across processes the same way: a ``fork``
multiprocessing context whose parent *warms* the generated principal
grammar first, so every worker inherits the translator instead of
re-running the Linguist step per process.  :class:`ForkPool` owns that
recipe in one place.

The pool degrades gracefully: when ``fork`` is unavailable (or
``jobs=1``) every task runs inline in the parent, so callers get one
code path whose results are byte-identical either way —
:meth:`map_ordered` always returns results in *input* order, never
completion order.
"""

import multiprocessing
import os

from repro.trace.context import SpanContext, current_context, use


def _call_with_context(fn, ctx_dict, args):
    """Worker-side shim: re-activate the submitter's span context.

    Top-level (picklable) on purpose.  The forked worker runs ``fn``
    under the deserialized context, so any ``Tracer.phase`` the task
    records parents into the submitting job's span tree.
    """
    ctx = SpanContext.from_dict(ctx_dict) if ctx_dict else None
    with use(ctx):
        return fn(*args)


def fork_available():
    return (
        os.name == "posix"
        and "fork" in multiprocessing.get_all_start_methods()
    )


def warm_grammar():
    """The default warm step: generate the principal translator."""
    from ..vhdl.grammar import principal_grammar

    principal_grammar()


class ForkPool:
    """Ordered task fan-out over warmed forked workers.

    ``warm`` runs once in the parent immediately before the executor
    is created (default: :func:`warm_grammar`).  ``on_error`` maps a
    worker exception to a substitute result — when omitted, worker
    exceptions propagate.
    """

    def __init__(self, jobs=1, warm=warm_grammar, on_error=None):
        self.jobs = max(1, int(jobs or 1))
        self.warm = warm
        self.on_error = on_error
        self._executor = None

    @property
    def parallel(self):
        return self.jobs > 1 and fork_available()

    def map_ordered(self, fn, argtuples):
        """``[fn(*args) for args in argtuples]`` — possibly forked,
        always in input order."""
        argtuples = list(argtuples)
        if not argtuples:
            return []
        if not self.parallel or len(argtuples) == 1:
            return [self._run_inline(fn, args) for args in argtuples]
        executor = self._ensure_executor()
        # Ship the ambient span context (if any) with every task, so
        # worker-side tracer events re-parent into the submitter's
        # span.  Inline runs need nothing: the context is already
        # ambient in this thread.
        ctx = current_context()
        ctx_dict = ctx.to_dict() if ctx is not None else None
        futures = [
            executor.submit(_call_with_context, fn, ctx_dict, args)
            for args in argtuples
        ]
        results = []
        for args, future in zip(argtuples, futures):
            try:
                results.append(future.result())
            except Exception as exc:
                if self.on_error is None:
                    raise
                results.append(self.on_error(args, exc))
        return results

    def _run_inline(self, fn, args):
        try:
            return fn(*args)
        except Exception as exc:
            if self.on_error is None:
                raise
            return self.on_error(args, exc)

    def _ensure_executor(self):
        if self._executor is None:
            from concurrent.futures import ProcessPoolExecutor

            if self.warm is not None:
                self.warm()
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context("fork"),
            )
        return self._executor

    def close(self):
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
