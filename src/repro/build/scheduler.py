"""Topological batch scheduling and the per-file compile task.

Files are layered with Kahn's algorithm over a *syntactic* file-level
dependency approximation (harvested from the token stream, see
:func:`harvest_names`) so that a cold build — where no semantic
dependency data exists yet — can still be parallelized safely.  The
semantic unit-level graph from the VIF ``depends`` sets takes over for
*invalidation* once a build has run.

Both the serial and the parallel path execute the exact same
:func:`compile_file_task` (a fresh disk-backed library per file), so a
``--jobs N`` build produces byte-identical artifacts to a serial one.
Parallel workers run under a ``fork`` multiprocessing context: the
parent warms the generated principal grammar once and every worker
inherits it instead of re-running the Linguist step.

Compile-*order* is recorded deterministically from the schedule
(batch by batch, input order within a batch), never from worker
completion order, so §3.3's usage-history-dependent
latest-architecture default stays reproducible.
"""

import os

from .fingerprint import interface_digest
from .pool import ForkPool, fork_available

#: Token kinds that terminate a selected-name path.
_NAME_END = {"DOT"}


def harvest_names(tokens, work="work", reference_libs=()):
    """Syntactic (provides, requires) name sets of one design file.

    ``provides`` — primary-unit names the file declares (entities,
    packages, configurations).  ``requires`` — primary-unit names the
    compile will need resolved: ``use`` paths, the target entity of
    architectures/configurations, packages of package bodies, and
    ``lib.name`` selected prefixes for any visible library name.
    This is a conservative approximation used only for *scheduling*;
    correctness of invalidation rests on the semantic VIF ``depends``
    sets.
    """
    provides = set()
    requires = set()
    libnames = {work.lower(), "work", "std"}
    libnames.update(l.lower() for l in reference_libs)
    toks = list(tokens)

    def kind(i):
        return toks[i].kind if 0 <= i < len(toks) else None

    def val(i):
        if 0 <= i < len(toks):
            v = toks[i].value
            return v.lower() if isinstance(v, str) else None
        return None

    i = 0
    while i < len(toks):
        k = kind(i)
        if k == "kw_library":
            j = i + 1
            while kind(j) in ("ID", "COMMA"):
                if kind(j) == "ID":
                    libnames.add(val(j))
                j += 1
            i = j
            continue
        if k == "kw_entity" and kind(i + 1) == "ID" \
                and kind(i + 2) == "kw_is":
            provides.add(val(i + 1))
            i += 3
            continue
        if k == "kw_package" and kind(i + 1) == "kw_body" \
                and kind(i + 2) == "ID":
            requires.add(val(i + 2))
            i += 3
            continue
        if k == "kw_package" and kind(i + 1) == "ID":
            provides.add(val(i + 1))
            i += 2
            continue
        if k in ("kw_architecture", "kw_configuration") \
                and kind(i + 1) == "ID" and kind(i + 2) == "kw_of" \
                and kind(i + 3) == "ID":
            if k == "kw_configuration":
                provides.add(val(i + 1))
            requires.add(val(i + 3))
            i += 4
            continue
        if k == "ID" and val(i) in libnames and kind(i + 1) == "DOT" \
                and kind(i + 2) == "ID":
            requires.add(val(i + 2))
            i += 3
            continue
        i += 1
    return provides, requires - provides


def file_batches(paths, deps):
    """Kahn layering of ``paths``; ``deps[p]`` names the files ``p``
    needs compiled first.  Input order is the tie-break within a
    batch, and a (spurious, syntactically-induced) cycle degrades to
    singleton batches in input order rather than failing.
    """
    index = {p: i for i, p in enumerate(paths)}
    remaining = {
        p: {d for d in deps.get(p, ()) if d in index and d != p}
        for p in paths
    }
    batches = []
    while remaining:
        ready = sorted(
            (p for p, d in remaining.items() if not d),
            key=index.__getitem__,
        )
        if not ready:
            for p in sorted(remaining, key=index.__getitem__):
                batches.append([p])
            break
        batches.append(ready)
        ready_set = set(ready)
        for p in ready:
            del remaining[p]
        for d in remaining.values():
            d -= ready_set
    return batches


def compile_file_task(root, work, reference_libs, path):
    """Compile one source file against the on-disk library root.

    Runs in a worker process (or inline for a serial build) and
    returns only picklable primitives: produced units with their
    ``depends`` edges and interface digests, diagnostics (both legacy
    strings and structured dicts), phase-trace events (carrying this
    worker's pid, so the driver's merged Chrome trace shows one row
    per worker), and timings.
    """
    from ..vhdl.compiler import CompileError, Compiler
    from ..vhdl.library import LibraryManager

    library = LibraryManager(
        root=root, work=work, reference_libs=tuple(reference_libs)
    )
    compiler = Compiler(library=library, work=work, strict=False)
    try:
        # One wrapping span per file: in a forked worker the pool has
        # re-activated the submitting batch's span context, so this
        # (and the compiler phases nested in it) re-parent into the
        # driver's tree across the process boundary.
        with compiler.tracer.phase("compile_file", cat="build",
                                   file=os.path.basename(path)):
            result = compiler.compile_file(path)
    except (CompileError, OSError) as exc:
        messages = getattr(exc, "messages", None) or [str(exc)]
        diagnostics = [
            d.to_dict() for d in getattr(exc, "diagnostics", ())
        ]
        return {
            "path": path,
            "ok": False,
            "messages": list(messages),
            "units": [],
            "source_lines": 0,
            "timings": {},
            "diagnostics": diagnostics,
            "trace": list(compiler.tracer.events),
            "ag_stats": compiler.observer.as_dict(),
        }
    units = []
    for lib, key in result.registered_units:
        payload = library.payload_of(lib, key)
        units.append({
            "lib": lib,
            "key": key,
            "depends": [list(d) for d in payload.get("depends", [])],
            "digest": interface_digest(payload),
        })
    return {
        "path": path,
        "ok": result.ok,
        "messages": list(result.messages),
        "units": units,
        "source_lines": result.source_lines,
        "timings": dict(result.timings),
        "diagnostics": [d.to_dict() for d in result.diagnostics],
        "trace": list(compiler.tracer.events),
        "ag_stats": compiler.observer.as_dict(),
    }


def _fork_available():
    # Kept as an alias: diagnostics tests (and older callers) import
    # the gate from here; the implementation lives with the pool.
    return fork_available()


def _worker_failure(args, exc):
    """Substitute result for a crashed build worker: report, go on."""
    path = args[-1]
    return {
        "path": path,
        "ok": False,
        "messages": ["internal: build worker failed: %s" % exc],
        "units": [],
        "source_lines": 0,
        "timings": {},
        "diagnostics": [],
        "trace": [],
        "ag_stats": {},
    }


class Scheduler:
    """Runs compile batches serially or on a fork-based worker pool.

    The pool itself — warmed ``fork`` workers, ordered results,
    inline degradation — is the shared :class:`~repro.build.pool.ForkPool`;
    this class only binds it to :func:`compile_file_task`.
    """

    def __init__(self, root, work="work", reference_libs=(), jobs=1):
        self.root = root
        self.work = work
        self.reference_libs = tuple(reference_libs)
        self.pool = ForkPool(jobs=jobs, on_error=_worker_failure)

    @property
    def jobs(self):
        return self.pool.jobs

    @property
    def parallel(self):
        return self.pool.parallel

    def run_batch(self, paths):
        """Compile ``paths`` (one batch); results in input order."""
        return self.pool.map_ordered(
            compile_file_task,
            [(self.root, self.work, self.reference_libs, p)
             for p in paths])

    def close(self):
        self.pool.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
