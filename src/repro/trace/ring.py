"""Bounded in-memory span collection for long-lived processes.

The serve daemon records every request's spans here; the ring keeps
the most recent ``capacity`` events and counts what it had to drop, so
a week-old daemon answers ``GET /trace`` in O(capacity) memory no
matter how much traffic it saw.
"""

import threading
from collections import deque


class SpanRing:
    """A thread-safe ring buffer of trace event dicts."""

    def __init__(self, capacity=16384):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._events = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._dropped = 0

    def add(self, event):
        with self._lock:
            if len(self._events) == self.capacity:
                self._dropped += 1
            self._events.append(event)

    def add_events(self, events):
        with self._lock:
            for event in events:
                if len(self._events) == self.capacity:
                    self._dropped += 1
                self._events.append(event)

    def events(self, trace_id=None):
        """A snapshot list, optionally filtered to one trace."""
        with self._lock:
            snapshot = list(self._events)
        if trace_id is None:
            return snapshot
        return [ev for ev in snapshot if ev.get("trace_id") == trace_id]

    @property
    def dropped(self):
        with self._lock:
            return self._dropped

    def __len__(self):
        with self._lock:
            return len(self._events)

    def clear(self):
        with self._lock:
            self._events.clear()
            self._dropped = 0
