"""Span contexts: causal identity for trace events across processes.

A *span context* is the (``trace_id``, ``span_id``, ``parent_id``)
triple that turns the flat Chrome-trace events of
:mod:`repro.diag.trace` into one connected tree per request:

- ``trace_id`` — 32 lowercase hex chars shared by every span of one
  logical operation (an HTTP request, a CLI build);
- ``span_id`` — 16 hex chars naming this span;
- ``parent_id`` — the ``span_id`` of the causing span (absent on the
  root).

Propagation follows the W3C Trace Context ``traceparent`` header
(``00-<trace_id>-<span_id>-<flags>``): the serve layer accepts and
emits it on HTTP, and :class:`~repro.build.pool.ForkPool` pickles the
ambient context to fork workers so their spans re-parent into the
submitting job.  In-process the ambient context rides a
:class:`contextvars.ContextVar`, so nested ``Tracer.phase`` calls (and
asyncio tasks) build correct parent chains without any API threading.

Everything here is stdlib-only and import-cycle-free: the diag tracer,
the fork pool, the kernel, and the serve app all import *this* module,
never each other.
"""

import contextvars
import os
import threading
from contextlib import contextmanager

#: The ambient span context of the current thread / asyncio task.
_CURRENT = contextvars.ContextVar("repro_trace_context", default=None)

_HEX = set("0123456789abcdef")


def new_trace_id():
    """A fresh 128-bit trace id (32 lowercase hex chars)."""
    return os.urandom(16).hex()


def new_span_id():
    """A fresh 64-bit span id (16 lowercase hex chars)."""
    return os.urandom(8).hex()


def _is_hex(text, length):
    return len(text) == length and set(text) <= _HEX


class SpanContext:
    """One span's causal identity (immutable by convention)."""

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(self, trace_id=None, span_id=None, parent_id=None):
        self.trace_id = trace_id or new_trace_id()
        self.span_id = span_id or new_span_id()
        self.parent_id = parent_id

    def child(self):
        """A fresh span in the same trace, parented to this one."""
        return SpanContext(self.trace_id, new_span_id(), self.span_id)

    # -- W3C traceparent ---------------------------------------------------

    def to_traceparent(self):
        """This context as a ``traceparent`` header value."""
        return "00-%s-%s-01" % (self.trace_id, self.span_id)

    @classmethod
    def from_traceparent(cls, header):
        """Parse a ``traceparent`` header; None when malformed.

        The returned context names the *remote* span (its ``span_id``
        is the header's parent-id field); callers normally continue
        with ``.child()``.  Malformed input — wrong field count, bad
        hex, all-zero ids, the forbidden ``ff`` version — is ignored,
        never raised: a bad header must not fail a request.
        """
        if not isinstance(header, str):
            return None
        parts = header.strip().split("-")
        if len(parts) < 4:
            return None
        version, trace_id, span_id, flags = parts[:4]
        if not _is_hex(version, 2) or version == "ff":
            return None
        if version == "00" and len(parts) != 4:
            return None
        if not _is_hex(trace_id, 32) or trace_id == "0" * 32:
            return None
        if not _is_hex(span_id, 16) or span_id == "0" * 16:
            return None
        if not _is_hex(flags, 2):
            return None
        return cls(trace_id, span_id)

    # -- pickling across the fork boundary ---------------------------------

    def to_dict(self):
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id}

    @classmethod
    def from_dict(cls, data):
        if not isinstance(data, dict) or "trace_id" not in data:
            return None
        return cls(data["trace_id"], data.get("span_id"),
                   data.get("parent_id"))

    def __repr__(self):
        return "<SpanContext %s/%s<-%s>" % (
            self.trace_id[:8], self.span_id, self.parent_id)


# -- the ambient context -----------------------------------------------------


def current_context():
    """The ambient :class:`SpanContext`, or None."""
    return _CURRENT.get()


def activate(ctx):
    """Set the ambient context; returns the token for :func:`restore`."""
    return _CURRENT.set(ctx)


def restore(token):
    _CURRENT.reset(token)


@contextmanager
def use(ctx):
    """``with use(ctx): ...`` — scoped ambient context (no-op on
    None, so call sites need no conditional)."""
    if ctx is None:
        yield None
        return
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


# -- event construction ------------------------------------------------------

#: get_ident() values are recycled machine addresses; truncating them
#: (the old ``& 0xFFFF``) collides.  Map each thread to a small stable
#: index instead — first thread seen is 1, and so on.
_THREAD_INDEX = {}
_THREAD_LOCK = threading.Lock()


def thread_index():
    """A stable small integer for the calling thread (process-wide)."""
    ident = threading.get_ident()
    index = _THREAD_INDEX.get(ident)
    if index is None:
        with _THREAD_LOCK:
            index = _THREAD_INDEX.setdefault(
                ident, len(_THREAD_INDEX) + 1)
    return index


def stamp(event, ctx):
    """Write ``ctx``'s identity onto a trace event dict (in place)."""
    if ctx is None:
        return event
    event["trace_id"] = ctx.trace_id
    event["span_id"] = ctx.span_id
    if ctx.parent_id:
        event["parent_id"] = ctx.parent_id
    return event


def make_span(name, ctx, ts_us, dur_us, cat="span", **args):
    """A retroactive complete ("X") event carrying ``ctx``'s identity.

    Used for spans whose duration is known only after the fact (a
    request, a queue wait, a sampled kernel timestep) — the same dict
    shape :meth:`repro.diag.trace.Tracer.phase` records, so rings,
    Chrome export, and the ``repro trace`` analyzer treat both alike.
    """
    event = {
        "name": name,
        "cat": cat,
        "ph": "X",
        "ts": ts_us,
        "dur": dur_us,
        "pid": os.getpid(),
        "tid": thread_index(),
    }
    stamp(event, ctx)
    if args:
        event["args"] = dict(args)
    return event
