"""Offline span analysis for the ``repro trace`` CLI.

Operates on plain event dicts — Chrome-trace JSON files (a bare list
or ``{"traceEvents": [...]}``), span JSONL (one event per line, e.g. a
dump of ``GET /trace``), or any mix — and answers the questions the
tracing system exists for: is the tree connected, where did the time
go, what was slowest.

Only complete ("X") events participate in tree building; counters and
instants pass through merging untouched.
"""

import json


# -- loading and merging -----------------------------------------------------


def load_spans(path):
    """Events from a Chrome-trace JSON or span-JSONL file."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        data = json.loads(text)
    except ValueError:
        events = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            if isinstance(event, dict):
                events.append(event)
        return events
    if isinstance(data, dict):
        data = data.get("traceEvents", data.get("spans", []))
    if not isinstance(data, list):
        raise ValueError("%s: not a trace file" % path)
    return [ev for ev in data if isinstance(ev, dict)]


def merge_spans(*event_lists):
    """Concatenate event lists in stable (ts, pid, tid) order."""
    merged = []
    for events in event_lists:
        merged.extend(events)
    merged.sort(key=lambda ev: (ev.get("ts", 0), ev.get("pid", 0),
                                ev.get("tid", 0)))
    return merged


# -- tree building -----------------------------------------------------------


def _complete_spans(events, trace_id=None):
    spans = [ev for ev in events if ev.get("ph") == "X"]
    if trace_id is not None:
        spans = [ev for ev in spans if ev.get("trace_id") == trace_id]
    return spans


def build_trees(events, trace_id=None):
    """Forest of ``{"span": event, "children": [...]}`` nodes.

    A span whose ``parent_id`` is absent *or* names a span not in the
    input becomes a root (the latter happens when the parent lives in
    another file that wasn't merged in — the tree is still shown
    rather than silently dropped).  Children sort by start time.
    """
    spans = _complete_spans(events, trace_id)
    nodes = {}
    for span in spans:
        span_id = span.get("span_id")
        node = {"span": span, "children": []}
        if span_id is not None:
            # Last writer wins on duplicate ids (merged overlapping
            # files); duplicates without ids each get their own node.
            nodes[span_id] = node
        else:
            nodes[id(span)] = node
    roots = []
    for node in nodes.values():
        parent_id = node["span"].get("parent_id")
        parent = nodes.get(parent_id) if parent_id else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent["children"].append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda n: n["span"].get("ts", 0))
    roots.sort(key=lambda n: n["span"].get("ts", 0))
    return roots


def validate(events, trace_id=None):
    """Connectivity report: how tree-like is this span set?"""
    spans = _complete_spans(events, trace_id)
    ids = {ev.get("span_id") for ev in spans if ev.get("span_id")}
    roots = 0
    unresolved = 0
    for span in spans:
        parent_id = span.get("parent_id")
        if not parent_id:
            roots += 1
        elif parent_id not in ids:
            unresolved += 1
    return {
        "spans": len(spans),
        "roots": roots,
        "unresolved_parents": unresolved,
        "pids": sorted({ev.get("pid") for ev in spans
                        if ev.get("pid") is not None}),
        "trace_ids": sorted({ev.get("trace_id") for ev in spans
                             if ev.get("trace_id")}),
    }


def render_tree(events, trace_id=None, max_spans=None):
    """The forest as indented text lines, durations in ms."""
    roots = build_trees(events, trace_id)
    lines = []

    def visit(node, depth):
        if max_spans is not None and len(lines) >= max_spans:
            return
        span = node["span"]
        dur_ms = span.get("dur", 0) / 1000.0
        label = "%s%s" % ("  " * depth, span.get("name", "?"))
        extra = "pid %s" % span.get("pid", "?")
        if span.get("trace_id") and depth == 0:
            extra += "  trace %s" % span["trace_id"][:16]
        lines.append("%-48s %10.3f ms  %s" % (label, dur_ms, extra))
        for child in node["children"]:
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    if max_spans is not None and len(lines) >= max_spans:
        lines.append("... (truncated at %d spans)" % max_spans)
    return lines


# -- hot-spot views ----------------------------------------------------------


def slowest_spans(events, n=10, trace_id=None):
    """The n longest complete spans, longest first."""
    spans = _complete_spans(events, trace_id)
    spans.sort(key=lambda ev: ev.get("dur", 0), reverse=True)
    return spans[:n]


def rollup(events, trace_id=None):
    """Flame-style aggregation keyed by name path ("a > b > c").

    Returns rows of ``{"path", "count", "total_us", "self_us"}``
    sorted by total time.  Self time is the span's duration minus its
    direct children's — the flame graph's "where the time actually
    went" number.  Spans that never formed a tree (no ids) still
    aggregate under their bare name.
    """
    roots = build_trees(events, trace_id)
    rows = {}

    def visit(node, prefix):
        span = node["span"]
        path = (prefix + " > " if prefix else "") + span.get("name", "?")
        dur = span.get("dur", 0)
        child_dur = sum(c["span"].get("dur", 0) for c in node["children"])
        row = rows.setdefault(path, {"path": path, "count": 0,
                                     "total_us": 0.0, "self_us": 0.0})
        row["count"] += 1
        row["total_us"] += dur
        row["self_us"] += max(0.0, dur - child_dur)
        for child in node["children"]:
            visit(child, path)

    for root in roots:
        visit(root, "")
    return sorted(rows.values(),
                  key=lambda r: r["total_us"], reverse=True)


def render_rollup(rows, limit=None):
    lines = ["%-56s %7s %12s %12s" % ("path", "count",
                                      "total ms", "self ms")]
    for row in rows[:limit]:
        lines.append("%-56s %7d %12.3f %12.3f" % (
            row["path"][:56], row["count"],
            row["total_us"] / 1000.0, row["self_us"] / 1000.0))
    return lines
