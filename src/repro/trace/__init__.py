"""End-to-end causal tracing: span contexts, propagation, collection.

``repro.trace`` is the identity layer that stitches the per-process
Chrome-trace events of :mod:`repro.diag.trace` into one connected span
tree per request — serve HTTP request → job queue wait → fork-worker
compile → kernel delta cycles.  See :mod:`repro.trace.context` for the
model, :mod:`repro.trace.ring` for collection, and
:mod:`repro.trace.analyze` (imported lazily by the CLI) for offline
tree/rollup analysis.
"""

from .context import (
    SpanContext,
    activate,
    current_context,
    make_span,
    new_span_id,
    new_trace_id,
    restore,
    stamp,
    thread_index,
    use,
)
from .ring import SpanRing

__all__ = [
    "SpanContext",
    "SpanRing",
    "activate",
    "current_context",
    "make_span",
    "new_span_id",
    "new_trace_id",
    "restore",
    "stamp",
    "thread_index",
    "use",
]
