"""The script-driven user interface.

"The compiler is invoked by either a menu-based or script-driven user
interface" (§2).  This is the script-driven one::

    python -m repro compile design.vhd --root ./libs
    python -m repro compile a.vhd b.vhd --diag-format sarif
    python -m repro build pkg.vhd top.vhd --root ./libs --jobs 4 \
        --profile --trace-out build-trace.json
    python -m repro dump work rtl(counter) --root ./libs
    python -m repro simulate testbench --root ./libs --until 200ns \
        --trace clk --trace q
    python -m repro sim design.vhd --metrics-out m.json --top 5
    python -m repro stats --json
    python -m repro bench-check --baseline BENCH_simulation.json \
        --tolerance 0.15

Compile places successfully compiled units into the working library
(``--work``, default ``work``) under ``--root``; reference libraries
named with ``--ref`` can be read but never updated.

Observability flags (shared by ``compile`` and ``build``):
``--diag-format text|json|sarif`` selects the diagnostic rendering,
``--profile`` prints a per-phase wall-time table, ``--trace-out FILE``
writes a Chrome trace-event JSON (one merged timeline, one row per
build worker), ``-Werror`` promotes warnings to errors, and
``--explain-cycle`` pretty-prints attribute-dependency cycles.

Metrics flags (shared by ``compile``, ``build``, and ``simulate``):
``--metrics`` prints the registry summary, ``--metrics-out FILE``
writes the ``repro-metrics/1`` snapshot (``--metrics-format
prometheus`` switches to text exposition format).  ``simulate`` (alias
``sim``) additionally accepts a ``.vhd`` file instead of a unit name —
it compiles the file first so one snapshot covers compile → elaborate
→ simulate — and ``--top N`` prints the hot-process table.
"""

import argparse
import json
import os
import sys

from .sim import TIME_UNITS


def _parse_time(text):
    """'200ns' / '1 us' / '5000' (fs) -> femtoseconds."""
    text = text.strip().lower().replace(" ", "")
    for unit, scale in sorted(TIME_UNITS, key=lambda u: -len(u[0])):
        if text.endswith(unit):
            return int(float(text[: -len(unit)]) * scale)
    return int(text)


def _make_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AG-generated VHDL compiler and simulator "
                    "(PLDI 1989 reproduction)",
    )
    parser.add_argument("--root", default=None,
                        help="design-library directory (persistent)")
    parser.add_argument("--work", default="work",
                        help="working library name")
    parser.add_argument("--ref", action="append", default=[],
                        help="reference library (read-only)")
    parser.add_argument("--diag-format", default="text",
                        choices=("text", "json", "sarif"),
                        help="diagnostic rendering: caret-annotated "
                             "text, JSON lines, or SARIF 2.1.0")
    parser.add_argument("--profile", action="store_true",
                        help="print a per-phase wall-time profile")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write a Chrome trace-event JSON "
                             "(implies trace collection)")
    parser.add_argument("-W", "--werror", dest="werror",
                        action="store_true",
                        help="treat warnings as errors (-Werror)")
    parser.add_argument("--explain-cycle", action="store_true",
                        help="pretty-print attribute dependency "
                             "cycles with production context")
    metrics_args = argparse.ArgumentParser(add_help=False)
    metrics_args.add_argument(
        "--metrics", action="store_true",
        help="collect a metrics registry and print its summary")
    metrics_args.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the repro-metrics/1 snapshot "
             "(implies metrics collection)")
    metrics_args.add_argument(
        "--metrics-format", default="json",
        choices=("json", "prometheus"),
        help="snapshot encoding for --metrics-out")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", parents=[metrics_args],
                       help="compile VHDL source files")
    p.add_argument("files", nargs="+")
    p.add_argument("--keep-going", action="store_true",
                   help="report diagnostics without failing")

    p = sub.add_parser(
        "build", parents=[metrics_args],
        help="incremental parallel build (skips unchanged files)")
    p.add_argument("files", nargs="+")
    p.add_argument("--jobs", "-j", type=int, default=1,
                   help="compile independent files with N workers")
    p.add_argument("--force", action="store_true",
                   help="rebuild everything, ignoring the cache")
    p.add_argument("--no-stats", action="store_true",
                   help="suppress the cache-stats report line")
    p.add_argument("--lint", action="store_true",
                   help="run the static design linter over every "
                        "unit the build produced")

    p = sub.add_parser(
        "lint", parents=[metrics_args],
        help="static design lint over compiled units (RPL rules) "
             "and attribute grammars (RPA rules)")
    p.add_argument("paths", nargs="*",
                   help=".vhd files or directories to compile and "
                        "lint (in-memory; the on-disk library is "
                        "not touched)")
    p.add_argument("--select", action="append", default=[],
                   metavar="PREFIX",
                   help="only run rules whose id starts with PREFIX "
                        "(repeatable; default: all rules)")
    p.add_argument("--ignore", action="append", default=[],
                   metavar="PREFIX",
                   help="skip rules whose id starts with PREFIX "
                        "(repeatable)")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="suppress findings recorded in this "
                        "repro-lint-baseline/1 file")
    p.add_argument("--write-baseline", default=None, metavar="FILE",
                   help="record current findings as the accepted "
                        "baseline and exit 0")
    p.add_argument("--format", dest="lint_format", default=None,
                   choices=("text", "json", "sarif"),
                   help="finding rendering (default: --diag-format)")
    p.add_argument("--ag", action="append", default=[],
                   choices=("principal", "expr"),
                   help="also lint a built-in attribute grammar "
                        "(RPA rules; repeatable)")

    p = sub.add_parser(
        "analyze", parents=[metrics_args],
        help="whole-design dataflow analysis over the elaborated "
             "design (RPE rules: combinational loops, drive races, "
             "cross-clock transfers, dead cones) plus the "
             "repro-levels/1 levelization artifact")
    p.add_argument("paths", nargs="*",
                   help=".vhd files or directories; without --top "
                        "each file is analyzed as an independent "
                        "design (its repro-fuzz header or last "
                        "entity picks the top)")
    p.add_argument("--top", default=None,
                   help="treat all files as one design and analyze "
                        "this entity/configuration (also usable "
                        "with --root and no files)")
    p.add_argument("--arch", default=None,
                   help="architecture of --top (default: latest)")
    p.add_argument("--select", action="append", default=[],
                   metavar="PREFIX",
                   help="only run rules whose id starts with PREFIX "
                        "(repeatable; default: all design rules)")
    p.add_argument("--ignore", action="append", default=[],
                   metavar="PREFIX",
                   help="skip rules whose id starts with PREFIX "
                        "(repeatable)")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="suppress findings recorded in this "
                        "repro-lint-baseline/1 file")
    p.add_argument("--write-baseline", default=None, metavar="FILE",
                   help="record current findings as the accepted "
                        "baseline and exit 0")
    p.add_argument("--format", dest="lint_format", default=None,
                   choices=("text", "json", "sarif"),
                   help="finding rendering (default: --diag-format)")
    p.add_argument("--levels-out", default=None, metavar="FILE",
                   help="write the repro-levels/1 levelization "
                        "artifact (single-design runs only)")

    p = sub.add_parser("dump", help="human-readable VIF of a unit")
    p.add_argument("library")
    p.add_argument("unit")

    p = sub.add_parser("list", help="list units in the library")

    p = sub.add_parser("simulate", aliases=["sim"],
                       parents=[metrics_args],
                       help="elaborate and run a design")
    p.add_argument("top", help="entity or configuration name, or a "
                               ".vhd file to compile first")
    p.add_argument("--arch", default=None)
    p.add_argument("--until", default="1us",
                   help="simulation time, e.g. 200ns")
    p.add_argument("--trace", action="append", default=[],
                   help="signal suffix to trace (repeatable)")
    p.add_argument("--vcd", default=None,
                   help="write a VCD file of the traced signals")
    p.add_argument("--top", dest="top_n", type=int, default=None,
                   metavar="N",
                   help="print the N hottest processes (resumes, "
                        "wall clock, sensitivity)")
    p.add_argument("--analyze", action="store_true",
                   help="run the elaborated-design analyzer as a "
                        "pre-flight; error-severity findings "
                        "(combinational loops, unresolved drive "
                        "races) abort before the kernel runs")
    p.add_argument("--backend", default="event",
                   choices=("event", "compiled", "scan"),
                   help="simulation backend: the activity kernel "
                        "(default), the per-design compiled backend, "
                        "or the O(design) reference scan")

    p = sub.add_parser("stats", help="print the AG-statistics table")
    p.add_argument("--json", dest="as_json", action="store_true",
                   help="emit the §4.1 table as JSON in the "
                        "repro-metrics/1 envelope (CI trend "
                        "tracking)")
    p.add_argument("--format", dest="stats_format", default=None,
                   choices=("table", "json", "prometheus"),
                   help="output encoding: human table (default), "
                        "repro-metrics/1 JSON, or Prometheus text "
                        "exposition (scrape-file friendly)")

    p = sub.add_parser(
        "serve",
        help="long-lived compile/lint/sim service over HTTP/JSON "
             "(batched builds, per-session work libraries, live "
             "/metrics)")
    p.add_argument("--host", default="127.0.0.1",
                   help="interface to bind (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8017,
                   help="TCP port (0 picks a free one; default 8017)")
    p.add_argument("--workers", type=int, default=2,
                   help="job worker threads / build fork width")
    p.add_argument("--ref-library", default=None, metavar="PATH[:NAME]",
                   help="shared read-only reference library: a root "
                        "built with `repro build --root PATH --work "
                        "NAME` (NAME defaults to 'ref')")
    p.add_argument("--state-dir", default=None, metavar="DIR",
                   help="where session workspaces live (default: a "
                        "private temp dir, removed at shutdown)")

    p = sub.add_parser(
        "fuzz", parents=[metrics_args],
        help="generative conformance sweep: seeded random designs "
             "through compile + lint + differential simulation "
             "(Kernel vs ScanKernel)")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed of the sweep (default 0)")
    p.add_argument("--budget", type=int, default=50, metavar="N",
                   help="number of designs to generate and check "
                        "(default 50)")
    p.add_argument("--jobs", "-j", type=int, default=1,
                   help="check designs with N forked workers; "
                        "results are byte-identical to -j1")
    p.add_argument("--shrink", dest="shrink", action="store_true",
                   default=True,
                   help="minimize failing designs with the "
                        "decision-tape reducer (default)")
    p.add_argument("--no-shrink", dest="shrink",
                   action="store_false",
                   help="report failures without minimizing them")
    p.add_argument("--corpus", default=None, metavar="DIR",
                   help="persist every minimized failure (after a "
                        "fix: its passing design) into DIR as "
                        "replayable .vhd corpus entries")
    p.add_argument("--format", default="text",
                   choices=("text", "json"),
                   help="report encoding (json prints the full "
                        "repro-metrics/1 fuzz-report envelope)")
    p.add_argument("--analyze", action="store_true",
                   help="also run the elaborated-design analyzer on "
                        "every generated design: analyzer crashes "
                        "and RPE001 findings on quiescent designs "
                        "are sweep failures")
    p.add_argument("--compiled", action="store_true",
                   help="add the compiled backend as a third "
                        "differential leg: every design must be "
                        "byte-identical across Kernel, ScanKernel, "
                        "and CompiledKernel")

    p = sub.add_parser(
        "bench-check",
        help="perf-regression gate: compare a fresh benchmark run "
             "against a committed BENCH_*.json baseline")
    p.add_argument("--baseline", required=True, action="append",
                   metavar="FILE",
                   help="committed baseline (repeatable)")
    p.add_argument("--tolerance", type=float, default=0.15,
                   help="relative tolerance for max/min/ratio "
                        "checks (default 0.15)")
    p.add_argument("--current", default=None, metavar="FILE",
                   help="compare against this bench JSON instead of "
                        "re-running the scenario")
    p.add_argument("--update", action="store_true",
                   help="rewrite the baseline from a fresh run "
                        "instead of checking")

    p = sub.add_parser(
        "trace",
        help="analyze span trees: merge Chrome-trace / span-JSONL "
             "files, render the tree, list the slowest spans, or "
             "roll time up per phase path")
    p.add_argument("traces", nargs="+", metavar="FILE",
                   help="Chrome trace JSON (or a /trace dump / "
                        "span JSONL) files to merge and analyze")
    p.add_argument("--view", default="tree",
                   choices=("tree", "slowest", "rollup", "summary"),
                   help="tree: indented span forest; slowest: top "
                        "spans by duration; rollup: flame-style "
                        "per-path totals; summary: connectivity "
                        "report as JSON")
    p.add_argument("--trace-id", default=None, metavar="ID",
                   help="restrict the analysis to one trace")
    p.add_argument("--limit", type=int, default=None, metavar="N",
                   help="cap the rows/spans printed")
    p.add_argument("--merge-out", default=None, metavar="FILE",
                   help="also write the merged events as one Chrome "
                        "trace JSON")
    return parser


def _library(args):
    from .vhdl.library import LibraryManager

    return LibraryManager(root=args.root, work=args.work,
                          reference_libs=tuple(args.ref))


def _wants_metrics(args):
    return bool(getattr(args, "metrics", False)
                or getattr(args, "metrics_out", None)
                or getattr(args, "top_n", None) is not None)


def _registry_for(args):
    """A live registry when any metrics flag asks for one, else the
    zero-overhead null registry."""
    from .metrics import NULL_REGISTRY, MetricsRegistry

    return MetricsRegistry() if _wants_metrics(args) else NULL_REGISTRY


def _emit_metrics(registry, args, out, title="metrics"):
    """Print/write the snapshot as the metrics flags request."""
    if args.metrics:
        out(registry.summary(title))
    if args.metrics_out:
        if args.metrics_format == "prometheus":
            text = registry.render_prometheus()
        else:
            text = json.dumps(registry.snapshot(), indent=1,
                              sort_keys=True) + "\n"
        tmp = "%s.tmp.%d" % (args.metrics_out, os.getpid())
        with open(tmp, "w") as f:
            f.write(text)
        os.replace(tmp, args.metrics_out)
        out("metrics snapshot written to %s" % args.metrics_out)


def _emit_trace(tracer, args, out, default_path=None):
    """Write the Chrome trace when requested; report where it went."""
    path = args.trace_out
    if path is None and args.profile:
        path = default_path
    if path:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        tracer.write(path)
        out("trace written to %s" % path)


def cmd_compile(args, out):
    from .ag.errors import CircularityError
    from .diag import explain_cycle, render
    from .vhdl.compiler import CompileError, Compiler

    compiler = Compiler(library=_library(args), work=args.work,
                        strict=False, werror=args.werror)
    failures = 0
    all_diags = []
    # Corrupt artifacts the library load moved aside surface as
    # structured LIB001 warnings, not silent state.
    for diag in compiler.library.quarantine_diagnostics():
        out(str(diag))
        all_diags.append(diag)
    for path in args.files:
        try:
            result = compiler.compile_file(path)
        except CompileError as exc:
            # Scan/parse failures abort one file, not the whole run.
            out("%s: %d error(s)" % (path, len(exc.messages)))
            for message in exc.messages:
                out("  %s" % message)
            cause = exc.__cause__
            if args.explain_cycle and isinstance(cause,
                                                 CircularityError):
                out(explain_cycle(cause))
            all_diags.extend(exc.diagnostics)
            failures += 1
            continue
        status = "ok" if result.ok else "%d error(s)" % len(
            result.messages)
        out("%s: %s (%d lines, units: %s)" % (
            path, status, result.source_lines,
            ", ".join(result.unit_names()) or "none"))
        for message in result.messages:
            out("  %s" % message)
        all_diags.extend(result.diagnostics)
        if not result.ok:
            failures += 1
    if args.diag_format != "text" and all_diags:
        out(render(all_diags, args.diag_format))
    if args.profile:
        out(compiler.tracer.summary("compile profile"))
        out(compiler.observer.summary())
    _emit_trace(compiler.tracer, args, out,
                default_path=os.path.join(
                    "bench-out", "repro-compile-trace.json"))
    if _wants_metrics(args):
        from .metrics.bridge import bridge_observer, bridge_tracer

        registry = _registry_for(args)
        bridge_observer(registry, compiler.observer)
        bridge_tracer(registry, compiler.tracer, prefix="compile")
        _emit_metrics(registry, args, out, "compile metrics")
    if args.werror and any(
            "[-Werror]" in d.message for d in all_diags):
        failures = failures or 1
    return 1 if failures and not args.keep_going else 0


def cmd_build(args, out):
    from .build import BuildError, IncrementalBuilder
    from .diag import Tracer, render

    if args.root is None:
        out("build: a persistent --root is required "
            "(the cache lives in <root>/build.state.json)")
        return 2
    try:
        builder = IncrementalBuilder(
            args.root, work=args.work,
            reference_libs=tuple(args.ref), jobs=args.jobs)
        lint_engine = None
        if args.lint:
            from .analysis import LintEngine

            lint_engine = LintEngine(work=args.work)
        report = builder.build(args.files, force=args.force,
                               lint=lint_engine)
    except BuildError as exc:
        out("build: %s" % exc)
        return 2
    for path in report.order:
        action = report.actions[path]
        reason = report.reasons.get(path, "")
        out("%-8s %s%s" % (action, path,
                           "  (%s)" % reason if reason else ""))
        for message in report.messages.get(path, ()):
            out("  %s" % message)
    if not args.no_stats:
        s = report.stats
        out("cache: %d hit(s), %d miss(es), %d invalidated, "
            "%d AG evaluation(s), jobs=%d"
            % (s.get("hits", 0), s.get("misses", 0),
               s.get("invalidated", 0), s.get("ag_evaluations", 0),
               report.jobs))
    lint_errors = 0
    if args.lint:
        from .diag import DiagnosticEngine

        diag_engine = DiagnosticEngine(werror=args.werror)
        for diag in report.lint_findings:
            diag_engine.emit(diag)
        for diag in diag_engine.sorted():
            out(str(diag))
        lint_errors = diag_engine.error_count
        out("lint: %s" % diag_engine.summary())
    diags = report.all_diagnostics()
    if args.diag_format != "text" and diags:
        out(render(diags, args.diag_format))
    tracer = Tracer()
    tracer.add_events(report.trace_events)
    if args.profile:
        out(tracer.summary("build profile"))
        firings = report.ag_stats.get("total_firings", 0)
        if firings:
            out("AG evaluation: %d rule firing(s) across workers"
                % firings)
    _emit_trace(tracer, args, out,
                default_path=os.path.join(args.root,
                                          "build-trace.json"))
    if _wants_metrics(args):
        from .metrics.bridge import bridge_build_report

        registry = _registry_for(args)
        bridge_build_report(registry, report)
        _emit_metrics(registry, args, out, "build metrics")
    return 0 if report.ok and not lint_errors else 1


def _collect_vhdl_paths(paths, out):
    """Expand files/directories into a sorted list of VHDL sources."""
    files = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith((".vhd", ".vhdl")):
                        files.append(os.path.join(dirpath, name))
        elif os.path.isfile(path):
            files.append(path)
        else:
            out("lint: no such file or directory: %s" % path)
            return None
    return files


def _builtin_ag(name):
    """The built-in grammars ``repro lint --ag`` can check, with
    their evaluation-entry exemptions."""
    if name == "principal":
        from .vhdl.grammar import principal_grammar

        return (principal_grammar(),
                ("ENV", "CC", "LEVEL", "RESULT", "SCOPE"),
                ("UNITS", "MSGS"))
    from .vhdl.expr_grammar import expr_grammar

    return expr_grammar(), ("ENV", "CTX"), ("GOAL",)


def cmd_lint(args, out):
    from .analysis import (
        LintEngine,
        apply_baseline,
        load_baseline,
        write_baseline,
    )
    from .diag import DiagnosticEngine, render
    from .vhdl.compiler import CompileError, Compiler

    fmt = args.lint_format or args.diag_format
    registry = _registry_for(args)
    files = _collect_vhdl_paths(args.paths, out)
    if files is None:
        return 2
    if not files and not args.ag:
        out("lint: nothing to lint (no .vhd files, no --ag)")
        return 2

    # Compile into an in-memory library: lint is a read-only check
    # and must not disturb the persistent design library.
    from .vhdl.library import LibraryManager

    library = LibraryManager(root=None, work=args.work,
                             reference_libs=tuple(args.ref))
    compiler = Compiler(library=library, work=args.work, strict=False)
    sources = {}
    compile_failed = False
    for path in files:
        try:
            result = compiler.compile_file(path)
        except CompileError as exc:
            out("%s: %d error(s)" % (path, len(exc.messages)))
            for message in exc.messages:
                out("  %s" % message)
            compile_failed = True
            continue
        try:
            with open(path) as fh:
                sources[path] = fh.read()
        except OSError:
            pass
        if not result.ok:
            out("%s: %d error(s)" % (path, len(result.messages)))
            for message in result.messages:
                out("  %s" % message)
            compile_failed = True
    if compile_failed:
        out("lint: compilation failed; fix compile errors first")
        return 2

    engine = LintEngine(library=library, work=args.work,
                        select=args.select, ignore=args.ignore,
                        metrics=registry)
    findings = engine.lint_library() if files else []
    for name in args.ag:
        compiled, entry, goals = _builtin_ag(name)
        findings.extend(engine.lint_ag(
            compiled, entry_inherited=entry, goals=goals))

    if args.write_baseline:
        n = write_baseline(args.write_baseline, findings)
        out("lint baseline written to %s (%d finding(s))"
            % (args.write_baseline, n))
        _emit_metrics(registry, args, out, "lint metrics")
        return 0

    suppressed = []
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            out("lint: cannot load baseline: %s" % exc)
            return 2
        findings, suppressed = apply_baseline(findings, baseline)

    # Route through a DiagnosticEngine so -Werror promotion and
    # severity accounting match the compiler's own pipeline.
    diag_engine = DiagnosticEngine(werror=args.werror)
    for diag in findings:
        diag_engine.emit(diag)
    ordered = diag_engine.sorted()
    if ordered or fmt == "sarif":
        out(render(ordered, fmt, sources=sources))
    tail = "lint: %s" % diag_engine.summary()
    if suppressed:
        tail += ", %d baseline-suppressed" % len(suppressed)
    tail += " (%d unit(s) checked)" % len(
        [k for k in library._units if k[0] == args.work])
    out(tail)
    _emit_metrics(registry, args, out, "lint metrics")
    return 1 if ordered else 0


def _analyze_header_meta(path):
    """The ``-- repro-fuzz:`` header of a file, if any (corpus
    entries pin their top entity and expected outcome there)."""
    from .gen import corpus as corpus_store

    meta = {}
    try:
        with open(path) as fh:
            for line in fh:
                stripped = line.strip()
                if stripped.startswith(corpus_store.HEADER_PREFIX):
                    rest = stripped[
                        len(corpus_store.HEADER_PREFIX):].strip()
                    for key, value in corpus_store._KV.findall(rest):
                        meta[key] = value
                elif stripped and not stripped.startswith("--"):
                    break
    except OSError:
        pass
    return meta


def cmd_analyze(args, out):
    """Whole-design analysis: elaborate, flatten, run the RPE rules.

    Exit codes mirror ``lint``: 0 clean (notes allowed), 1 new
    warning-or-worse findings, 2 compile/elaboration/usage trouble.
    Files carrying a ``-- repro-fuzz: expect=`` header other than
    ``ok`` are analyzed for information only: the corpus pins known
    failures (multi-driver races above all) whose findings are
    expected, so they never gate.
    """
    from .analysis import (
        LintEngine,
        apply_baseline,
        build_netlist,
        levels_artifact,
        load_baseline,
        write_baseline,
    )
    from .diag import DiagnosticEngine, render
    from .vhdl.compiler import CompileError, Compiler
    from .vhdl.elaborate import ElaborationError, Elaborator
    from .vhdl.library import LibraryManager
    from .vhdl.symtab import entry_kind

    fmt = args.lint_format or args.diag_format
    # With --format sarif, stdout must be the SARIF document and
    # nothing else (CI redirects it straight into an artifact), so
    # every human-facing line moves to stderr.
    if fmt == "sarif":
        def say(line):
            print(line, file=sys.stderr)
    else:
        say = out
    registry = _registry_for(args)
    files = _collect_vhdl_paths(args.paths, say)
    if files is None:
        return 2
    if not files and not (args.top and args.root):
        say("analyze: nothing to analyze (no .vhd files; use --top "
            "with --root to analyze a built library)")
        return 2

    # Each job: (label, library, top, arch, expect, sources)
    jobs = []
    if args.top and files:
        # All files form one design.
        library = LibraryManager(root=None, work=args.work,
                                 reference_libs=tuple(args.ref))
        compiler = Compiler(library=library, work=args.work,
                            strict=False)
        sources = {}
        for path in files:
            try:
                result = compiler.compile_file(path)
            except CompileError as exc:
                say("%s: %d error(s)" % (path, len(exc.messages)))
                for message in exc.messages:
                    say("  %s" % message)
                return 2
            if not result.ok:
                say("%s: %d error(s)" % (path, len(result.messages)))
                for message in result.messages:
                    say("  %s" % message)
                return 2
            try:
                with open(path) as fh:
                    sources[path] = fh.read()
            except OSError:
                pass
        jobs.append((args.top, library, args.top, args.arch, "ok",
                     sources))
    elif args.top:
        jobs.append((args.top, _library(args), args.top, args.arch,
                     "ok", {}))
    else:
        # Each file is an independent design.
        for path in files:
            meta = _analyze_header_meta(path)
            expect = meta.get("expect", "ok")
            library = LibraryManager(root=None, work=args.work,
                                     reference_libs=tuple(args.ref))
            compiler = Compiler(library=library, work=args.work,
                                strict=False)
            try:
                result = compiler.compile_file(path)
                ok = result.ok
                messages = result.messages
            except CompileError as exc:
                ok = False
                messages = exc.messages
            if not ok:
                if expect == "rejected":
                    say("%s: does not compile (expected; skipped)"
                        % path)
                    continue
                say("%s: %d error(s)" % (path, len(messages)))
                for message in messages:
                    say("  %s" % message)
                return 2
            top = meta.get("top")
            if top is None:
                entities = [u.name for u in result.units
                            if entry_kind(u) == "entity"]
                if not entities:
                    say("%s: no entity to analyze; skipped" % path)
                    continue
                top = entities[-1]
            sources = {}
            try:
                with open(path) as fh:
                    sources[path] = fh.read()
            except OSError:
                pass
            jobs.append((path, library, top, None, expect, sources))

    if args.levels_out and len(jobs) != 1:
        say("analyze: --levels-out needs exactly one design "
            "(got %d)" % len(jobs))
        return 2

    gating = []       # findings that count toward the exit code
    informational = []  # findings on expected-failure designs
    all_sources = {}
    engine = LintEngine(library=None, work=args.work,
                        select=args.select, ignore=args.ignore,
                        metrics=registry)
    designs_analyzed = 0
    for label, library, top, arch, expect, sources in jobs:
        engine.context.library = library
        try:
            elab = Elaborator(library)
            sim = elab.elaborate(top, arch_name=arch)
        except ElaborationError as exc:
            if expect != "ok":
                say("%s: does not elaborate (expected; skipped): %s"
                    % (label, exc))
                continue
            say("analyze: %s: elaboration failed: %s" % (label, exc))
            return 2
        graph = build_netlist(sim.records)
        findings = engine.lint_design(graph)
        designs_analyzed += 1
        all_sources.update(sources)
        if expect == "ok":
            gating.extend(findings)
        else:
            informational.extend(findings)
        if args.levels_out:
            artifact = levels_artifact(graph)
            parent = os.path.dirname(args.levels_out)
            if parent:
                os.makedirs(parent, exist_ok=True)
            tmp = "%s.tmp.%d" % (args.levels_out, os.getpid())
            with open(tmp, "w") as fh:
                json.dump(artifact, fh, indent=1, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, args.levels_out)
            say("levelization artifact written to %s "
                "(%d level(s), %d cyclic signal(s))"
                % (args.levels_out,
                   len(artifact["levels"]),
                   len(artifact["cyclic"])))

    if args.write_baseline:
        n = write_baseline(args.write_baseline, gating)
        say("analyze baseline written to %s (%d finding(s))"
            % (args.write_baseline, n))
        _emit_metrics(registry, args, say, "analyze metrics")
        return 0

    suppressed = []
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            say("analyze: cannot load baseline: %s" % exc)
            return 2
        if baseline.deprecated_absolute:
            say("analyze: baseline %s has %d absolute-path entr%s "
                "(deprecated; rewrite with --write-baseline for a "
                "checkout-portable baseline)"
                % (args.baseline, baseline.deprecated_absolute,
                   "y" if baseline.deprecated_absolute == 1
                   else "ies"))
        gating, suppressed = apply_baseline(gating, baseline)

    diag_engine = DiagnosticEngine(werror=args.werror)
    for diag in gating:
        diag_engine.emit(diag)
    for diag in informational:
        diag_engine.emit(diag)
    ordered = diag_engine.sorted()
    if ordered or fmt == "sarif":
        out(render(ordered, fmt, sources=all_sources))
    blocking = [d for d in gating
                if d.severity not in ("note",)]
    tail = "analyze: %s" % diag_engine.summary()
    if suppressed:
        tail += ", %d baseline-suppressed" % len(suppressed)
    if informational:
        tail += ", %d on expected-failure designs (not gating)" \
            % len(informational)
    tail += " (%d design(s) analyzed)" % designs_analyzed
    say(tail)
    _emit_metrics(registry, args, say, "analyze metrics")
    return 1 if blocking else 0


def cmd_dump(args, out):
    lib = _library(args)
    out(lib.dump_vif(args.library, args.unit))
    return 0


def cmd_list(args, out):
    lib = _library(args)
    for libname, key in lib.compile_order:
        out("%s.%s" % (libname, key))
    return 0


def cmd_simulate(args, out):
    from contextlib import nullcontext

    from .sim import CompiledKernel, Kernel, ScanKernel
    from .sim.tracing import Tracer, format_fs
    from .vhdl.elaborate import Elaborator

    registry = _registry_for(args)
    span_tracer = None
    if args.trace_out or args.profile:
        from .diag.trace import Tracer as SpanTracer

        span_tracer = SpanTracer()

    def _span(name, **spargs):
        if span_tracer is None:
            return nullcontext()
        return span_tracer.phase(name, cat="cli", **spargs)

    # Sampled kernel spans (every 100th timestep / resume) keep the
    # trace readable on long runs while still exposing the §2.2-style
    # where-did-the-time-go breakdown down to delta cycles.
    backend = getattr(args, "backend", "event") or "event"
    kernel_cls = {"event": Kernel, "compiled": CompiledKernel,
                  "scan": ScanKernel}[backend]
    kernel = kernel_cls(metrics=registry, trace=span_tracer,
                        trace_sample=100)
    top = args.top
    compiler = None
    if top.endswith((".vhd", ".vhdl")) or os.path.isfile(top):
        # A source file: compile it first, then simulate its last
        # entity — one metrics snapshot covers compile → elaborate →
        # simulate.
        from .vhdl.compiler import CompileError, Compiler
        from .vhdl.symtab import entry_kind

        compiler = Compiler(library=_library(args), work=args.work,
                            strict=False, werror=args.werror)
        try:
            result = compiler.compile_file(top)
        except CompileError as exc:
            out("%s: %d error(s)" % (top, len(exc.messages)))
            for message in exc.messages:
                out("  %s" % message)
            return 1
        if not result.ok:
            out("%s: %d error(s)" % (top, len(result.messages)))
            for message in result.messages:
                out("  %s" % message)
            return 1
        entities = [u.name for u in result.units
                    if entry_kind(u) == "entity"]
        if not entities:
            out("%s: no entity to simulate" % top)
            return 1
        library = compiler.library
        top = entities[-1]
    else:
        library = _library(args)
    with _span("sim", top=str(top)):
        with _span("elaborate"):
            elab = Elaborator(library, kernel=kernel)
            sim = elab.elaborate(top, arch_name=args.arch)
        graph = None
        if args.analyze:
            # Pre-flight: the whole-design analyzer sees the same
            # elaborated hierarchy the kernel is about to run; an
            # error-severity finding (combinational loop, unresolved
            # drive race) would hang or abort the simulation anyway,
            # so fail fast with the structured diagnostic instead.
            from .analysis import LintEngine, build_netlist
            from .diag import render as render_findings

            with _span("analyze"):
                graph = build_netlist(sim.records)
                findings = LintEngine(
                    library=library, work=args.work,
                    metrics=registry).lint_design(graph)
            if findings:
                out(render_findings(findings, args.diag_format))
            blocking = [d for d in findings
                        if d.severity in ("error", "fatal")]
            if blocking:
                out("sim: analyze pre-flight found %d blocking "
                    "finding(s); not starting the kernel"
                    % len(blocking))
                return 1
        if backend == "compiled":
            # Specialize before the first cycle; the --analyze
            # pre-flight's DesignGraph (if any) is threaded through so
            # the netlist is extracted exactly once.
            with _span("codegen"):
                kernel.compile_design(sim.records, graph=graph)
            out("codegen: %d/%d process(es) compiled, %d slot "
                "signal(s), %.1f ms"
                % (kernel.compiled_procs, len(kernel.processes),
                   kernel.slot_signals,
                   kernel.codegen_seconds * 1e3))
        tracer = None
        if args.trace or args.vcd:
            signals = []
            for suffix in args.trace or ["*"]:
                for path in sim.names.by_suffix(suffix):
                    if sim.names.kind_of(path) == "signal":
                        signals.append(sim.names.lookup(path))
            tracer = Tracer(sim.kernel, signals or None)
        until = _parse_time(args.until)
        with _span("kernel_run"):
            end = sim.run(until_fs=until)
    out("simulation stopped at %s (%d cycles)"
        % (format_fs(end), sim.kernel.cycles))
    for path, sig in sim.names.signals():
        out("  %-30s = %s" % (path, sig.image(sig.value)))
    if tracer is not None and args.vcd:
        with open(args.vcd, "w") as f:
            f.write(tracer.vcd())
        out("VCD written to %s" % args.vcd)
    if _wants_metrics(args):
        from .metrics.bridge import (
            bridge_kernel,
            bridge_observer,
            bridge_tracer,
            format_calendar_stats,
            format_hot_processes,
        )

        bridge_kernel(registry, kernel)
        if compiler is not None:
            bridge_observer(registry, compiler.observer)
            bridge_tracer(registry, compiler.tracer,
                          prefix="compile")
        out(format_hot_processes(
            kernel, args.top_n if args.top_n is not None else 5))
        out(format_calendar_stats(kernel))
        _emit_metrics(registry, args, out, "simulation metrics")
    if span_tracer is not None:
        if compiler is not None:
            # One merged trace: compile phases + elaboration + the
            # sampled kernel timeline.
            span_tracer.add_events(compiler.tracer.events)
        if args.profile:
            out(span_tracer.summary("sim profile"))
        _emit_trace(span_tracer, args, out,
                    default_path=os.path.join(
                        "bench-out", "repro-sim-trace.json"))
    return 0


def cmd_stats(args, out):
    from .ag import format_table
    from .vhdl.expr_grammar import expr_grammar
    from .vhdl.grammar import principal_grammar

    stats = [
        principal_grammar().statistics(),
        expr_grammar().statistics(),
    ]
    fmt = args.stats_format or (
        "json" if getattr(args, "as_json", False) else "table")
    if fmt == "json":
        from .metrics import envelope

        out(json.dumps(
            envelope("ag-stats",
                     grammars=[s.as_dict() for s in stats]),
            indent=2, sort_keys=True))
        return 0
    if fmt == "prometheus":
        from .metrics import MetricsRegistry

        registry = MetricsRegistry()
        for s in stats:
            d = s.as_dict()
            name = d.pop("name")
            for key, value in d.items():
                registry.gauge(
                    "ag_grammar_%s" % key,
                    "attribute-grammar statistic: %s (paper §4.1)"
                    % key,
                ).labels(grammar=name).set(value)
        out(registry.render_prometheus().rstrip("\n"))
        return 0
    out(format_table(stats))
    return 0


def cmd_serve(args, out):
    import asyncio
    import signal

    from .serve import ServeServer
    from .serve.session import SessionError

    try:
        server = ServeServer(
            host=args.host, port=args.port,
            state_dir=args.state_dir, ref_library=args.ref_library,
            workers=args.workers)
    except SessionError as exc:
        out("serve: %s" % exc)
        return 2

    async def main():
        await server.start()
        out("repro serve: listening on %s (workers=%d%s)"
            % (server.url, args.workers,
               ", ref-library %s" % args.ref_library
               if args.ref_library else ""))
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # non-POSIX loop
                pass
        await stop.wait()
        out("repro serve: draining in-flight jobs ...")
        await server.stop()
        out("repro serve: shutdown complete (%d request(s) served)"
            % server.app.total_requests())

    asyncio.run(main())
    return 0


def cmd_fuzz(args, out):
    """Exit 0 on a clean sweep, 1 when any design diverged/crashed,
    2 on usage errors — mirroring the compile-command convention."""
    from .gen import corpus as corpus_store
    from .gen.runner import run_sweep

    if args.budget < 1:
        out("fuzz: --budget must be at least 1")
        return 2
    registry = _registry_for(args)
    report = run_sweep(
        args.seed, args.budget, jobs=args.jobs,
        shrink_failures=args.shrink, metrics=registry,
        analyze=args.analyze, compiled=args.compiled)

    if args.format == "json":
        out(json.dumps(report.as_envelope(), indent=1,
                       sort_keys=True))
    else:
        parts = ["%s=%d" % (k, v)
                 for k, v in sorted(report.counts.items())]
        out("fuzz: seed=%d budget=%d jobs=%d: %s (%.1f designs/s)"
            % (report.seed, report.budget, report.jobs,
               " ".join(parts) or "nothing ran",
               report.designs_per_second))
        for failure in report.failures:
            tag = "minimized to %d line(s)" % failure["min_lines"] \
                if failure.get("shrunk") else "unminimized"
            out("FAIL design %d [%s] %s — %s"
                % (failure["index"], failure["outcome"], tag,
                   failure["detail"]))
            out("  replay: %s" % failure["replay"])
            source = failure.get("min_source") or failure["source"]
            for line in source.splitlines():
                out("  | " + line)

    if args.corpus and report.failures:
        from .gen.grammar import replay as replay_design

        os.makedirs(args.corpus, exist_ok=True)
        for failure in report.failures:
            choices = failure.get("min_choices")
            if choices is None:
                continue
            design = replay_design(choices, seed=report.seed,
                                   index=failure["index"])
            name = "fail_seed%d_i%d" % (report.seed,
                                        failure["index"])
            path = os.path.join(args.corpus, "%s.vhd" % name)
            text = "\n".join([
                "%s expect=%s top=%s until_ns=%d" % (
                    corpus_store.HEADER_PREFIX, failure["outcome"],
                    design.top, design.until_ns),
                "%s seed=%d index=%d" % (corpus_store.HEADER_PREFIX,
                                         report.seed,
                                         failure["index"]),
                "%s note=UNFIXED failure — do not commit as-is" % (
                    corpus_store.HEADER_PREFIX),
            ]) + "\n" + design.source
            with open(path, "w") as handle:
                handle.write(text)
            out("fuzz: wrote failing design to %s" % path)

    _emit_metrics(registry, args, out, "fuzz metrics")
    return 0 if report.ok else 1


def cmd_bench_check(args, out):
    from .metrics.benchcheck import bench_check

    if args.current is not None and len(args.baseline) > 1:
        out("bench-check: --current works with a single --baseline")
        return 2
    rc = 0
    for baseline in args.baseline:
        rc = max(rc, bench_check(
            baseline, tolerance=args.tolerance,
            current_path=args.current, update=args.update, out=out))
    return rc


def cmd_trace(args, out):
    try:
        return _cmd_trace(args, out)
    except BrokenPipeError:
        # `repro trace big.json | head` closing the pipe early is
        # normal operator behavior, not an error.
        return 0


def _cmd_trace(args, out):
    from .trace import analyze

    try:
        event_lists = [analyze.load_spans(p) for p in args.traces]
    except OSError as exc:
        out("trace: %s" % exc)
        return 2
    except ValueError as exc:
        out("trace: not a trace file: %s" % exc)
        return 2
    events = analyze.merge_spans(*event_lists)
    if args.merge_out:
        parent = os.path.dirname(args.merge_out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        tmp = "%s.tmp.%d" % (args.merge_out, os.getpid())
        with open(tmp, "w") as f:
            json.dump({"traceEvents": events,
                       "displayTimeUnit": "ms"}, f, sort_keys=True)
        os.replace(tmp, args.merge_out)
        out("merged trace written to %s" % args.merge_out)
    report = analyze.validate(events, trace_id=args.trace_id)
    if args.view == "summary":
        out(json.dumps(report, indent=2, sort_keys=True))
        return 0
    out("%d span(s) in %d trace(s): %d root(s), %d unresolved "
        "parent(s), %d process(es)"
        % (report["spans"], len(report["trace_ids"]),
           report["roots"], report["unresolved_parents"],
           len(report["pids"])))
    if args.view == "tree":
        for line in analyze.render_tree(events, trace_id=args.trace_id,
                                        max_spans=args.limit):
            out(line)
    elif args.view == "slowest":
        for span in analyze.slowest_spans(
                events, n=args.limit or 10, trace_id=args.trace_id):
            out("%12.3f ms  %-28s pid %-7s trace %s"
                % (span.get("dur", 0) / 1000.0,
                   span.get("name", "?"), span.get("pid", "?"),
                   (span.get("trace_id") or "-")[:16]))
    else:  # rollup
        rows = analyze.rollup(events, trace_id=args.trace_id)
        for line in analyze.render_rollup(rows, limit=args.limit):
            out(line)
    return 0


COMMANDS = {
    "analyze": cmd_analyze,
    "build": cmd_build,
    "compile": cmd_compile,
    "dump": cmd_dump,
    "lint": cmd_lint,
    "list": cmd_list,
    "simulate": cmd_simulate,
    "sim": cmd_simulate,
    "stats": cmd_stats,
    "serve": cmd_serve,
    "fuzz": cmd_fuzz,
    "bench-check": cmd_bench_check,
    "trace": cmd_trace,
}


def main(argv=None, out=print):
    args = _make_parser().parse_args(argv)
    return COMMANDS[args.command](args, out)


if __name__ == "__main__":
    sys.exit(main())
