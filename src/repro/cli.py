"""The script-driven user interface.

"The compiler is invoked by either a menu-based or script-driven user
interface" (§2).  This is the script-driven one::

    python -m repro compile design.vhd --root ./libs
    python -m repro build pkg.vhd top.vhd --root ./libs --jobs 4
    python -m repro dump work rtl(counter) --root ./libs
    python -m repro simulate testbench --root ./libs --until 200ns \
        --trace clk --trace q
    python -m repro stats

Compile places successfully compiled units into the working library
(``--work``, default ``work``) under ``--root``; reference libraries
named with ``--ref`` can be read but never updated.
"""

import argparse
import sys

from .sim import TIME_UNITS


def _parse_time(text):
    """'200ns' / '1 us' / '5000' (fs) -> femtoseconds."""
    text = text.strip().lower().replace(" ", "")
    for unit, scale in sorted(TIME_UNITS, key=lambda u: -len(u[0])):
        if text.endswith(unit):
            return int(float(text[: -len(unit)]) * scale)
    return int(text)


def _make_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AG-generated VHDL compiler and simulator "
                    "(PLDI 1989 reproduction)",
    )
    parser.add_argument("--root", default=None,
                        help="design-library directory (persistent)")
    parser.add_argument("--work", default="work",
                        help="working library name")
    parser.add_argument("--ref", action="append", default=[],
                        help="reference library (read-only)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile VHDL source files")
    p.add_argument("files", nargs="+")
    p.add_argument("--keep-going", action="store_true",
                   help="report diagnostics without failing")

    p = sub.add_parser(
        "build",
        help="incremental parallel build (skips unchanged files)")
    p.add_argument("files", nargs="+")
    p.add_argument("--jobs", "-j", type=int, default=1,
                   help="compile independent files with N workers")
    p.add_argument("--force", action="store_true",
                   help="rebuild everything, ignoring the cache")
    p.add_argument("--no-stats", action="store_true",
                   help="suppress the cache-stats report line")

    p = sub.add_parser("dump", help="human-readable VIF of a unit")
    p.add_argument("library")
    p.add_argument("unit")

    p = sub.add_parser("list", help="list units in the library")

    p = sub.add_parser("simulate", help="elaborate and run a design")
    p.add_argument("top", help="entity or configuration name")
    p.add_argument("--arch", default=None)
    p.add_argument("--until", default="1us",
                   help="simulation time, e.g. 200ns")
    p.add_argument("--trace", action="append", default=[],
                   help="signal suffix to trace (repeatable)")
    p.add_argument("--vcd", default=None,
                   help="write a VCD file of the traced signals")

    sub.add_parser("stats", help="print the AG-statistics table")
    return parser


def _library(args):
    from .vhdl.library import LibraryManager

    return LibraryManager(root=args.root, work=args.work,
                          reference_libs=tuple(args.ref))


def cmd_compile(args, out):
    from .vhdl.compiler import Compiler

    compiler = Compiler(library=_library(args), work=args.work,
                        strict=False)
    failures = 0
    for path in args.files:
        result = compiler.compile_file(path)
        status = "ok" if result.ok else "%d error(s)" % len(
            result.messages)
        out("%s: %s (%d lines, units: %s)" % (
            path, status, result.source_lines,
            ", ".join(result.unit_names()) or "none"))
        for message in result.messages:
            out("  %s" % message)
        if not result.ok:
            failures += 1
    return 1 if failures and not args.keep_going else 0


def cmd_build(args, out):
    from .build import BuildError, IncrementalBuilder

    if args.root is None:
        out("build: a persistent --root is required "
            "(the cache lives in <root>/build.state.json)")
        return 2
    try:
        builder = IncrementalBuilder(
            args.root, work=args.work,
            reference_libs=tuple(args.ref), jobs=args.jobs)
        report = builder.build(args.files, force=args.force)
    except BuildError as exc:
        out("build: %s" % exc)
        return 2
    for path in report.order:
        action = report.actions[path]
        reason = report.reasons.get(path, "")
        out("%-8s %s%s" % (action, path,
                           "  (%s)" % reason if reason else ""))
        for message in report.messages.get(path, ()):
            out("  %s" % message)
    if not args.no_stats:
        s = report.stats
        out("cache: %d hit(s), %d miss(es), %d invalidated, "
            "%d AG evaluation(s), jobs=%d"
            % (s.get("hits", 0), s.get("misses", 0),
               s.get("invalidated", 0), s.get("ag_evaluations", 0),
               report.jobs))
    return 0 if report.ok else 1


def cmd_dump(args, out):
    lib = _library(args)
    out(lib.dump_vif(args.library, args.unit))
    return 0


def cmd_list(args, out):
    lib = _library(args)
    for libname, key in lib.compile_order:
        out("%s.%s" % (libname, key))
    return 0


def cmd_simulate(args, out):
    from .sim.tracing import Tracer, format_fs
    from .vhdl.elaborate import Elaborator

    elab = Elaborator(_library(args))
    sim = elab.elaborate(args.top, arch_name=args.arch)
    tracer = None
    if args.trace or args.vcd:
        signals = []
        for suffix in args.trace or ["*"]:
            for path in sim.names.by_suffix(suffix):
                if sim.names.kind_of(path) == "signal":
                    signals.append(sim.names.lookup(path))
        tracer = Tracer(sim.kernel, signals or None)
    until = _parse_time(args.until)
    end = sim.run(until_fs=until)
    out("simulation stopped at %s (%d cycles)"
        % (format_fs(end), sim.kernel.cycles))
    for path, sig in sim.names.signals():
        out("  %-30s = %s" % (path, sig.image(sig.value)))
    if tracer is not None and args.vcd:
        with open(args.vcd, "w") as f:
            f.write(tracer.vcd())
        out("VCD written to %s" % args.vcd)
    return 0


def cmd_stats(args, out):
    from .ag import format_table
    from .vhdl.expr_grammar import expr_grammar
    from .vhdl.grammar import principal_grammar

    out(format_table([
        principal_grammar().statistics(),
        expr_grammar().statistics(),
    ]))
    return 0


COMMANDS = {
    "build": cmd_build,
    "compile": cmd_compile,
    "dump": cmd_dump,
    "list": cmd_list,
    "simulate": cmd_simulate,
    "stats": cmd_stats,
}


def main(argv=None, out=print):
    args = _make_parser().parse_args(argv)
    return COMMANDS[args.command](args, out)


if __name__ == "__main__":
    sys.exit(main())
