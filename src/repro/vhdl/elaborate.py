"""Elaboration: turning compiled units into a running simulation.

Generated models define ``elaborate(ctx)``; the :class:`Elaborator`
builds the design hierarchy by executing them — resolving component
bindings at this point, per the paper's §3.3 trade-off of postponing
work "until the configuration information is available".  Binding
resolution order:

1. an explicit configuration *unit* selected for the top (or bindings
   it carries for inner instances);
2. configuration *specifications* compiled into the architecture;
3. the default rules: an entity with the component's name in the work
   library, and **the latest compiled architecture for that entity** —
   the usage-history-dependent default the paper calls out as making
   descriptions non-deterministic.
"""

from ..sim import Kernel, NameServer
from ..sim.nameserver import SEPARATOR
from .codegen.pymodel import load_model
from .symtab import entry_kind


class DesignRecord:
    """The elaboration trace of one architecture or package instance.

    The elaborator appends one record per ``elaborate(ctx)`` call it
    executes, mapping the VHDL names the generated model declared to
    the elaborated kernel objects they produced — including ports,
    whose recorded :class:`~repro.sim.signals.Signal` is the *parent's
    actual* when the port map bound one.  The post-elaboration
    analyzer (:mod:`repro.analysis.netlist`) correlates these records
    with the static facts of the same units to build the flattened
    whole-design dataflow graph.
    """

    __slots__ = ("path", "kind", "node", "signals", "processes",
                 "instances")

    def __init__(self, path, kind, node):
        self.path = path        # hierarchical instance path
        self.kind = kind        # 'architecture' | 'package'
        self.node = node        # the VIF unit carrying py_source
        self.signals = {}       # VHDL name -> Signal (ports included)
        self.processes = {}     # label -> Process
        self.instances = {}     # label -> child DesignRecord

    def __repr__(self):
        return "<DesignRecord %s: %d signals, %d processes>" % (
            self.path, len(self.signals), len(self.processes))


class ElaborationError(Exception):
    """A binding or interface mismatch found during elaboration."""


class ElabContext:
    """The ``ctx`` object generated models receive."""

    def __init__(self, elaborator, path, generics=None, ports=None,
                 arch_node=None, config_rows=(), record=None):
        self._elab = elaborator
        self.kernel = elaborator.kernel
        self.rt = elaborator.kernel.rt
        self.ops = self.rt.ops
        self.path = path
        self._generics = dict(generics or {})
        self._ports = dict(ports or {})
        self._arch = arch_node
        self._config_rows = list(config_rows)
        self._exports = {}
        self._record = record

    # -- interface ------------------------------------------------------------

    def generic(self, name, default=None):
        if name in self._generics:
            return self._generics[name]
        if default is None:
            raise ElaborationError(
                "generic %r of %s has no actual and no default"
                % (name, self.path))
        return default

    def port(self, name, init=0, mode="in", line=None):
        sig = self._ports.get(name)
        if sig is None:
            # Unbound/top-level port: a fresh signal.
            sig = self.signal(name, init, line=line)
        elif self._record is not None:
            self._record.signals[name] = sig
        return sig

    # -- declarations ------------------------------------------------------------

    def _decl_span(self, line):
        """Declaration span for a generated ``line=`` coordinate.

        The architecture node carries the source file it was compiled
        from (stamped at registration), so runtime errors — the
        multi-driver resolution failure above all — can cite the same
        declaration site ``repro lint`` reports at compile time.
        """
        if line is None:
            return None
        from ..diag import SourceSpan

        src = getattr(self._arch, "source_file", None) \
            if self._arch is not None else None
        return SourceSpan(file=src or None, line=line)

    def signal(self, name, init=0, res=None, line=None):
        sig = self.kernel.signal(
            "%s%s%s" % (self.path, SEPARATOR, name), init, res)
        sig.decl_span = self._decl_span(line)
        self._elab.names.register(sig.name, "signal", sig)
        if self._record is not None:
            self._record.signals[name] = sig
        return sig

    def process(self, name, fn, sensitivity=None, line=None):
        proc = self.kernel.process(
            "%s%s%s" % (self.path, SEPARATOR, name), fn,
            sensitivity=sensitivity, line=line)
        self._elab.names.register(proc.name, "process", proc)
        if self._record is not None:
            self._record.processes[name] = proc
        return proc

    def export(self, names):
        """Package elaboration result (constants, functions, signals)."""
        self._exports.update(names)

    # -- structure ----------------------------------------------------------------

    def instance(self, label, comp_name, generic_map, port_map):
        """Instantiate a bound component (§3.3, both layers)."""
        binding = self._elab.resolve_binding(
            comp_name, label, self._arch, self._config_rows)
        if binding is None:
            raise ElaborationError(
                "no entity/architecture binding for instance %s:%s "
                "of component %r" % (self.path, label, comp_name))
        entity, arch = binding
        child_path = "%s%s%s" % (self.path, SEPARATOR, label)
        self._elab.names.register(child_path, "instance",
                                  (entity.name, arch.name))
        child = self._elab.elaborate_architecture(
            entity, arch, child_path, generics=generic_map,
            ports=port_map)
        if self._record is not None and child._record is not None:
            self._record.instances[label] = child._record


class Elaborator:
    """Builds a simulation from a library's compiled units."""

    def __init__(self, library, kernel=None):
        self.library = library
        self.kernel = kernel or Kernel()
        self.names = NameServer()
        #: DesignRecord per elaborated architecture/package instance,
        #: in elaboration order (top after its packages, children
        #: after the ``ctx.instance`` call that created them).
        self.records = []
        self._package_ns = {}
        self._packages_loaded = False

    # -- packages -------------------------------------------------------------------

    def _load_packages(self):
        """Elaborate every package (and body) once, in compile order;
        their exports become the shared globals of all models."""
        if self._packages_loaded:
            return
        self._packages_loaded = True
        for lib, key in list(self.library.compile_order):
            node = self.library.find_unit(lib, key) \
                or self.library._units.get((lib, key))
            if node is None:
                continue
            kind = entry_kind(node)
            if kind not in ("package", "package_body"):
                continue
            py = getattr(node, "py_source", "")
            if not py or "elaborate" not in py:
                continue
            record = DesignRecord(SEPARATOR + node.name, "package",
                                  node)
            self.records.append(record)
            ctx = ElabContext(self, SEPARATOR + node.name,
                              record=record)
            ns = load_model(py, "%s.%s" % (lib, key),
                            extra_globals=self._package_ns)
            ns["elaborate"](ctx)
            self._package_ns.update(ctx._exports)

    # -- binding resolution (§3.3) ------------------------------------------------------

    def resolve_binding(self, comp_name, label, arch_node, config_rows):
        lib = self.library.work
        # 1. configuration-unit rows for this architecture.
        for row in config_rows:
            _arch, labels, comp, blib, ent_name, arch_name = row
            label_set = labels.split(",") if isinstance(labels, str) \
                else list(labels)
            if comp != comp_name:
                continue
            if label not in label_set and "all" not in label_set \
                    and "others" not in label_set:
                continue
            return self._find_pair(blib or lib, ent_name, arch_name)
        # 2. configuration specifications baked into the architecture.
        if arch_node is not None:
            for inst in arch_node.instances:
                if inst.label == label and inst.is_bound:
                    return self._find_pair(
                        inst.bound_library or lib, inst.bound_entity,
                        inst.bound_arch)
        # 3. defaults: same-named entity, latest compiled architecture.
        entity = self.library.find_unit(lib, comp_name)
        if entity is None or entry_kind(entity) != "entity":
            return None
        arch = self.library.latest_architecture(lib, entity.name)
        if arch is None:
            return None
        return entity, arch

    def _find_pair(self, lib, ent_name, arch_name):
        entity = self.library.find_unit(lib, ent_name)
        if entity is None or entry_kind(entity) != "entity":
            raise ElaborationError("no entity %s.%s" % (lib, ent_name))
        if arch_name:
            arch = self.library.find_architecture(lib, ent_name,
                                                  arch_name)
        else:
            arch = self.library.latest_architecture(lib, ent_name)
        if arch is None:
            raise ElaborationError(
                "no architecture %r of entity %s.%s"
                % (arch_name or "<default>", lib, ent_name))
        return entity, arch

    # -- entry points ----------------------------------------------------------------------

    def elaborate_architecture(self, entity, arch, path, generics=None,
                               ports=None, config_rows=()):
        self._load_packages()
        record = DesignRecord(path, "architecture", arch)
        self.records.append(record)
        ctx = ElabContext(self, path, generics, ports, arch,
                          config_rows, record=record)
        ns = load_model(arch.py_source,
                        "%s(%s)" % (arch.name, entity.name),
                        extra_globals=self._package_ns)
        ns["elaborate"](ctx)
        return ctx

    def elaborate(self, top, arch_name=None, generics=None, lib=None):
        """Elaborate a top unit: an entity name or a configuration
        name.  Returns a :class:`Simulation`."""
        lib = lib or self.library.work
        config_rows = ()
        node = self.library.find_unit(lib, top)
        if node is None:
            raise ElaborationError("no unit %r in library %r"
                                   % (top, lib))
        if entry_kind(node) == "configuration":
            config_rows = [tuple(row) for row in node.bindings]
            entity = node.entity or self.library.find_unit(
                lib, node.entity_name)
            # The configuration's ``for <arch>`` row names the arch.
            arch_name = arch_name or (
                node.bindings[0][0] if node.bindings else None)
            if arch_name:
                arch = self.library.find_architecture(
                    lib, entity.name, arch_name)
            else:
                arch = self.library.latest_architecture(lib, entity.name)
        elif entry_kind(node) == "entity":
            entity = node
            if arch_name:
                arch = self.library.find_architecture(lib, top, arch_name)
            else:
                arch = self.library.latest_architecture(lib, top)
        else:
            raise ElaborationError(
                "unit %r is a %s, not an entity or configuration"
                % (top, entry_kind(node)))
        if arch is None:
            raise ElaborationError(
                "entity %r has no compiled architecture" % top)
        path = SEPARATOR + entity.name
        self.names.register(path, "instance", (entity.name, arch.name))
        self.elaborate_architecture(entity, arch, path,
                                    generics=generics,
                                    config_rows=config_rows)
        return Simulation(self.kernel, self.names, self.records)


class Simulation:
    """A ready-to-run simulation: kernel plus name server."""

    def __init__(self, kernel, names, records=()):
        self.kernel = kernel
        self.names = names
        self.records = list(records)

    def run(self, until_fs=None, max_cycles=None):
        return self.kernel.run(until=until_fs, max_cycles=max_cycles)

    def signal(self, name):
        """Find a signal by suffix (e.g. 'count') or full path."""
        obj = self.names.lookup(name)
        if obj is not None:
            return obj
        paths = self.names.by_suffix(name)
        signals = [self.names.lookup(p) for p in paths
                   if self.names.kind_of(p) == "signal"]
        if len(signals) == 1:
            return signals[0]
        if not signals:
            raise KeyError("no signal %r" % name)
        raise KeyError("ambiguous signal %r: %s" % (name, paths))

    def value(self, name):
        return self.signal(name).value

    @property
    def now(self):
        return self.kernel.now
