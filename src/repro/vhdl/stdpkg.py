"""Package STANDARD and library STD.

The predefined language environment every VHDL compilation unit sees:
BOOLEAN, BIT, CHARACTER, SEVERITY_LEVEL, INTEGER, REAL, TIME (with its
units), NATURAL, POSITIVE, STRING, BIT_VECTOR, and the predefined
function NOW.  Built once, written into an in-memory ``std`` library
VIF so that every other unit's references to these nodes serialize as
foreign references — exactly how user packages behave.
"""

from ..sim import TIME_UNITS
from ..vif.io import VIFWriter
from ..vif.nodes import (
    ArrayType,
    EnumLiteralEntry,
    EnumType,
    FloatType,
    IntegerType,
    PackageUnit,
    PhysicalType,
    PhysicalUnitEntry,
    ScalarSubtype,
    SubprogramEntry,
)
from ..applicative import Env

#: Names of the 33 non-graphic CHARACTER positions 0..32 is graphic
#: space; VHDL'87 names positions 0..31 and 127.
_CONTROL_NAMES = [
    "nul", "soh", "stx", "etx", "eot", "enq", "ack", "bel",
    "bs", "ht", "lf", "vt", "ff", "cr", "so", "si",
    "dle", "dc1", "dc2", "dc3", "dc4", "nak", "syn", "etb",
    "can", "em", "sub", "esc", "fsp", "gsp", "rsp", "usp",
]


def _character_literals():
    """The 128 CHARACTER literal names, position = ASCII code."""
    names = list(_CONTROL_NAMES)
    for code in range(32, 127):
        names.append("'%c'" % chr(code))
    names.append("del")
    return names


class StandardPackage:
    """The constructed STANDARD package and its environment."""

    def __init__(self):
        self.boolean = EnumType(name="boolean", literals=["false", "true"])
        self.bit = EnumType(name="bit", literals=["'0'", "'1'"])
        self.character = EnumType(
            name="character", literals=_character_literals()
        )
        self.severity_level = EnumType(
            name="severity_level",
            literals=["note", "warning", "error", "failure"],
        )
        self.integer = IntegerType(
            name="integer", low=-(2**31) + 1, high=2**31 - 1
        )
        self.real = FloatType(name="real", low=-1e38, high=1e38)
        self.time = PhysicalType(
            name="time",
            low=-(2**62),
            high=2**62,
            units=[list(u) for u in TIME_UNITS],
        )
        self.natural = ScalarSubtype(
            name="natural", base_type=self.integer, low=0, high=None
        )
        self.positive = ScalarSubtype(
            name="positive", base_type=self.integer, low=1, high=None
        )
        self.string = ArrayType(
            name="string",
            index_type=self.positive,
            element_type=self.character,
            index_range=None,
        )
        self.bit_vector = ArrayType(
            name="bit_vector",
            index_type=self.natural,
            element_type=self.bit,
            index_range=None,
        )
        self.now_fn = SubprogramEntry(
            name="now",
            sub_kind="function",
            params=[],
            result=self.time,
            py="rt.now",
            predefined_op="now",
            pure=True,
        )
        self.types = [
            self.boolean,
            self.bit,
            self.character,
            self.severity_level,
            self.integer,
            self.real,
            self.time,
            self.natural,
            self.positive,
            self.string,
            self.bit_vector,
        ]
        self._build_literals()
        self._build_units()
        self.package = PackageUnit(
            name="standard",
            decls=(
                self.types
                + self.literal_entries
                + self.unit_entries
                + [self.now_fn]
            ),
        )
        #: In-memory VIF payload for the std library.
        writer = VIFWriter("std", "standard")
        self.payload = writer.write({"unit": self.package})
        #: Nodes in VIF id order, for seeding readers so foreign
        #: references into STANDARD resolve to these singleton objects
        #: (type checking is identity-based).
        self.node_table = writer.node_table

    def _build_literals(self):
        self.literal_entries = []
        for etype in (
            self.boolean,
            self.bit,
            self.character,
            self.severity_level,
        ):
            for pos, lit in enumerate(etype.literals):
                self.literal_entries.append(
                    EnumLiteralEntry(name=lit, etype=etype, position=pos)
                )

    def _build_units(self):
        self.unit_entries = [
            PhysicalUnitEntry(name=unit, ptype=self.time, scale=scale)
            for unit, scale in TIME_UNITS
        ]

    def environment(self):
        """An Env with every STANDARD declaration directly visible
        (the implicit context of all compilation units)."""
        env = Env.EMPTY
        for t in self.types:
            env = env.bind(t.name, t)
        for lit in self.literal_entries:
            env = env.bind(lit.name, lit, overloadable=True)
        for u in self.unit_entries:
            env = env.bind(u.name, u)
        env = env.bind("now", self.now_fn, overloadable=True)
        return env

    def char_positions(self):
        """char -> position map for STRING literal values."""
        return {chr(code): code for code in range(128)}


_STANDARD = None


def standard():
    """The singleton STANDARD package."""
    global _STANDARD
    if _STANDARD is None:
        _STANDARD = StandardPackage()
    return _STANDARD
