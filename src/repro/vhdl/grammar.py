"""The principal VHDL attribute grammar (§2.2, §4.1).

This AG describes the context-free and context-sensitive syntax of the
VHDL subset and specifies the simulation semantics as generated code.
It "does not contain semantic rules for most of the aspects of
compiling expressions; instead it merely synthesizes a simplified list
of tokens (LEF) that is input to the second AG" — expressions appear
here as *soup* nonterminals whose only job is to classify identifiers
through the applicative ENV and build LEF lists; every maximal
expression is handed to ``exprEval`` by the statement/declaration
rules.

Attribute classes (all completed by implicit rules, §4.2):

=========  =====  ==================================================
``MSGS``   syn    error messages; merge = concatenation, unit = ()
``LEF``    syn    LEF token fragments; merge = concatenation
``SRES``   syn    sequential-statement results; merge = SRes.merge
``CS``     syn    concurrent-statement results; merge = CStmt.merge
``ENV``    inh    the applicative environment (§4.3)
``CC``     inh    the compilation context (services)
``LEVEL``  inh    subprogram nesting level
``RESULT`` inh    expected function-result type (for return)
=========  =====  ==================================================
"""

from ..ag import AGSpec, SYN, INH

from . import lef as L
from . import semantics_decl as D
from . import semantics_stmt as S
from . import semantics_unit as U
from .lexer import KEYWORDS, token_kinds
from .semantics_decl import DeclResult
from .semantics_stmt import SRes
from .semantics_unit import CStmt
from .stdpkg import standard


def _concat(a, b):
    return a + b


def _merge_decl(a, b):
    return DeclResult(b.env, a.code + b.code, a.entries + b.entries,
                      a.msgs + b.msgs, a.configs + b.configs)


def lef_line(lef_tokens, default=0):
    for tok in lef_tokens:
        if tok.line:
            return tok.line
    return default


# ---------------------------------------------------------------------------
# vocabulary
# ---------------------------------------------------------------------------


def _declare_vocabulary(g):
    g.terminals(*token_kinds())

    g.attr_class("MSGS", SYN, merge=_concat, unit=())
    g.attr_class("LEF", SYN, merge=_concat, unit=())
    g.attr_class("SRES", SYN, merge=SRes.merge, unit=S.EMPTY)
    g.attr_class("CS", SYN, merge=CStmt.merge, unit=U.CSTMT_EMPTY)
    g.attr_class("ENV", INH)
    g.attr_class("CC", INH)
    g.attr_class("LEVEL", INH)
    g.attr_class("RESULT", INH)
    g.attr_class("SCOPE", INH)

    g.attr_group("CTXA", "ENV", "CC")
    g.attr_group("SOUP", "LEF", "CTXA")
    g.attr_group("STMTA", "SRES", "CTXA", "LEVEL", "RESULT")
    g.attr_group("DECLA", "MSGS", "CTXA", "LEVEL", "SCOPE")

    # expression soup
    for nt in ("xp", "xtoks", "xtok", "inner", "initem", "nsoup"):
        g.nonterminal(nt, "SOUP")
    g.nonterminal("xp_opt", ("OPT", SYN), "CTXA")

    # statements
    g.nonterminal("stmts", "STMTA")
    g.nonterminal("stmt", "STMTA")
    g.nonterminal("elsifs", ("ARMS", SYN), "STMTA")
    g.nonterminal("else_opt", ("BODY", SYN), "STMTA")
    g.nonterminal("case_alts", ("ALTS", SYN), "STMTA")
    g.nonterminal("case_alt", ("ALT", SYN), "STMTA")
    g.nonterminal("choices", ("CHS", SYN), "CTXA")
    g.nonterminal("choice", ("CH", SYN), "CTXA")
    g.nonterminal("when_opt", ("COND", SYN), "CTXA")
    g.nonterminal("wave", ("WAVE", SYN), "CTXA")
    g.nonterminal("wave_elem", ("WELEM", SYN), "CTXA")
    g.nonterminal("wave_opts", ("WAVET", SYN), "CTXA")
    g.nonterminal("name_list", ("NAMES", SYN), "CTXA")
    g.nonterminal("wait_on_opt", ("NAMES", SYN), "CTXA")
    g.nonterminal("wait_until_opt", ("OPT", SYN), "CTXA")
    g.nonterminal("wait_for_opt", ("OPT", SYN), "CTXA")
    g.nonterminal("report_opt", ("OPT", SYN), "CTXA")
    g.nonterminal("severity_opt", ("OPT", SYN), "CTXA")

    # declarations
    g.nonterminal("decls", ("RES", SYN), "DECLA", "RESULT")
    g.nonterminal("decl", ("RES", SYN), "DECLA", "RESULT")
    g.nonterminal("idlist", ("IDS", SYN))
    g.nonterminal("mark", ("PARTS", SYN), ("LINE", SYN))
    g.nonterminal("sub_ind", ("SUB", SYN), "CTXA")
    g.nonterminal("constraint_opt", ("CONSTR", SYN), "CTXA")
    g.nonterminal("init_opt", ("OPT", SYN), "CTXA")
    g.nonterminal("enum_lits", ("LITS", SYN))
    g.nonterminal("rec_fields", ("FIELDS", SYN), "CTXA")
    g.nonterminal("iface_list", ("IFACE", SYN), "CTXA")
    g.nonterminal("iface", ("IFACE", SYN), "CTXA")
    g.nonterminal("iface_class", ("KW", SYN))
    g.nonterminal("mode_opt", ("KW", SYN))
    g.nonterminal("designator", ("NAME", SYN))
    g.nonterminal("params_opt", ("IFACE", SYN), "CTXA")
    g.nonterminal("signal_kind_opt", ("KW", SYN))
    g.nonterminal("sel_names", ("PATHS", SYN))
    g.nonterminal("sel_name", ("PARTS", SYN))
    g.nonterminal("inst_spec", ("SPEC", SYN))
    g.nonterminal("arch_ind_opt", ("NAME", SYN))

    # concurrent statements
    g.nonterminal("cstmts", "CS", "CTXA", "LEVEL")
    g.nonterminal("cstmt", "CS", "CTXA", "LEVEL")
    g.nonterminal("cstmt_body", "CS", ("LABEL", INH), "CTXA", "LEVEL")
    g.nonterminal("sens_opt", ("NAMES", SYN), "CTXA")
    g.nonterminal("gmap_opt", ("ASSOCS", SYN), "CTXA")
    g.nonterminal("pmap_opt", ("ASSOCS", SYN), "CTXA")
    g.nonterminal("assoc_list", ("ASSOCS", SYN), "CTXA")
    g.nonterminal("assoc", ("ASSOC", SYN), "CTXA")
    g.nonterminal("cond_waves", ("ARMS", SYN), "CTXA")
    g.nonterminal("sel_waves", ("ARMS", SYN), "CTXA")

    # units
    g.nonterminal("design_file", ("UNITS", SYN), "MSGS", "CTXA")
    g.nonterminal("design_units", ("UNITS", SYN), "MSGS", "CTXA")
    g.nonterminal("design_unit", ("UNIT", SYN), "MSGS", "CTXA")
    g.nonterminal("context_items", ("RES", SYN), ("CLAUSES", SYN),
                  "MSGS", "CTXA")
    g.nonterminal("context_item", ("RES", SYN), ("CLAUSE", SYN),
                  "MSGS", "CTXA")
    g.nonterminal("library_unit", ("UNIT", SYN), "MSGS", "CTXA")
    g.nonterminal("entity_unit", ("UNIT", SYN), "MSGS", "CTXA")
    g.nonterminal("arch_unit", ("UNIT", SYN), ("BUILD", SYN), "MSGS", "CTXA")
    g.nonterminal("package_unit", ("UNIT", SYN), ("BUILD", SYN), "MSGS", "CTXA")
    g.nonterminal("package_body_unit", ("UNIT", SYN), ("BUILD", SYN), "MSGS", "CTXA")
    g.nonterminal("config_unit", ("UNIT", SYN), ("BUILD", SYN), "MSGS", "CTXA")
    g.nonterminal("gen_clause_opt", ("IFACE", SYN), "CTXA")
    g.nonterminal("port_clause_opt", ("IFACE", SYN), "CTXA")
    g.nonterminal("id_opt", ("NAME", SYN))
    g.nonterminal("config_items", ("BINDS", SYN), "CTXA")
    g.nonterminal("config_item", ("BIND", SYN), "CTXA")

    g.set_start("design_file")


# ---------------------------------------------------------------------------
# expression soup: classification into LEF (§4.1)
# ---------------------------------------------------------------------------

#: operator/punctuation terminals that may appear inside expressions.
_SOUP_OPS = [
    "kw_and", "kw_or", "kw_nand", "kw_nor", "kw_xor", "kw_not",
    "kw_mod", "kw_rem", "kw_abs", "kw_to", "kw_downto",
    "EQ", "NE", "LT", "LE", "GT", "GE",
    "PLUS", "MINUS", "AMP", "STAR", "SLASH", "POW",
]


def _soup_productions(g):
    p = g.production("xp_toks", "xp -> xtoks")

    p = g.production("xtoks_one", "xtoks -> xtok")
    p = g.production("xtoks_more", "xtoks -> xtoks0 xtok")

    p = g.production("xtok_id", "xtok -> ID")
    p.rule("xtok.LEF", "ID.value", "xtok.ENV", "ID.line", "ID.text",
           fn=lambda name, env, line, text: (
               L.classify_id(name, env, line, text),))
    p = g.production("xtok_abstract", "xtok -> ABSTRACT")
    p.rule("xtok.LEF", "ABSTRACT.value", "ABSTRACT.text",
           "ABSTRACT.line",
           fn=lambda v, t, ln: (
               L.lef("REAL" if isinstance(v, float) else "INT",
                     t, v, ln),))
    p = g.production("xtok_char", "xtok -> CHAR")
    p.rule("xtok.LEF", "CHAR.value", "xtok.ENV", "CHAR.line",
           fn=lambda ch, env, ln: (L.classify_char(ch, env, ln),))
    p = g.production("xtok_string", "xtok -> STRING")
    p.rule("xtok.LEF", "STRING.value", "STRING.line",
           fn=lambda s, ln: (L.lef("STR", s, s, ln),))
    p = g.production("xtok_bitstring", "xtok -> BITSTRING")
    p.rule("xtok.LEF", "BITSTRING.value", "BITSTRING.line",
           fn=lambda s, ln: (L.lef("BITSTR", s, s, ln),))
    p = g.production("xtok_attr", "xtok -> TICK ID")
    p.rule("xtok.LEF", "ID.value", "TICK.line",
           fn=lambda name, ln: (L.lef("TICK", "'", "'", ln),
                                L.lef("RAWID", name, name, ln)))
    p = g.production("xtok_attr_range", "xtok -> TICK kw_range")
    p.rule("xtok.LEF", "TICK.line",
           fn=lambda ln: (L.lef("TICK", "'", "'", ln),
                          L.lef("RAWID", "range", "range", ln)))
    p = g.production("xtok_select", "xtok -> DOT ID")
    p.rule("xtok.LEF", "ID.value", "DOT.line",
           fn=lambda name, ln: (L.lef("DOT", ".", ".", ln),
                                L.lef("RAWID", name, name, ln)))
    p = g.production("xtok_qual", "xtok -> TICK LP inner RP")
    p.rule("xtok.LEF", "inner.LEF", "TICK.line",
           fn=lambda inner, ln: (L.lef("TICK", "'", "'", ln),
                                 L.lef("LP", "(", "(", ln))
           + tuple(inner) + (L.lef("RP", ")", ")", ln),))
    p = g.production("xtok_group", "xtok -> LP inner RP")
    p.rule("xtok.LEF", "inner.LEF", "LP.line",
           fn=lambda inner, ln: (L.lef("LP", "(", "(", ln),)
           + tuple(inner) + (L.lef("RP", ")", ")", ln),))
    for term in _SOUP_OPS:
        kind = term
        p = g.production("xtok_%s" % term.lower(), "xtok -> %s" % term)
        p.rule("xtok.LEF", "%s.text" % term, "%s.line" % term,
               fn=(lambda t=term: lambda text, ln: (
                   _op_lef(t, text, ln),))())

    p = g.production("inner_empty", "inner ->")
    p = g.production("inner_more", "inner -> inner0 initem")
    p = g.production("initem_tok", "initem -> xtok")
    p = g.production("initem_comma", "initem -> COMMA")
    p.rule("initem.LEF", "COMMA.line",
           fn=lambda ln: (L.lef("COMMA", ",", ",", ln),))
    p = g.production("initem_arrow", "initem -> ARROW")
    p.rule("initem.LEF", "ARROW.line",
           fn=lambda ln: (L.lef("ARROW", "=>", "=>", ln),))
    p = g.production("initem_bar", "initem -> BAR")
    p.rule("initem.LEF", "BAR.line",
           fn=lambda ln: (L.lef("BAR", "|", "|", ln),))
    p = g.production("initem_others", "initem -> kw_others")
    p.rule("initem.LEF", "kw_others.line",
           fn=lambda ln: (L.lef("OTHERS", "others", "others", ln),))
    p = g.production("initem_rangekw", "initem -> kw_range")
    p.rule("initem.LEF", "kw_range.line",
           fn=lambda ln: (L.lef("RANGEKW", "range", "range", ln),))
    p = g.production("initem_box", "initem -> BOX")
    p.rule("initem.LEF", "BOX.line",
           fn=lambda ln: (L.lef("BOX", "<>", "<>", ln),))

    # restricted name soup (assignment targets, call statements)
    p = g.production("nsoup_id", "nsoup -> ID")
    p.rule("nsoup.LEF", "ID.value", "nsoup.ENV", "ID.line", "ID.text",
           fn=lambda name, env, line, text: (
               L.classify_id(name, env, line, text),))
    p = g.production("nsoup_apply", "nsoup -> nsoup0 LP inner RP")
    p.rule("nsoup0.LEF", "nsoup1.LEF", "inner.LEF", "LP.line",
           fn=lambda pfx, inner, ln: tuple(pfx)
           + (L.lef("LP", "(", "(", ln),) + tuple(inner)
           + (L.lef("RP", ")", ")", ln),))
    p = g.production("nsoup_select", "nsoup -> nsoup0 DOT ID")
    p.rule("nsoup0.LEF", "nsoup1.LEF", "ID.value", "DOT.line",
           fn=lambda pfx, name, ln: tuple(pfx)
           + (L.lef("DOT", ".", ".", ln),
              L.lef("RAWID", name, name, ln)))
    p = g.production("nsoup_attr", "nsoup -> nsoup0 TICK ID")
    p.rule("nsoup0.LEF", "nsoup1.LEF", "ID.value", "TICK.line",
           fn=lambda pfx, name, ln: tuple(pfx)
           + (L.lef("TICK", "'", "'", ln),
              L.lef("RAWID", name, name, ln)))

    p = g.production("xp_opt_none", "xp_opt ->")
    p.const("xp_opt.OPT", None)
    p = g.production("xp_opt_some", "xp_opt -> xp")
    p.rule("xp_opt.OPT", "xp.LEF", fn=tuple)


_OP_KIND = {
    "kw_and": "AND", "kw_or": "OR", "kw_nand": "NAND",
    "kw_nor": "NOR", "kw_xor": "XOR", "kw_not": "NOT",
    "kw_mod": "MOD", "kw_rem": "REM", "kw_abs": "ABS",
    "kw_to": "TO", "kw_downto": "DOWNTO",
    "EQ": "EQ", "NE": "NE", "LT": "LT", "LE": "LE", "GT": "GT",
    "GE": "GE", "PLUS": "PLUS", "MINUS": "MINUS", "AMP": "AMP",
    "STAR": "STAR", "SLASH": "SLASH", "POW": "POW",
}


def _op_lef(term, text, line):
    return L.lef(_OP_KIND[term], text, text, line)


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------


def _decl_productions(g):
    p = g.production("decls_empty", "decls ->")
    p.rule("decls.RES", "decls.ENV", fn=lambda env: DeclResult(env))
    p = g.production("decls_more", "decls -> decls0 decl")
    p.rule("decl.ENV", "decls1.RES", fn=lambda res: res.env)
    p.rule("decls0.RES", "decls1.RES", "decl.RES", fn=_merge_decl)

    p = g.production("idlist_one", "idlist -> ID")
    p.rule("idlist.IDS", "ID.value", fn=lambda n: (n,))
    p = g.production("idlist_more", "idlist -> idlist0 COMMA ID")
    p.rule("idlist0.IDS", "idlist1.IDS", "ID.value",
           fn=lambda ns, n: ns + (n,))

    p = g.production("mark_id", "mark -> ID")
    p.rule("mark.PARTS", "ID.value", fn=lambda n: (n,))
    p.rule("mark.LINE", "ID.line", fn=lambda l: l)
    p = g.production("mark_sel", "mark -> mark0 DOT ID")
    p.rule("mark0.PARTS", "mark1.PARTS", "ID.value",
           fn=lambda ps, n: ps + (n,))
    p.rule("mark0.LINE", "mark1.LINE", fn=lambda l: l)

    # subtype indication: [resolution] mark [constraint]
    p = g.production("sub_plain", "sub_ind -> mark constraint_opt")
    p.rule("sub_ind.SUB", "mark.PARTS", "constraint_opt.CONSTR",
           "sub_ind.ENV", "sub_ind.CC", "mark.LINE",
           fn=lambda parts, constr, env, cc, line: _sub_ind(
               parts, None, constr, env, cc, line))
    p = g.production("sub_resolved",
                     "sub_ind -> mark0 mark1 constraint_opt")
    p.rule("sub_ind.SUB", "mark0.PARTS", "mark1.PARTS",
           "constraint_opt.CONSTR", "sub_ind.ENV", "sub_ind.CC",
           "mark1.LINE",
           fn=lambda res_parts, parts, constr, env, cc, line: _sub_ind(
               parts, res_parts, constr, env, cc, line))

    p = g.production("constr_none", "constraint_opt ->")
    p.const("constraint_opt.CONSTR", None)
    p = g.production("constr_range", "constraint_opt -> kw_range xp")
    p.rule("constraint_opt.CONSTR", "xp.LEF", "constraint_opt.ENV",
           "constraint_opt.CC",
           fn=lambda lef, env, cc: (
               "range", cc.eval_range(lef, env, lef_line(lef))))
    p = g.production("constr_index", "constraint_opt -> LP inner RP")
    p.rule("constraint_opt.CONSTR", "inner.LEF", "constraint_opt.ENV",
           "constraint_opt.CC", "LP.line",
           fn=lambda lef, env, cc, ln: (
               "index", cc.eval_range(lef, env, lef_line(lef, ln))))

    p = g.production("init_none", "init_opt ->")
    p.const("init_opt.OPT", None)
    p = g.production("init_some", "init_opt -> COLONEQ xp")
    p.rule("init_opt.OPT", "xp.LEF", fn=tuple)

    # objects ---------------------------------------------------------------
    for cls, label in (("constant", "kw_constant"),
                       ("variable", "kw_variable")):
        p = g.production(
            "decl_%s" % cls,
            "decl -> %s idlist COLON sub_ind init_opt SEMI" % label)
        p.rule("decl.RES", "idlist.IDS", "sub_ind.SUB", "init_opt.OPT",
               "decl.ENV", "decl.CC", "%s.line" % label, "decl.SCOPE",
               fn=(lambda c=cls: lambda ids, sub, init, env, cc, ln, sc:
                   _object_decl(c, ids, sub, init, env, cc, ln,
                                scope=sc))())
    p = g.production(
        "decl_signal",
        "decl -> kw_signal idlist COLON sub_ind signal_kind_opt "
        "init_opt SEMI")
    p.rule("decl.RES", "idlist.IDS", "sub_ind.SUB",
           "signal_kind_opt.KW", "init_opt.OPT", "decl.ENV", "decl.CC",
           "kw_signal.line", "decl.SCOPE",
           fn=lambda ids, sub, kind, init, env, cc, ln, sc: _object_decl(
               "signal", ids, sub, init, env, cc, ln, signal_kind=kind,
               scope=sc))

    p = g.production("sigkind_none", "signal_kind_opt ->")
    p.const("signal_kind_opt.KW", "")
    p = g.production("sigkind_register",
                     "signal_kind_opt -> kw_register")
    p.const("signal_kind_opt.KW", "register")
    p = g.production("sigkind_bus", "signal_kind_opt -> kw_bus")
    p.const("signal_kind_opt.KW", "bus")

    # types ---------------------------------------------------------------------
    p = g.production("decl_enum",
                     "decl -> kw_type ID kw_is LP enum_lits RP SEMI")
    p.rule("decl.RES", "ID.value", "enum_lits.LITS", "decl.ENV",
           "decl.CC", "kw_type.line", fn=D.enum_type_decl)
    p = g.production("enum_lits_one", "enum_lits -> ID")
    p.rule("enum_lits.LITS", "ID.value", fn=lambda n: (n,))
    p = g.production("enum_lits_one_c", "enum_lits -> CHAR")
    p.rule("enum_lits.LITS", "CHAR.value", fn=lambda c: (c,))
    p = g.production("enum_lits_more", "enum_lits -> enum_lits0 COMMA ID")
    p.rule("enum_lits0.LITS", "enum_lits1.LITS", "ID.value",
           fn=lambda ls, n: ls + (n,))
    p = g.production("enum_lits_more_c",
                     "enum_lits -> enum_lits0 COMMA CHAR")
    p.rule("enum_lits0.LITS", "enum_lits1.LITS", "CHAR.value",
           fn=lambda ls, c: ls + (c,))

    p = g.production("decl_int_type",
                     "decl -> kw_type ID kw_is kw_range xp SEMI")
    p.rule("decl.RES", "ID.value", "xp.LEF", "decl.ENV", "decl.CC",
           "kw_type.line",
           fn=lambda name, lef, env, cc, ln: D.integer_type_decl(
               name, cc.eval_range(lef, env, lef_line(lef, ln)),
               env, cc, ln))

    p = g.production(
        "decl_array_type",
        "decl -> kw_type ID kw_is kw_array LP inner RP kw_of sub_ind "
        "SEMI")
    p.rule("decl.RES", "ID.value", "inner.LEF", "sub_ind.SUB",
           "decl.ENV", "decl.CC", "kw_type.line", fn=_array_type)

    p = g.production(
        "decl_record_type",
        "decl -> kw_type ID kw_is kw_record rec_fields kw_end "
        "kw_record SEMI")
    p.rule("decl.RES", "ID.value", "rec_fields.FIELDS", "decl.ENV",
           "decl.CC", "kw_type.line", fn=D.record_type_decl)
    p = g.production("rec_fields_one",
                     "rec_fields -> idlist COLON sub_ind SEMI")
    p.rule("rec_fields.FIELDS", "idlist.IDS", "sub_ind.SUB",
           fn=lambda ids, sub: tuple((n, sub) for n in ids))
    p = g.production("rec_fields_more",
                     "rec_fields -> rec_fields0 idlist COLON sub_ind SEMI")
    p.rule("rec_fields0.FIELDS", "rec_fields1.FIELDS", "idlist.IDS",
           "sub_ind.SUB",
           fn=lambda fs, ids, sub: fs + tuple((n, sub) for n in ids))

    p = g.production("decl_subtype",
                     "decl -> kw_subtype ID kw_is sub_ind SEMI")
    p.rule("decl.RES", "ID.value", "sub_ind.SUB", "decl.ENV",
           "decl.CC", "kw_subtype.line", fn=D.subtype_decl)

    # aliases, attributes, components ----------------------------------------------
    p = g.production("decl_alias",
                     "decl -> kw_alias ID COLON sub_ind kw_is nsoup SEMI")
    p.rule("decl.RES", "ID.value", "sub_ind.SUB", "nsoup.LEF",
           "decl.ENV", "decl.CC", "kw_alias.line",
           fn=lambda name, sub, lef, env, cc, ln: D.alias_decl(
               name, sub, cc.eval_target(lef, env, ln), env, cc, ln))

    p = g.production("decl_attr",
                     "decl -> kw_attribute ID COLON mark SEMI")
    p.rule("decl.RES", "ID.value", "mark.PARTS", "decl.ENV", "decl.CC",
           "kw_attribute.line",
           fn=lambda name, parts, env, cc, ln: D.attribute_decl(
               name, D.resolve_mark(list(parts), env, cc, ln)[0],
               env, cc, ln))
    g.nonterminal("entity_class")
    for ecls in ("signal", "variable", "constant", "type", "entity",
                 "architecture", "component", "label", "function",
                 "procedure", "package"):
        g.production("eclass_%s" % ecls,
                     "entity_class -> kw_%s" % ecls)
    p = g.production(
        "decl_attr_spec",
        "decl -> kw_attribute ID kw_of ID COLON entity_class kw_is "
        "xp SEMI")
    p.rule("decl.RES", "ID0.value", "ID1.value", "xp.LEF", "decl.ENV",
           "decl.CC", "kw_attribute.line",
           fn=lambda attr, item, lef, env, cc, ln: D.attribute_spec(
               attr, item, cc.eval_expr(lef, env, ln), env, cc, ln))

    p = g.production(
        "decl_component",
        "decl -> kw_component ID gen_clause_opt port_clause_opt "
        "kw_end kw_component SEMI")
    p.rule("decl.RES", "ID.value", "gen_clause_opt.IFACE",
           "port_clause_opt.IFACE", "decl.ENV", "decl.CC",
           "kw_component0.line", fn=_component_decl)

    # subprograms -------------------------------------------------------------------
    p = g.production("designator_id", "designator -> ID")
    p.rule("designator.NAME", "ID.value", fn=lambda n: n)
    p = g.production("designator_op", "designator -> STRING")
    p.rule("designator.NAME", "STRING.value",
           fn=lambda s: '"%s"' % s.lower())

    p = g.production("params_none", "params_opt ->")
    p.const("params_opt.IFACE", ())
    p = g.production("params_some", "params_opt -> LP iface_list RP")
    p.rule("params_opt.IFACE", "iface_list.IFACE", fn=tuple)

    p = g.production(
        "decl_func_decl",
        "decl -> kw_function designator params_opt kw_return mark SEMI")
    p.rule("decl.RES", "designator.NAME", "params_opt.IFACE",
           "mark.PARTS", "decl.ENV", "decl.CC", "kw_function.line",
           "decl.SCOPE",
           fn=lambda name, iface, parts, env, cc, ln, sc: _subprog_decl(
               "function", name, iface, parts, env, cc, ln, sc))
    p = g.production(
        "decl_proc_decl",
        "decl -> kw_procedure designator params_opt SEMI")
    p.rule("decl.RES", "designator.NAME", "params_opt.IFACE",
           "decl.ENV", "decl.CC", "kw_procedure.line", "decl.SCOPE",
           fn=lambda name, iface, env, cc, ln, sc: _subprog_decl(
               "procedure", name, iface, None, env, cc, ln, sc))

    p = g.production(
        "decl_func_body",
        "decl -> kw_function designator params_opt kw_return mark "
        "kw_is decls kw_begin stmts kw_end id_opt SEMI")
    p.rule("decls.ENV", "decl.ENV", "designator.NAME",
           "params_opt.IFACE", "mark.PARTS", "decl.CC",
           "kw_function.line", "decl.SCOPE",
           fn=_subprog_inner_env("function"))
    p.rule("decls.LEVEL", "decl.LEVEL", fn=lambda lv: lv + 1)
    p.rule("stmts.ENV", "decls.RES", fn=lambda res: res.env)
    p.rule("stmts.LEVEL", "decl.LEVEL", fn=lambda lv: lv + 1)
    p.rule("stmts.RESULT", "mark.PARTS", "decl.ENV", "decl.CC",
           "kw_function.line", fn=_result_type)
    p.rule("decls.RESULT", "decl.RESULT", fn=lambda r: r)
    p.rule("decl.RES", "designator.NAME", "params_opt.IFACE",
           "mark.PARTS", "decls.RES", "stmts.SRES", "decl.ENV",
           "decl.CC", "kw_function.line", "decl.SCOPE",
           fn=_subprog_body("function"))
    p = g.production(
        "decl_proc_body",
        "decl -> kw_procedure designator params_opt kw_is decls "
        "kw_begin stmts kw_end id_opt SEMI")
    p.rule("decls.ENV", "decl.ENV", "designator.NAME",
           "params_opt.IFACE", "decl.CC", "kw_procedure.line",
           "decl.SCOPE", fn=_subprog_inner_env_proc)
    p.rule("decls.LEVEL", "decl.LEVEL", fn=lambda lv: lv + 1)
    p.rule("stmts.ENV", "decls.RES", fn=lambda res: res.env)
    p.rule("stmts.LEVEL", "decl.LEVEL", fn=lambda lv: lv + 1)
    p.rule("stmts.RESULT", fn=lambda: None)
    p.rule("decls.RESULT", "decl.RESULT", fn=lambda r: r)
    p.rule("decl.RES", "designator.NAME", "params_opt.IFACE",
           "decls.RES", "stmts.SRES", "decl.ENV", "decl.CC",
           "kw_procedure.line", "decl.SCOPE",
           fn=lambda name, iface, inner, body, env, cc, ln, sc:
           _subprog_body("procedure")(
               name, iface, None, inner, body, env, cc, ln, sc))

    # use clauses and configuration specifications -------------------------------------
    p = g.production("decl_use", "decl -> kw_use sel_names SEMI")
    p.rule("decl.RES", "sel_names.PATHS", "decl.ENV", "decl.CC",
           "kw_use.line",
           fn=lambda paths, env, cc, ln: D.use_clause(
               [list(p_) for p_ in paths], env, cc, ln))
    p = g.production("sel_names_one", "sel_names -> sel_name")
    p.rule("sel_names.PATHS", "sel_name.PARTS", fn=lambda p_: (p_,))
    p = g.production("sel_names_more",
                     "sel_names -> sel_names0 COMMA sel_name")
    p.rule("sel_names0.PATHS", "sel_names1.PATHS", "sel_name.PARTS",
           fn=lambda ps, p_: ps + (p_,))
    p = g.production("sel_name_id", "sel_name -> ID")
    p.rule("sel_name.PARTS", "ID.value", fn=lambda n: (n,))
    p = g.production("sel_name_sel", "sel_name -> sel_name0 DOT ID")
    p.rule("sel_name0.PARTS", "sel_name1.PARTS", "ID.value",
           fn=lambda ps, n: ps + (n,))
    p = g.production("sel_name_all", "sel_name -> sel_name0 DOT kw_all")
    p.rule("sel_name0.PARTS", "sel_name1.PARTS",
           fn=lambda ps: ps + ("all",))

    p = g.production(
        "decl_config_spec",
        "decl -> kw_for inst_spec COLON ID kw_use kw_entity sel_name "
        "arch_ind_opt SEMI")
    p.rule("decl.RES", "inst_spec.SPEC", "ID.value", "sel_name.PARTS",
           "arch_ind_opt.NAME", "decl.ENV", "decl.CC", "kw_for.line",
           fn=_config_spec_decl)
    p = g.production("inst_spec_ids", "inst_spec -> idlist")
    p.rule("inst_spec.SPEC", "idlist.IDS", fn=list)
    p = g.production("inst_spec_all", "inst_spec -> kw_all")
    p.const("inst_spec.SPEC", ["all"])
    p = g.production("inst_spec_others", "inst_spec -> kw_others")
    p.const("inst_spec.SPEC", ["others"])
    p = g.production("arch_ind_none", "arch_ind_opt ->")
    p.const("arch_ind_opt.NAME", "")
    p = g.production("arch_ind_some", "arch_ind_opt -> LP ID RP")
    p.rule("arch_ind_opt.NAME", "ID.value", fn=lambda n: n)

    # interface lists -------------------------------------------------------------------
    p = g.production("iface_list_one", "iface_list -> iface")
    p.rule("iface_list.IFACE", "iface.IFACE", fn=tuple)
    p = g.production("iface_list_more",
                     "iface_list -> iface_list0 SEMI iface")
    p.rule("iface_list0.IFACE", "iface_list1.IFACE", "iface.IFACE",
           fn=lambda a, b: a + tuple(b))
    p = g.production(
        "iface_decl",
        "iface -> iface_class idlist COLON mode_opt sub_ind init_opt")
    p.rule("iface.IFACE", "iface_class.KW", "idlist.IDS", "mode_opt.KW",
           "sub_ind.SUB", "init_opt.OPT", "iface.ENV", "iface.CC",
           "COLON.line", fn=_iface)
    p = g.production("iface_class_none", "iface_class ->")
    p.const("iface_class.KW", "")
    p = g.production("iface_class_signal", "iface_class -> kw_signal")
    p.const("iface_class.KW", "signal")
    p = g.production("iface_class_constant",
                     "iface_class -> kw_constant")
    p.const("iface_class.KW", "constant")
    p = g.production("iface_class_variable",
                     "iface_class -> kw_variable")
    p.const("iface_class.KW", "variable")
    p = g.production("mode_none", "mode_opt ->")
    p.const("mode_opt.KW", "")
    for m in ("in", "out", "inout", "buffer"):
        p = g.production("mode_%s" % m, "mode_opt -> kw_%s" % m)
        p.const("mode_opt.KW", "in" if m == "buffer" else m)


def _sub_ind(parts, res_parts, constr, env, cc, line=0):
    entries, msgs = D.resolve_mark(list(parts), env, cc, line)
    res_entries = []
    if res_parts is not None:
        res_entries, rmsgs = D.resolve_mark(
            list(res_parts), env, cc, line)
        msgs.extend(rmsgs)
    sub = D.subtype_indication(entries, res_entries, constr, env, cc,
                               line)
    sub.msgs = msgs + sub.msgs
    return sub


def _object_decl(cls, ids, sub, init_lef, env, cc, line,
                 signal_kind="", scope=""):
    init_goal = None
    if init_lef is not None:
        init_goal = cc.eval_expr(init_lef, env, lef_line(init_lef, line),
                                 expected=sub.vtype)
    return D.object_decl(cls, list(ids), sub, init_goal, env, cc, line,
                         py_scope=scope, signal_kind=signal_kind)


def _array_type(name, inner_lef, elem_sub, env, cc, line):
    toks = list(inner_lef)
    if any(t.kind == "BOX" for t in toks):
        # array (T range <>) of ...: an unconstrained array type.
        index_entries = []
        if toks and toks[0].kind == "TYPEMARK":
            index_entries = [toks[0].value]
        return D.array_type_decl(name, None, index_entries, elem_sub,
                                 env, cc, line)
    goal = cc.eval_range(inner_lef, env, lef_line(inner_lef, line))
    return D.array_type_decl(name, goal, None, elem_sub, env, cc, line)


def _component_decl(name, generics_iface, ports_iface, env, cc, line):
    generics, gmsgs, _ = _interface_entries(
        generics_iface, "generic", cc, line)
    ports, pmsgs, _ = _interface_entries(ports_iface, "port", cc, line)
    res = D.component_decl(name, generics, ports, env, cc, line)
    res.msgs = gmsgs + pmsgs + res.msgs
    return res


def _interface_entries(iface_rows, obj_class, cc, line):
    """Turn iface rows into ObjectEntries; also default-init codes."""
    entries = []
    msgs = []
    inits = {}
    for row in iface_rows:
        for name in row["names"]:
            entry, emsgs, sub = U.interface_object(
                name, obj_class, row["mode"], row["sub"],
                row["init_goal"], cc, row["line"])
            entries.append(entry)
            msgs.extend(emsgs)
            if row["init_goal"] is not None and \
                    row["init_goal"].get("code"):
                inits[name] = row["init_goal"]["code"]
            else:
                inits[name] = row["sub"].init_code
    return entries, msgs, inits


def _iface(class_kw, ids, mode, sub, init_lef, env, cc, line=0):
    init_goal = None
    if init_lef is not None:
        init_goal = cc.eval_expr(init_lef, env,
                                 lef_line(init_lef, line),
                                 expected=sub.vtype)
    return [{
        "names": list(ids), "class": class_kw, "mode": mode,
        "sub": sub, "init_goal": init_goal, "line": line,
    }]


def _params_from_iface(iface_rows, cc, line):
    params = []
    msgs = []
    for row in iface_rows:
        for name in row["names"]:
            param, pmsgs = D.make_param(
                name, row["class"], row["mode"], row["sub"],
                row["init_goal"], line)
            params.append(param)
            msgs.extend(pmsgs)
    return params, msgs


def _deterministic_entry(sub_kind, name, iface_rows, result_parts, env,
                         cc, line, scope=""):
    """Subprogram entry with deterministic py naming so independent
    semantic rules can re-derive it identically."""
    params, msgs = _params_from_iface(iface_rows, cc, line)
    result = None
    if result_parts is not None:
        entries, rmsgs = D.resolve_mark(list(result_parts), env, cc,
                                        line)
        msgs.extend(rmsgs)
        from .symtab import entry_kind
        for e in entries:
            if entry_kind(e) == "type":
                result = e
                break
    # Reuse a spec entry (package spec + body pairing).
    from .symtab import entry_kind
    from . import vtypes
    for cand in env.lookup(name).entries:
        if entry_kind(cand) == "subprogram" \
                and cand.sub_kind == sub_kind \
                and len(cand.params) == len(params) \
                and all(vtypes.same_base(a.vtype, b.vtype)
                        for a, b in zip(cand.params, params)):
            return cand, params, result, msgs, True
    from ..vif.nodes import SubprogramEntry
    safe = D._py_safe(name.strip('"'))
    py = "%sf_%s_l%d" % (scope, safe, line)
    entry = SubprogramEntry(
        name=name, sub_kind=sub_kind, params=params, result=result,
        py=py, predefined_op="", pure=True, line=line)
    return entry, params, result, msgs, False


def _subprog_decl(sub_kind, name, iface_rows, result_parts, env, cc,
                  line, scope=""):
    entry, params, result, msgs, reused = _deterministic_entry(
        sub_kind, name, iface_rows, result_parts, env, cc, line, scope)
    if reused:
        return DeclResult(env, [], [], msgs)
    return DeclResult(env.bind(name, entry, overloadable=True), [],
                      [entry], msgs)


def _result_type(parts, env, cc, line):
    entries, _msgs = D.resolve_mark(list(parts), env, cc, line)
    from .symtab import entry_kind
    for e in entries:
        if entry_kind(e) == "type":
            return e
    return None


def _subprog_inner_env(sub_kind):
    def rule(env, name, iface_rows, result_parts, cc, line, scope=""):
        entry, params, result, msgs, reused = _deterministic_entry(
            sub_kind, name, iface_rows, result_parts, env, cc, line,
            scope)
        inner = env if reused else env.bind(name, entry,
                                            overloadable=True)
        return D.subprogram_body_env(entry, inner, line)

    return rule


def _subprog_inner_env_proc(env, name, iface_rows, cc, line, scope=""):
    return _subprog_inner_env("procedure")(env, name, iface_rows, None,
                                           cc, line, scope)


def _subprog_body(sub_kind):
    def rule(name, iface_rows, result_parts, inner_decls, body_sres,
             env, cc, line, scope=""):
        entry, params, result, msgs, reused = _deterministic_entry(
            sub_kind, name, iface_rows, result_parts, env, cc, line,
            scope)
        msgs = msgs + list(inner_decls.msgs) + list(body_sres.msgs)
        local_names = {e.py for e in inner_decls.entries
                       if hasattr(e, "py")}
        code = D.subprogram_code(
            entry, inner_decls.code + body_sres.code, local_names,
            body_sres.writes, line)
        if body_sres.haswait:
            msgs.append("line %d: wait statements are not allowed in "
                        "subprograms" % line)
        new_env = env if reused else env.bind(name, entry,
                                              overloadable=True)
        return DeclResult(new_env, code, [] if reused else [entry],
                          msgs)

    return rule


def _config_spec_decl(spec, comp_name, ent_parts, arch_name, env, cc,
                      line):
    parts = list(ent_parts)
    if len(parts) == 1:
        lib, ent = cc.work, parts[0]
    else:
        lib, ent = parts[0], parts[1]
    # Configuration specifications ride out of the declarative part in
    # a dedicated field consumed by arch assembly.
    return DeclResult(
        env, configs=[(list(spec), comp_name, lib, ent, arch_name)])


# ---------------------------------------------------------------------------
# sequential statements
# ---------------------------------------------------------------------------


def _stmt_productions(g):
    g.production("stmts_empty", "stmts ->")
    g.production("stmts_more", "stmts -> stmts0 stmt")

    # assignments and calls -----------------------------------------------------
    p = g.production("stmt_sig_assign",
                     "stmt -> nsoup LE wave_opts SEMI")
    p.rule("stmt.SRES", "nsoup.LEF", "wave_opts.WAVET", "stmt.ENV",
           "stmt.CC", "LE.line",
           fn=lambda tgt, wavet, env, cc, ln: S.signal_assign(
               tgt, wavet[1], wavet[0], env, cc,
               lef_line(tgt, ln)))
    p = g.production("stmt_var_assign",
                     "stmt -> nsoup COLONEQ xp SEMI")
    p.rule("stmt.SRES", "nsoup.LEF", "xp.LEF", "stmt.ENV", "stmt.CC",
           "COLONEQ.line",
           fn=lambda tgt, rhs, env, cc, ln: S.variable_assign(
               tgt, rhs, env, cc, lef_line(tgt, ln)))
    p = g.production("stmt_call", "stmt -> nsoup SEMI")
    p.rule("stmt.SRES", "nsoup.LEF", "stmt.ENV", "stmt.CC", "SEMI.line",
           fn=lambda call, env, cc, ln: S.procedure_call(
               call, env, cc, lef_line(call, ln)))

    # waveforms -------------------------------------------------------------------
    p = g.production("wave_opts_plain", "wave_opts -> wave")
    p.rule("wave_opts.WAVET", "wave.WAVE",
           fn=lambda w: (False, list(w)))
    p = g.production("wave_opts_transport",
                     "wave_opts -> kw_transport wave")
    p.rule("wave_opts.WAVET", "wave.WAVE",
           fn=lambda w: (True, list(w)))
    p = g.production("wave_one", "wave -> wave_elem")
    p.rule("wave.WAVE", "wave_elem.WELEM", fn=lambda e: (e,))
    p = g.production("wave_more", "wave -> wave0 COMMA wave_elem")
    p.rule("wave0.WAVE", "wave1.WAVE", "wave_elem.WELEM",
           fn=lambda ws, e: ws + (e,))
    p = g.production("wave_elem_v", "wave_elem -> xp")
    p.rule("wave_elem.WELEM", "xp.LEF", fn=lambda v: (tuple(v), None))
    p = g.production("wave_elem_after", "wave_elem -> xp0 kw_after xp1")
    p.rule("wave_elem.WELEM", "xp0.LEF", "xp1.LEF",
           fn=lambda v, t: (tuple(v), tuple(t)))

    # if --------------------------------------------------------------------------
    p = g.production(
        "stmt_if",
        "stmt -> kw_if xp kw_then stmts elsifs else_opt kw_end kw_if "
        "SEMI")
    p.rule("stmt.SRES", "xp.LEF", "stmts.SRES", "elsifs.ARMS",
           "else_opt.BODY", "stmt.ENV", "stmt.CC", "kw_if0.line",
           fn=lambda cond, body, arms, els, env, cc, ln: S.if_stmt(
               [(cond, body)] + list(arms), els, env, cc, ln))
    p = g.production("elsifs_none", "elsifs ->")
    p.const("elsifs.ARMS", ())
    p = g.production("elsifs_more",
                     "elsifs -> elsifs0 kw_elsif xp kw_then stmts")
    p.rule("elsifs0.ARMS", "elsifs1.ARMS", "xp.LEF", "stmts.SRES",
           fn=lambda arms, cond, body: arms + ((cond, body),))
    p = g.production("else_none", "else_opt ->")
    p.const("else_opt.BODY", None)
    p = g.production("else_some", "else_opt -> kw_else stmts")
    p.rule("else_opt.BODY", "stmts.SRES", fn=lambda b: b)

    # case ---------------------------------------------------------------------------
    p = g.production(
        "stmt_case",
        "stmt -> kw_case xp kw_is case_alts kw_end kw_case SEMI")
    p.rule("stmt.SRES", "xp.LEF", "case_alts.ALTS", "stmt.ENV",
           "stmt.CC", "kw_case0.line",
           fn=lambda sel, alts, env, cc, ln: S.case_stmt(
               sel, list(alts), env, cc, ln))
    p = g.production("case_alts_one", "case_alts -> case_alt")
    p.rule("case_alts.ALTS", "case_alt.ALT", fn=lambda a: (a,))
    p = g.production("case_alts_more", "case_alts -> case_alts0 case_alt")
    p.rule("case_alts0.ALTS", "case_alts1.ALTS", "case_alt.ALT",
           fn=lambda alts, a: alts + (a,))
    p = g.production("case_alt",
                     "case_alt -> kw_when choices ARROW stmts")
    p.rule("case_alt.ALT", "choices.CHS", "stmts.SRES",
           fn=lambda chs, body: (list(chs), body))
    p = g.production("choices_one", "choices -> choice")
    p.rule("choices.CHS", "choice.CH", fn=lambda c: (c,))
    p = g.production("choices_more", "choices -> choices0 BAR choice")
    p.rule("choices0.CHS", "choices1.CHS", "choice.CH",
           fn=lambda cs, c: cs + (c,))
    p = g.production("choice_xp", "choice -> xp")
    p.rule("choice.CH", "xp.LEF", fn=tuple)
    p = g.production("choice_others", "choice -> kw_others")
    p.rule("choice.CH", "kw_others.line",
           fn=lambda ln: (L.lef("OTHERS", "others", "others", ln),))

    # loops ------------------------------------------------------------------------------
    p = g.production(
        "stmt_for",
        "stmt -> kw_for ID kw_in xp kw_loop stmts kw_end kw_loop SEMI")
    p.rule("stmts.ENV", "stmt.ENV", "ID.value", "xp.LEF", "stmt.CC",
           "kw_for.line",
           fn=lambda env, name, rng, cc, ln: S.loop_env(
               name, rng, env, cc, ln))
    p.rule("stmt.SRES", "ID.value", "xp.LEF", "stmts.SRES", "stmt.ENV",
           "stmt.CC", "kw_for.line",
           fn=lambda name, rng, body, env, cc, ln: S.for_loop(
               name, rng, body, env, cc, ln))
    p = g.production(
        "stmt_while",
        "stmt -> kw_while xp kw_loop stmts kw_end kw_loop SEMI")
    p.rule("stmt.SRES", "xp.LEF", "stmts.SRES", "stmt.ENV", "stmt.CC",
           "kw_while.line",
           fn=lambda cond, body, env, cc, ln: S.while_loop(
               cond, body, env, cc, ln))
    p = g.production("stmt_loop",
                     "stmt -> kw_loop stmts kw_end kw_loop SEMI")
    p.rule("stmt.SRES", "stmts.SRES", "stmt.ENV", "stmt.CC",
           "kw_loop0.line",
           fn=lambda body, env, cc, ln: S.while_loop(
               None, body, env, cc, ln))

    p = g.production("stmt_next", "stmt -> kw_next when_opt SEMI")
    p.rule("stmt.SRES", "when_opt.COND", "stmt.ENV", "stmt.CC",
           "kw_next.line",
           fn=lambda cond, env, cc, ln: S.next_or_exit(
               "next", cond, env, cc, ln))
    p = g.production("stmt_exit", "stmt -> kw_exit when_opt SEMI")
    p.rule("stmt.SRES", "when_opt.COND", "stmt.ENV", "stmt.CC",
           "kw_exit.line",
           fn=lambda cond, env, cc, ln: S.next_or_exit(
               "exit", cond, env, cc, ln))
    p = g.production("when_none", "when_opt ->")
    p.const("when_opt.COND", None)
    p = g.production("when_some", "when_opt -> kw_when xp")
    p.rule("when_opt.COND", "xp.LEF", fn=tuple)

    # wait ---------------------------------------------------------------------------------
    p = g.production(
        "stmt_wait",
        "stmt -> kw_wait wait_on_opt wait_until_opt wait_for_opt SEMI")
    p.rule("stmt.SRES", "wait_on_opt.NAMES", "wait_until_opt.OPT",
           "wait_for_opt.OPT", "stmt.ENV", "stmt.CC", "kw_wait.line",
           fn=lambda on, until, for_, env, cc, ln: S.wait_stmt(
               list(on), until, for_, env, cc, ln))
    p = g.production("wait_on_none", "wait_on_opt ->")
    p.const("wait_on_opt.NAMES", ())
    p = g.production("wait_on_some", "wait_on_opt -> kw_on name_list")
    p.rule("wait_on_opt.NAMES", "name_list.NAMES", fn=tuple)
    p = g.production("wait_until_none", "wait_until_opt ->")
    p.const("wait_until_opt.OPT", None)
    p = g.production("wait_until_some", "wait_until_opt -> kw_until xp")
    p.rule("wait_until_opt.OPT", "xp.LEF", fn=tuple)
    p = g.production("wait_for_none", "wait_for_opt ->")
    p.const("wait_for_opt.OPT", None)
    p = g.production("wait_for_some", "wait_for_opt -> kw_for xp")
    p.rule("wait_for_opt.OPT", "xp.LEF", fn=tuple)
    p = g.production("name_list_one", "name_list -> nsoup")
    p.rule("name_list.NAMES", "nsoup.LEF", fn=lambda n: (tuple(n),))
    p = g.production("name_list_more",
                     "name_list -> name_list0 COMMA nsoup")
    p.rule("name_list0.NAMES", "name_list1.NAMES", "nsoup.LEF",
           fn=lambda ns, n: ns + (tuple(n),))

    # assert / return / null ---------------------------------------------------------------
    p = g.production(
        "stmt_assert",
        "stmt -> kw_assert xp report_opt severity_opt SEMI")
    p.rule("stmt.SRES", "xp.LEF", "report_opt.OPT", "severity_opt.OPT",
           "stmt.ENV", "stmt.CC", "kw_assert.line",
           fn=lambda cond, rep, sev, env, cc, ln: S.assert_stmt(
               cond, rep, sev, env, cc, ln))
    p = g.production("report_none", "report_opt ->")
    p.const("report_opt.OPT", None)
    p = g.production("report_some", "report_opt -> kw_report xp")
    p.rule("report_opt.OPT", "xp.LEF", fn=tuple)
    p = g.production("severity_none", "severity_opt ->")
    p.const("severity_opt.OPT", None)
    p = g.production("severity_some", "severity_opt -> kw_severity xp")
    p.rule("severity_opt.OPT", "xp.LEF", fn=tuple)

    p = g.production("stmt_return", "stmt -> kw_return xp_opt SEMI")
    p.rule("stmt.SRES", "xp_opt.OPT", "stmt.RESULT", "stmt.ENV",
           "stmt.CC", "kw_return.line",
           fn=lambda value, result, env, cc, ln: S.return_stmt(
               value, result, env, cc, ln))
    p = g.production("stmt_null", "stmt -> kw_null SEMI")
    p.rule("stmt.SRES", fn=S.null_stmt)


# ---------------------------------------------------------------------------
# concurrent statements
# ---------------------------------------------------------------------------


def _cstmt_productions(g):
    g.production("cstmts_empty", "cstmts ->")
    g.production("cstmts_more", "cstmts -> cstmts0 cstmt")

    p = g.production("cstmt_labeled", "cstmt -> ID COLON cstmt_body")
    p.rule("cstmt_body.LABEL", "ID.value", fn=lambda n: n)
    p = g.production("cstmt_unlabeled", "cstmt -> cstmt_body")
    p.rule("cstmt_body.LABEL", fn=lambda: "")

    # process --------------------------------------------------------------------------
    p = g.production(
        "cstmt_process",
        "cstmt_body -> kw_process sens_opt decls kw_begin stmts "
        "kw_end kw_process id_opt SEMI")
    p.rule("decls.ENV", "cstmt_body.ENV", fn=lambda env: env.enter_scope())
    p.rule("decls.RESULT", fn=lambda: None)
    p.rule("decls.SCOPE", fn=lambda: "")
    p.rule("stmts.ENV", "decls.RES", fn=lambda res: res.env)
    p.rule("stmts.RESULT", fn=lambda: None)
    p.rule("cstmt_body.CS", "cstmt_body.LABEL", "sens_opt.NAMES",
           "decls.RES", "stmts.SRES", "cstmt_body.ENV",
           "cstmt_body.CC", "kw_process0.line",
           fn=lambda label, sens, decls, body, env, cc, ln:
           U.process_stmt(label or "proc_l%d" % ln, sens, decls, body,
                          decls.env, cc, ln))
    p = g.production("sens_none", "sens_opt ->")
    p.const("sens_opt.NAMES", None)
    p = g.production("sens_some", "sens_opt -> LP name_list RP")
    p.rule("sens_opt.NAMES", "name_list.NAMES", fn=list)

    # concurrent signal assignments -----------------------------------------------------
    p = g.production("cstmt_assign",
                     "cstmt_body -> nsoup LE cond_waves SEMI")
    p.rule("cstmt_body.CS", "cstmt_body.LABEL", "nsoup.LEF",
           "cond_waves.ARMS", "cstmt_body.ENV", "cstmt_body.CC",
           "LE.line",
           fn=lambda label, tgt, arms, env, cc, ln: U.concurrent_assign(
               label or "cassign_l%d" % ln,
               [(tgt, wavet[1], cond, wavet[0])
                for wavet, cond in arms],
               env, cc, lef_line(tgt, ln)))
    p = g.production("cstmt_assign_guarded",
                     "cstmt_body -> nsoup LE kw_guarded cond_waves SEMI")
    p.rule("cstmt_body.CS", "cstmt_body.LABEL", "nsoup.LEF",
           "cond_waves.ARMS", "cstmt_body.ENV", "cstmt_body.CC",
           "LE.line",
           fn=lambda label, tgt, arms, env, cc, ln: U.concurrent_assign(
               label or "cassign_l%d" % ln,
               [(tgt, wavet[1], cond, wavet[0])
                for wavet, cond in arms],
               env, cc, lef_line(tgt, ln), guarded=True,
               guard_py=_guard_py(env)))
    p = g.production("cond_waves_one", "cond_waves -> wave_opts")
    p.rule("cond_waves.ARMS", "wave_opts.WAVET",
           fn=lambda w: ((w, None),))
    p = g.production(
        "cond_waves_more",
        "cond_waves -> wave_opts kw_when xp kw_else cond_waves0")
    p.rule("cond_waves0.ARMS", "wave_opts.WAVET", "xp.LEF",
           "cond_waves1.ARMS",
           fn=lambda w, cond, rest: ((w, tuple(cond)),) + rest)

    p = g.production(
        "cstmt_selected",
        "cstmt_body -> kw_with xp kw_select nsoup LE sel_waves SEMI")
    p.rule("cstmt_body.CS", "cstmt_body.LABEL", "xp.LEF", "nsoup.LEF",
           "sel_waves.ARMS", "cstmt_body.ENV", "cstmt_body.CC",
           "kw_with.line",
           fn=lambda label, sel, tgt, arms, env, cc, ln:
           U.selected_assign(label or "sassign_l%d" % ln, sel, tgt,
                             [(w[1], chs) for w, chs in arms],
                             env, cc, ln))
    p = g.production("sel_waves_one",
                     "sel_waves -> wave_opts kw_when choices")
    p.rule("sel_waves.ARMS", "wave_opts.WAVET", "choices.CHS",
           fn=lambda w, chs: ((w, list(chs)),))
    p = g.production(
        "sel_waves_more",
        "sel_waves -> sel_waves0 COMMA wave_opts kw_when choices")
    p.rule("sel_waves0.ARMS", "sel_waves1.ARMS", "wave_opts.WAVET",
           "choices.CHS",
           fn=lambda arms, w, chs: arms + ((w, list(chs)),))

    # concurrent assertion ---------------------------------------------------------------
    p = g.production(
        "cstmt_assert",
        "cstmt_body -> kw_assert xp report_opt severity_opt SEMI")
    p.rule("cstmt_body.CS", "cstmt_body.LABEL", "xp.LEF",
           "report_opt.OPT", "severity_opt.OPT", "cstmt_body.ENV",
           "cstmt_body.CC", "kw_assert.line",
           fn=lambda label, cond, rep, sev, env, cc, ln:
           U.concurrent_assert(label or "cassert_l%d" % ln, cond, rep,
                               sev, env, cc, ln))

    # instantiation ------------------------------------------------------------------------
    p = g.production("cstmt_instance",
                     "cstmt_body -> ID gmap_opt pmap_opt SEMI")
    p.rule("cstmt_body.CS", "cstmt_body.LABEL", "ID.value",
           "gmap_opt.ASSOCS", "pmap_opt.ASSOCS", "cstmt_body.ENV",
           "cstmt_body.CC", "ID.line",
           fn=lambda label, comp, gmap, pmap, env, cc, ln:
           U.instantiation(label or "u_l%d" % ln, comp, list(gmap),
                           list(pmap), env, cc, ln))
    p = g.production("gmap_none", "gmap_opt ->")
    p.const("gmap_opt.ASSOCS", ())
    p = g.production("gmap_some",
                     "gmap_opt -> kw_generic kw_map LP assoc_list RP")
    p.rule("gmap_opt.ASSOCS", "assoc_list.ASSOCS", fn=tuple)
    p = g.production("pmap_none", "pmap_opt ->")
    p.const("pmap_opt.ASSOCS", ())
    p = g.production("pmap_some",
                     "pmap_opt -> kw_port kw_map LP assoc_list RP")
    p.rule("pmap_opt.ASSOCS", "assoc_list.ASSOCS", fn=tuple)
    p = g.production("assoc_list_one", "assoc_list -> assoc")
    p.rule("assoc_list.ASSOCS", "assoc.ASSOC", fn=lambda a: (a,))
    p = g.production("assoc_list_more",
                     "assoc_list -> assoc_list0 COMMA assoc")
    p.rule("assoc_list0.ASSOCS", "assoc_list1.ASSOCS", "assoc.ASSOC",
           fn=lambda al, a: al + (a,))
    p = g.production("assoc_pos", "assoc -> xp")
    p.rule("assoc.ASSOC", "xp.LEF", fn=lambda a: (None, tuple(a)))
    p = g.production("assoc_named", "assoc -> ID ARROW xp")
    p.rule("assoc.ASSOC", "ID.value", "xp.LEF",
           fn=lambda f, a: (f, tuple(a)))
    p = g.production("assoc_open", "assoc -> ID ARROW kw_open")
    p.rule("assoc.ASSOC", "ID.value", fn=lambda f: (f, None))

    # block ---------------------------------------------------------------------------------
    p = g.production(
        "cstmt_block",
        "cstmt_body -> kw_block decls kw_begin cstmts kw_end kw_block "
        "id_opt SEMI")
    p.rule("decls.ENV", "cstmt_body.ENV",
           fn=lambda env: env.enter_scope())
    p.rule("decls.RESULT", fn=lambda: None)
    p.rule("decls.SCOPE", fn=lambda: "")
    p.rule("cstmts.ENV", "decls.RES", fn=lambda res: res.env)
    p.rule("cstmt_body.CS", "cstmt_body.LABEL", "decls.RES",
           "cstmts.CS", "cstmt_body.ENV", "cstmt_body.CC",
           "kw_block0.line",
           fn=lambda label, decls, inner, env, cc, ln: U.block_stmt(
               label or "blk_l%d" % ln, None, decls, inner, decls.env,
               cc, ln))
    p = g.production(
        "cstmt_block_guarded",
        "cstmt_body -> kw_block LP xp RP decls kw_begin cstmts kw_end "
        "kw_block id_opt SEMI")
    p.rule("decls.ENV", "cstmt_body.ENV", "cstmt_body.LABEL",
           "kw_block0.line",
           fn=lambda env, label, ln: _guard_env(
               env, label or "blk_l%d" % ln))
    p.rule("decls.RESULT", fn=lambda: None)
    p.rule("decls.SCOPE", fn=lambda: "")
    p.rule("cstmts.ENV", "decls.RES", fn=lambda res: res.env)
    p.rule("cstmt_body.CS", "cstmt_body.LABEL", "xp.LEF", "decls.RES",
           "cstmts.CS", "cstmt_body.ENV", "cstmt_body.CC",
           "kw_block0.line",
           fn=lambda label, guard, decls, inner, env, cc, ln:
           U.block_stmt(label or "blk_l%d" % ln, tuple(guard), decls,
                        inner, decls.env, cc, ln))


def _guard_env(env, label):
    """Bind the implicit GUARD signal of a guarded block (§1's
    'implicit guard signals and guarded statements')."""
    from ..vif.nodes import ObjectEntry
    from .stdpkg import standard as _std

    guard = ObjectEntry(name="guard", obj_class="signal",
                        vtype=_std().boolean,
                        py="s_guard_%s" % label)
    return env.enter_scope().bind("guard", guard)


def _guard_py(env):
    result = env.lookup("guard")
    for e in result.entries:
        if getattr(e, "is_signal", False):
            return e.py
    return None


# ---------------------------------------------------------------------------
# design units and context clauses
# ---------------------------------------------------------------------------


def _design_env(cc):
    """The implicit context of every unit: STANDARD directly visible,
    the STD and WORK libraries declared, and WORK.ALL used (footnote 4
    of the paper)."""
    env = standard().environment().enter_scope()
    env = env.bind("std", D.LibraryName("std"))
    env = env.bind("work", D.LibraryName(cc.work))
    if cc.library is not None:
        for key, node in cc.library.units_of(cc.work):
            name = getattr(node, "name", None)
            if name and "(" not in key and not key.startswith("body("):
                env = env.bind(name, node, via_use=True)
    return env.enter_scope()


def _arch_env(env, entity):
    """Inside an architecture: the entity's interface is visible."""
    inner = env.enter_scope()
    for g in entity.generics:
        inner = inner.bind(g.name, g)
    for p in entity.ports:
        inner = inner.bind(p.name, p)
    return inner


def _unit_productions(g):
    p = g.production("file_units", "design_file -> design_units")
    p.copy("design_file.UNITS", "design_units.UNITS")
    p = g.production("dunits_one", "design_units -> design_unit")
    p.rule("design_unit.ENV", "design_units.CC",
           fn=lambda cc: _design_env(cc))
    p.rule("design_units.UNITS", "design_unit.UNIT",
           fn=lambda u: (u,) if u is not None else ())
    p = g.production("dunits_more",
                     "design_units -> design_units0 design_unit")
    p.rule("design_unit.ENV", "design_units1.UNITS", "design_units0.CC",
           fn=lambda _prior, cc: _design_env(cc))
    p.rule("design_units0.UNITS", "design_units1.UNITS",
           "design_unit.UNIT",
           fn=lambda us, u: us + ((u,) if u is not None else ()))

    p = g.production("design_unit",
                     "design_unit -> context_items library_unit")
    p.rule("library_unit.ENV", "context_items.RES",
           fn=lambda res: res.env)
    p.rule("design_unit.UNIT", "library_unit.UNIT",
           "context_items.CLAUSES", "design_unit.CC",
           fn=_register_unit)

    p = g.production("ctx_items_none", "context_items ->")
    p.rule("context_items.RES", "context_items.ENV",
           fn=lambda env: DeclResult(env))
    p.const("context_items.CLAUSES", ())
    p = g.production("ctx_items_more",
                     "context_items -> context_items0 context_item")
    p.rule("context_item.ENV", "context_items1.RES",
           fn=lambda res: res.env)
    p.rule("context_items0.RES", "context_items1.RES",
           "context_item.RES", fn=_merge_decl)
    p.rule("context_items0.CLAUSES", "context_items1.CLAUSES",
           "context_item.CLAUSE", fn=lambda cs, c: cs + (c,))
    p = g.production("ctx_library",
                     "context_item -> kw_library idlist SEMI")
    p.rule("context_item.RES", "idlist.IDS", "context_item.ENV",
           "context_item.CC", "kw_library.line",
           fn=lambda ids, env, cc, ln: D.library_clause(
               list(ids), env, cc, ln))
    p.rule("context_item.CLAUSE", "idlist.IDS",
           fn=lambda ids: ("library", [list(ids)]))
    p.rule("context_item.MSGS", "context_item.RES",
           fn=lambda res: tuple(res.msgs))
    p = g.production("ctx_use", "context_item -> kw_use sel_names SEMI")
    p.rule("context_item.RES", "sel_names.PATHS", "context_item.ENV",
           "context_item.CC", "kw_use.line",
           fn=lambda paths, env, cc, ln: D.use_clause(
               [list(p_) for p_ in paths], env, cc, ln))
    p.rule("context_item.CLAUSE", "sel_names.PATHS",
           fn=lambda paths: ("use", [list(p_) for p_ in paths]))
    p.rule("context_item.MSGS", "context_item.RES",
           fn=lambda res: tuple(res.msgs))

    for kind in ("entity", "arch", "package", "package_body", "config"):
        p = g.production("lib_unit_%s" % kind,
                         "library_unit -> %s_unit" % kind)
        p.copy("library_unit.UNIT", "%s_unit.UNIT" % kind)

    p = g.production("id_opt_none", "id_opt ->")
    p.const("id_opt.NAME", "")
    p = g.production("id_opt_some", "id_opt -> ID")
    p.rule("id_opt.NAME", "ID.value", fn=lambda n: n)
    # Operator-symbol designators close subprogram bodies: end "+";
    p = g.production("id_opt_op", "id_opt -> STRING")
    p.rule("id_opt.NAME", "STRING.value", fn=lambda s: '"%s"' % s)

    # entity ------------------------------------------------------------------------
    p = g.production(
        "entity",
        "entity_unit -> kw_entity ID kw_is gen_clause_opt "
        "port_clause_opt kw_end id_opt SEMI")
    p.rule("entity_unit.UNIT", "ID.value", "gen_clause_opt.IFACE",
           "port_clause_opt.IFACE", "entity_unit.CC",
           "kw_entity.line", fn=_build_entity)
    p.rule("entity_unit.MSGS", "entity_unit.UNIT", "gen_clause_opt.IFACE",
           "port_clause_opt.IFACE",
           fn=lambda unit, gi, pi: _iface_msgs(gi) + _iface_msgs(pi))
    p = g.production("gen_clause_none", "gen_clause_opt ->")
    p.const("gen_clause_opt.IFACE", ())
    p = g.production(
        "gen_clause",
        "gen_clause_opt -> kw_generic LP iface_list RP SEMI")
    p.rule("gen_clause_opt.IFACE", "iface_list.IFACE", fn=tuple)
    p = g.production("port_clause_none", "port_clause_opt ->")
    p.const("port_clause_opt.IFACE", ())
    p = g.production(
        "port_clause",
        "port_clause_opt -> kw_port LP iface_list RP SEMI")
    p.rule("port_clause_opt.IFACE", "iface_list.IFACE", fn=tuple)

    # architecture ------------------------------------------------------------------------
    p = g.production(
        "architecture",
        "arch_unit -> kw_architecture ID kw_of ID kw_is decls "
        "kw_begin cstmts kw_end id_opt SEMI")
    p.rule("decls.ENV", "arch_unit.ENV", "ID1.value", "arch_unit.CC",
           fn=_arch_decl_env)
    p.rule("decls.RESULT", fn=lambda: None)
    p.rule("decls.SCOPE", fn=lambda: "")
    p.rule("decls.LEVEL", fn=lambda: 0)
    p.rule("cstmts.ENV", "decls.RES", fn=lambda res: res.env)
    p.rule("cstmts.LEVEL", fn=lambda: 0)
    p.rule("arch_unit.BUILD", "ID0.value", "ID1.value", "decls.RES",
           "cstmts.CS", "arch_unit.ENV", "arch_unit.CC",
           "kw_architecture.line", fn=_build_arch)
    p.rule("arch_unit.UNIT", "arch_unit.BUILD", fn=lambda b: b[0])
    p.rule("arch_unit.MSGS", "arch_unit.BUILD",
           fn=lambda b: tuple(b[1]))

    # package / package body -----------------------------------------------------------------
    p = g.production(
        "package",
        "package_unit -> kw_package ID kw_is decls kw_end id_opt SEMI")
    p.rule("decls.ENV", "package_unit.ENV",
           fn=lambda env: env.enter_scope())
    p.rule("decls.RESULT", fn=lambda: None)
    p.rule("decls.SCOPE", "ID.value", fn=lambda n: "pkg_%s_" % n)
    p.rule("decls.LEVEL", fn=lambda: 0)
    p.rule("package_unit.BUILD", "ID.value", "decls.RES",
           "package_unit.ENV", "package_unit.CC", "kw_package.line",
           fn=lambda name, decls, env, cc, ln: U.package_unit(
               name, decls, decls.env, cc, ln))
    p.rule("package_unit.UNIT", "package_unit.BUILD",
           fn=lambda b: b[0])
    p.rule("package_unit.MSGS", "package_unit.BUILD",
           fn=lambda b: tuple(b[1]))
    p = g.production(
        "package_body",
        "package_body_unit -> kw_package kw_body ID kw_is decls "
        "kw_end id_opt SEMI")
    p.rule("decls.ENV", "package_body_unit.ENV", "ID.value",
           "package_body_unit.CC", fn=_package_body_env)
    p.rule("decls.RESULT", fn=lambda: None)
    p.rule("decls.SCOPE", "ID.value", fn=lambda n: "pkg_%s_" % n)
    p.rule("decls.LEVEL", fn=lambda: 0)
    p.rule("package_body_unit.BUILD", "ID.value", "decls.RES",
           "package_body_unit.ENV", "package_body_unit.CC",
           "kw_package.line",
           fn=lambda name, decls, env, cc, ln: U.package_unit(
               name, decls, decls.env, cc, ln, is_body=True))
    p.rule("package_body_unit.UNIT", "package_body_unit.BUILD",
           fn=lambda b: b[0])
    p.rule("package_body_unit.MSGS", "package_body_unit.BUILD",
           fn=lambda b: tuple(b[1]))

    # configuration ---------------------------------------------------------------------------
    p = g.production(
        "configuration",
        "config_unit -> kw_configuration ID kw_of ID kw_is kw_for ID "
        "config_items kw_end kw_for SEMI kw_end id_opt SEMI")
    p.rule("config_unit.BUILD", "ID0.value", "ID1.value", "ID2.value",
           "config_items.BINDS", "config_unit.ENV", "config_unit.CC",
           "kw_configuration.line", fn=_build_config)
    p.rule("config_unit.UNIT", "config_unit.BUILD", fn=lambda b: b[0])
    p.rule("config_unit.MSGS", "config_unit.BUILD",
           fn=lambda b: tuple(b[1]))
    p = g.production("config_items_none", "config_items ->")
    p.const("config_items.BINDS", ())
    p = g.production("config_items_more",
                     "config_items -> config_items0 config_item")
    p.rule("config_items0.BINDS", "config_items1.BINDS",
           "config_item.BIND", fn=lambda bs, b: bs + (b,))
    p = g.production(
        "config_item",
        "config_item -> kw_for inst_spec COLON ID kw_use kw_entity "
        "sel_name arch_ind_opt SEMI kw_end kw_for SEMI")
    p.rule("config_item.BIND", "inst_spec.SPEC", "ID.value",
           "sel_name.PARTS", "arch_ind_opt.NAME", "config_item.CC",
           fn=_config_bind)


def _iface_msgs(iface_rows):
    out = []
    for row in iface_rows:
        out.extend(row["sub"].msgs)
        if row["init_goal"] is not None:
            out.extend(row["init_goal"].get("msgs", ()))
    return tuple(out)


def _build_entity(name, generics_iface, ports_iface, cc, line):
    generics, gmsgs, _ = _interface_entries(
        generics_iface, "generic", cc, line)
    ports, pmsgs, _ = _interface_entries(ports_iface, "port", cc, line)
    return U.entity_unit(name, generics, ports, cc, line)


def _arch_decl_env(env, entity_name, cc):
    entity = cc.library.find_unit(cc.work, entity_name) \
        if cc.library else None
    from .symtab import entry_kind
    if entity is None or entry_kind(entity) != "entity":
        # Error is reported by _build_arch; analysis continues with an
        # empty interface.
        return env.enter_scope()
    env = _replay_context(env, entity.context, cc)
    return _arch_env(env, entity)


def _build_arch(name, entity_name, decls, cstmts, env, cc, line):
    from .symtab import entry_kind
    entity = cc.library.find_unit(cc.work, entity_name) \
        if cc.library else None
    msgs = []
    if entity is None or entry_kind(entity) != "entity":
        msgs.append("line %d: no entity %r in library %r"
                    % (line, entity_name, cc.work))
        entity = U.entity_unit(entity_name, [], [], cc, line)
    unit, amsgs = U.arch_unit(name, entity, decls, cstmts,
                              decls.configs, decls.env, cc, line)
    return unit, msgs + amsgs


def _package_body_env(env, name, cc):
    spec = cc.library.find_unit(cc.work, name) if cc.library else None
    from .symtab import entry_kind, is_overloadable
    if spec is not None and entry_kind(spec) == "package":
        env = _replay_context(env, spec.context, cc)
    inner = env.enter_scope()
    if spec is not None and entry_kind(spec) == "package":
        for d in spec.visible_decls():
            dname = getattr(d, "name", None)
            if dname:
                inner = inner.bind(dname, d,
                                   overloadable=is_overloadable(d))
            if getattr(d, "kind", None) == "enum":
                for pos, lit in enumerate(d.literals):
                    inner = inner.bind(
                        lit, D._find_literal(spec, d, pos),
                        overloadable=True)
    return inner


def _config_bind(spec, comp_name, ent_parts, arch_name, cc):
    parts = list(ent_parts)
    if len(parts) == 1:
        lib, ent = cc.work, parts[0]
    else:
        lib, ent = parts[0], parts[1]
    return (list(spec), comp_name, lib, ent, arch_name)


def _build_config(name, entity_name, arch_name, binds, env, cc, line):
    entity = cc.library.find_unit(cc.work, entity_name) \
        if cc.library else None
    rows = []
    for spec, comp, lib, ent, arch in binds:
        rows.append([arch_name, ",".join(spec), comp, lib, ent, arch])
    return U.config_unit(name, [entity] if entity is not None else [],
                         rows, cc, line)


def _register_unit(unit, clauses, cc):
    """Place the compiled unit into the working library — separate
    compilation's usage history grows here (§3.3).  Primary units keep
    their context clause, because it also governs their secondary
    units (an architecture sees its entity's context)."""
    if unit is None:
        return None
    field_names = {f.name for f in unit.VIF_FIELDS}
    if "context" in field_names:
        unit.context = [list(c) for c in clauses]
    if "source_file" in field_names:
        # Stamp the declaring source file before the library
        # serializes the VIF payload, so reloaded units still know
        # where their declarations live (lint spans, runtime errors).
        unit.source_file = cc.filename or ""
    if cc.library is not None:
        cc.library.register_unit(cc.work, unit)
    return unit


def _replay_context(env, clauses, cc):
    """Re-apply a primary unit's context clause for a secondary unit."""
    for kind, payload in clauses or ():
        if kind == "library":
            for names in payload:
                env = D.library_clause(list(names), env, cc, 0).env
        elif kind == "use":
            env = D.use_clause([list(p) for p in payload], env, cc,
                               0).env
    return env


# ---------------------------------------------------------------------------
# the compiled principal AG
# ---------------------------------------------------------------------------


def _make_grammar():
    g = AGSpec("vhdl_principal")
    _declare_vocabulary(g)
    _soup_productions(g)
    _decl_productions(g)
    _stmt_productions(g)
    _cstmt_productions(g)
    _unit_productions(g)
    return g.finish()


_GRAMMAR = None


def principal_grammar():
    """The compiled principal AG (built once per session)."""
    global _GRAMMAR
    if _GRAMMAR is None:
        _GRAMMAR = _make_grammar()
    return _GRAMMAR
