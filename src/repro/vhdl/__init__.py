"""The VHDL compiler proper — written as two attribute grammars.

Mirrors the paper's compiler core (§2.2): a *principal* AG over the
full language (:mod:`repro.vhdl.grammar`) that builds the symbol table
applicatively and emits LEF token lists for expressions, and an
*expression* AG (:mod:`repro.vhdl.expr_grammar`) that re-parses each
LEF list with phrase structure chosen by what names denote (§4.1).
Compilation units produce VIF (:mod:`repro.vif`) stored in design
libraries (:mod:`repro.vhdl.library`) plus generated code
(:mod:`repro.vhdl.codegen`) executed by the simulation virtual machine
(:mod:`repro.sim`).

Public entry point: :class:`repro.vhdl.compiler.Compiler`.  Imported
lazily because the VIF node generator imports behavior mixins from
submodules of this package.
"""

__all__ = ["Compiler", "CompileError", "CompileResult"]


def __getattr__(name):
    if name in __all__:
        from . import compiler

        return getattr(compiler, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
