"""Out-of-line semantic functions: processes, concurrent statements,
and compilation-unit assembly (entity / architecture / package /
configuration), including emission of the generated Python model the
simulation kernel executes and the illustrative C model text.
"""

from ..vif.nodes import (
    ArchUnit,
    ConfigUnit,
    EntityUnit,
    InstanceEntry,
    ObjectEntry,
    PackageBodyUnit,
    PackageUnit,
)
from .compile_ctx import attrs_of
from .semantics_decl import DeclResult, indent, ln, render
from .semantics_stmt import SRes
from .symtab import entry_kind


def _msg(line, text):
    return "line %d: %s" % (line, text)


class CStmt:
    """One concurrent statement's contribution to an architecture."""

    __slots__ = ("code", "msgs", "instances", "label")

    def __init__(self, code=(), msgs=(), instances=(), label=""):
        self.code = list(code)
        self.msgs = list(msgs)
        self.instances = list(instances)
        self.label = label

    @staticmethod
    def merge(a, b):
        return CStmt(a.code + b.code, a.msgs + b.msgs,
                     a.instances + b.instances)


CSTMT_EMPTY = CStmt()


# -- processes ----------------------------------------------------------------------------


def process_stmt(label, sensitivity_lefs, decls, body, env, cc, line):
    """``label: process (sens) decls begin stmts end process;``

    ``decls`` is the DeclResult of the process declarative part (its
    code becomes the pre-loop variable initialization); ``body`` is the
    SRes of the statement part.
    """
    msgs = list(decls.msgs) + list(body.msgs)
    label = label or cc.gensym("proc")
    fn = "_p_%s" % label
    sens = []
    if sensitivity_lefs is not None:
        for name_lef in sensitivity_lefs:
            tgt = cc.eval_target(name_lef, env, line)
            msgs.extend(tgt.get("msgs", ()))
            lv = tgt.get("lvalue")
            if lv is None or not lv.base.is_signal:
                msgs.append(_msg(line, "sensitivity entry is not a "
                                 "signal"))
                continue
            sens.append(lv.base.py)
        if body.haswait:
            msgs.append(_msg(
                line, "process with a sensitivity list cannot contain "
                "wait statements"))
    loop_body = list(body.code) or [ln("pass")]
    if sensitivity_lefs is not None:
        loop_body.append(ln("yield rt.wait([%s], None, None)"
                            % ", ".join(sens)))
    elif not body.haswait:
        msgs.append(_msg(
            line, "process %s has no wait statement and no "
            "sensitivity list; it would loop forever — a final "
            "wait was inserted" % label))
        loop_body.append(ln("yield rt.wait([], None, None)"))
    lines = [ln("def %s():" % fn)]
    lines.extend(indent(decls.code))
    lines.append(ln("while True:", 1))
    lines.extend(indent(loop_body, 2))
    if sensitivity_lefs is not None:
        lines.append(ln("ctx.process(%r, %s, sensitivity=[%s], "
                        "line=%r)" % (label, fn, ", ".join(sens),
                                      line)))
    else:
        lines.append(ln("ctx.process(%r, %s, line=%r)"
                        % (label, fn, line)))
    return CStmt(lines, msgs, [], label)


def concurrent_assign(label, arms, env, cc, line, guarded=False,
                      guard_py=None):
    """Concurrent (possibly conditional) signal assignment.

    ``arms``: list of (target_lef, wave, cond_lef_or_None, transport).
    All arms share one target in VHDL; we take the first target.
    Equivalent process: assign, then wait on the signals read.
    """
    from .semantics_stmt import if_stmt, signal_assign

    label = label or cc.gensym("cassign")
    msgs = []
    sigs = set()
    guard_code = None
    if guarded and guard_py:
        guard_code = "rt.read(%s)" % guard_py
        sigs.add(guard_py)
    body_lines = []
    else_sres = None
    cond_arms = []
    for target_lef, wave, cond_lef, transport in arms:
        sres = signal_assign(target_lef, wave, transport, env, cc,
                             line, guard_code=guard_code)
        msgs.extend(sres.msgs)
        sigs |= sres.sigs
        if cond_lef is None:
            else_sres = sres
        else:
            cond_arms.append((cond_lef, sres))
    if cond_arms:
        combined = if_stmt(cond_arms, else_sres, env, cc, line)
        msgs.extend(m for m in combined.msgs if m not in msgs)
        sigs |= combined.sigs
        body_lines = combined.code
    elif else_sres is not None:
        body_lines = else_sres.code
    fn = "_p_%s" % label
    lines = [ln("def %s():" % fn), ln("while True:", 1)]
    lines.extend(indent(body_lines or [ln("pass")], 2))
    lines.append(ln("yield rt.wait([%s], None, None)"
                    % ", ".join(sorted(sigs)), 2))
    lines.append(ln("ctx.process(%r, %s, sensitivity=[%s], line=%r)"
                    % (label, fn, ", ".join(sorted(sigs)), line)))
    return CStmt(lines, msgs, [], label)


def selected_assign(label, selector_lef, target_lef, choices_waves,
                    env, cc, line):
    """``with sel select target <= w1 when c1, ... ;``"""
    from .semantics_stmt import signal_assign

    label = label or cc.gensym("sassign")
    msgs = []
    sigs = set()
    sel = cc.eval_expr(selector_lef, env, line)
    msgs.extend(sel.get("msgs", ()))
    sigs.update(sel.get("sigs", ()))
    sel_type = sel.get("type")
    tmp = cc.gensym("_sel")
    body = [ln("%s = %s" % (tmp, sel.get("code", "None")))]
    keyword = "if"
    for wave, choice_lefs in choices_waves:
        vals = []
        others = False
        for clef in choice_lefs:
            goal = cc.eval_choice(clef, env, line, expected=sel_type)
            msgs.extend(goal.get("msgs", ()))
            if goal.get("others"):
                others = True
            else:
                vals.extend(goal.get("vals", ()))
        sres = signal_assign(target_lef, wave, False, env, cc, line)
        msgs.extend(sres.msgs)
        sigs |= sres.sigs
        if others:
            body.append(ln("else:"))
        else:
            body.append(ln("%s %s in (%s):" % (
                keyword, tmp,
                ", ".join(repr(v) for v in vals) + ("," if vals else ""))))
            keyword = "elif"
        body.extend(indent(sres.code))
    fn = "_p_%s" % label
    lines = [ln("def %s():" % fn), ln("while True:", 1)]
    lines.extend(indent(body, 2))
    lines.append(ln("yield rt.wait([%s], None, None)"
                    % ", ".join(sorted(sigs)), 2))
    lines.append(ln("ctx.process(%r, %s, sensitivity=[%s], line=%r)"
                    % (label, fn, ", ".join(sorted(sigs)), line)))
    return CStmt(lines, msgs, [], label)


def concurrent_assert(label, cond_lef, report_lef, severity_lef, env,
                      cc, line):
    """A concurrent assertion: the equivalent process re-checks the
    condition whenever a signal it reads has an event."""
    from .semantics_stmt import assert_stmt

    sres = assert_stmt(cond_lef, report_lef, severity_lef, env, cc,
                       line)
    fn = "_p_%s" % label
    lines = [ln("def %s():" % fn), ln("while True:", 1)]
    lines.extend(indent(sres.code or [ln("pass")], 2))
    lines.append(ln("yield rt.wait([%s], None, None)"
                    % ", ".join(sorted(sres.sigs)), 2))
    lines.append(ln("ctx.process(%r, %s, sensitivity=[%s], line=%r)"
                    % (label, fn, ", ".join(sorted(sres.sigs)),
                       line)))
    return CStmt(lines, sres.msgs, [], label)


# -- component instantiation -----------------------------------------------------------------


def instantiation(label, comp_name, generic_assocs, port_assocs, env,
                  cc, line):
    """``label : comp generic map (...) port map (...);``

    Association lists are (formal_name_or_None, actual_lef_or_None)
    pairs; a None actual is OPEN.
    """
    msgs = []
    comp = None
    for e in env.lookup(comp_name).entries:
        if entry_kind(e) == "component":
            comp = e
            break
    if comp is None:
        return CStmt([], [_msg(line, "%r is not a component"
                                % comp_name)], [], label)
    gmap = {}
    for formal, actual_lef in generic_assocs:
        formal = formal or (comp.generics[len(gmap)].name
                            if len(gmap) < len(comp.generics) else None)
        g = comp.generic_by_name(formal) if formal else None
        if g is None:
            msgs.append(_msg(line, "no generic %r on component %r"
                             % (formal, comp_name)))
            continue
        goal = cc.eval_expr(actual_lef, env, line, expected=g.vtype)
        msgs.extend(goal.get("msgs", ()))
        gmap[formal] = goal.get("code", "None")
    pmap = {}
    positional_i = 0
    for formal, actual_lef in port_assocs:
        if formal is None:
            if positional_i >= len(comp.ports):
                msgs.append(_msg(line, "too many port associations"))
                continue
            formal = comp.ports[positional_i].name
        positional_i += 1
        port = comp.port_by_name(formal)
        if port is None:
            msgs.append(_msg(line, "no port %r on component %r"
                             % (formal, comp_name)))
            continue
        if actual_lef is None:
            pmap[formal] = "None"  # OPEN
            continue
        tgt = cc.eval_target(actual_lef, env, line)
        msgs.extend(tgt.get("msgs", ()))
        lv = tgt.get("lvalue")
        if lv is None or not lv.base.is_signal or lv.path:
            msgs.append(_msg(
                line, "port actual for %r must be a whole signal"
                % formal))
            continue
        pmap[formal] = lv.base.py
    gitems = ", ".join("%r: %s" % (k, v) for k, v in gmap.items())
    pitems = ", ".join("%r: %s" % (k, v) for k, v in pmap.items())
    code = [ln("ctx.instance(%r, %r, {%s}, {%s})"
               % (label, comp_name, gitems, pitems))]
    inst = InstanceEntry(label=label, component=comp)
    return CStmt(code, msgs, [inst], label)


def block_stmt(label, guard_lef, decls, inner, env, cc, line):
    """``label: block (guard) decls begin ... end block;``

    The guard becomes an implicit signal driven by an equivalent
    process; guarded assignments inside test it.
    """
    msgs = list(decls.msgs)
    lines = list(decls.code)
    if guard_lef is not None:
        goal = cc.eval_expr(guard_lef, env, line,
                            expected=cc.std.boolean)
        msgs.extend(goal.get("msgs", ()))
        guard_py = "s_guard_%s" % label
        fn = "_p_guard_%s" % label
        lines.append(ln("%s = ctx.signal(%r, init=0)"
                        % (guard_py, "%s.guard" % label)))
        lines.append(ln("def %s():" % fn))
        lines.append(ln("while True:", 1))
        lines.append(ln("rt.assign(%s, ((%s, 0),))"
                        % (guard_py, goal.get("code", "0")), 2))
        lines.append(ln("yield rt.wait([%s], None, None)"
                        % ", ".join(sorted(goal.get("sigs", ()))), 2))
        lines.append(ln("ctx.process(%r, %s, sensitivity=[%s], "
                        "line=%r)"
                        % (fn, fn,
                           ", ".join(sorted(goal.get("sigs", ()))),
                           line)))
    lines.extend(inner.code)
    msgs.extend(inner.msgs)
    return CStmt(lines, msgs, inner.instances, label)


# -- unit assembly ----------------------------------------------------------------------------


_PY_HEADER = [
    "# Generated by the repro VHDL compiler — do not edit.",
    "from repro.sim.runtime import VArray, VRecord, ops",
    "",
]


def interface_object(name, obj_class, mode, sub, default_goal, cc,
                     line):
    """One generic or port declaration of an entity/component."""
    msgs = list(sub.msgs)
    value = None
    has_value = False
    if default_goal is not None:
        msgs.extend(default_goal.get("msgs", ()))
        if default_goal.get("has_val") and isinstance(
                default_goal["val"], (int, float, str, bool)):
            value = default_goal["val"]
            has_value = True
    prefix = "g" if obj_class == "generic" else "p"
    entry = ObjectEntry(
        name=name, obj_class=obj_class, mode=mode or "in",
        vtype=sub.vtype, py="%s_%s" % (prefix, name),
        value=value, has_value=has_value, line=line)
    return entry, msgs, sub


def entity_unit(name, generics, ports, cc, line):
    """Assemble an EntityUnit (interface VIF; code is generated with
    each architecture)."""
    unit = EntityUnit(name=name, generics=list(generics),
                      ports=list(ports), decls=[], line=line)
    unit.py_source = ("# entity %s: interface only; code is generated "
                      "with each architecture\n" % name)
    unit.c_source = "/* entity %s */" % name
    return unit


def entity_setup_code(entity):
    """The generic/port preamble of an architecture's elaborate()."""
    from .expr_sem import code_for_value
    from .semantics_decl import default_init

    lines = []
    for g in entity.generics:
        default = (code_for_value(g.value) if g.has_value else "None")
        lines.append(ln("%s = ctx.generic(%r, %s)"
                        % (g.py, g.name, default)))
    for p in entity.ports:
        if p.has_value:
            init = code_for_value(p.value)
        else:
            init = default_init(p.vtype) or "0"
        lines.append(ln("%s = ctx.port(%r, init=%s, mode=%r, line=%r)"
                        % (p.py, p.name, init, p.mode, p.line)))
    return lines


def arch_unit(name, entity, decls, cstmts, configs, env, cc, line):
    """Assemble an ArchUnit with its generated Python model."""
    msgs = list(decls.msgs) + list(cstmts.msgs)
    instances = list(cstmts.instances)
    # Apply configuration specifications from the declarative part
    # (§3.3: configuration information in the architecture).
    for spec in configs:
        labels, comp_name, lib, ent, arch_name = spec
        for inst in instances:
            if inst.component is None:
                continue
            match = (
                labels == ["all"] or labels == ["others"]
                and not inst.is_bound
                or inst.label in labels
            )
            if match and inst.component.name == comp_name \
                    and not inst.is_bound:
                inst.bound_library = lib
                inst.bound_entity = ent
                inst.bound_arch = arch_name
    body = [ln("rt = ctx.rt"), ln("ops = ctx.ops")]
    body.extend(entity_setup_code(entity))
    body.extend(decls.code)
    body.extend(cstmts.code)
    lines = list(_PY_HEADER)
    lines.append("def elaborate(ctx):")
    lines.append(render(body, base_indent=1))
    py_source = "\n".join(lines) + "\n"
    unit = ArchUnit(
        name=name, entity_name=entity.name, entity=entity,
        decls=list(decls.entries), instances=instances,
        user_attrs=list(attrs_of(env)),
        py_source=py_source, line=line)
    from .codegen.cmodel import c_model_for_unit

    unit.c_source = c_model_for_unit("architecture", name, body)
    return unit, msgs


def package_unit(name, decls, env, cc, line, is_body=False):
    body = [ln("rt = ctx.rt"), ln("ops = ctx.ops")]
    body.extend(decls.code)
    body.append(ln(
        "ctx.export({k: v for k, v in locals().items() "
        "if k not in ('ctx', 'rt', 'ops')})"))
    lines = list(_PY_HEADER)
    lines.append("def elaborate(ctx):")
    lines.append(render(body, base_indent=1))
    py_source = "\n".join(lines) + "\n"
    cls = PackageBodyUnit if is_body else PackageUnit
    kwargs = dict(name=name, decls=list(decls.entries),
                  py_source=py_source, line=line)
    if not is_body:
        kwargs["user_attrs"] = list(attrs_of(env))
    unit = cls(**kwargs)
    from .codegen.cmodel import c_model_for_unit

    unit.c_source = c_model_for_unit("package", name, body)
    return unit, list(decls.msgs)


def config_unit(name, entity_entries, bindings, cc, line):
    """``configuration name of entity is for arch ... end for;``

    ``bindings``: list of (arch_name, labels, comp_name, lib, ent,
    arch) rows stored as data — applied at elaboration (§3.3's
    "postponed until the configuration information is available").

    Compiling a configuration means reading and traversing the large
    data structures other units built (footnote 3): the configured
    architecture's VIF is loaded and every binding is checked against
    its instances, and every bound entity/architecture pair against
    the library.
    """
    msgs = []
    entity = None
    entity_name = "?"
    for e in entity_entries:
        if entry_kind(e) == "entity":
            entity = e
            entity_name = e.name
            break
    if entity is None:
        msgs.append(_msg(line, "configuration of a non-entity"))
    if entity is not None and cc.library is not None:
        for row in bindings:
            arch_name, labels, comp, blib, bent, barch = row
            arch = cc.library.find_architecture(
                cc.work, entity_name, arch_name)
            if arch is None:
                msgs.append(_msg(line, "no architecture %r of %r"
                                 % (arch_name, entity_name)))
                continue
            label_set = labels.split(",")
            instances = {i.label: i for i in arch.instances}
            if "all" not in label_set and "others" not in label_set:
                for lbl in label_set:
                    inst = instances.get(lbl)
                    if inst is None:
                        msgs.append(_msg(
                            line, "architecture %r has no instance %r"
                            % (arch_name, lbl)))
                    elif inst.component is not None                             and inst.component.name != comp:
                        msgs.append(_msg(
                            line, "instance %r is of component %r, "
                            "not %r" % (lbl, inst.component.name,
                                        comp)))
            bound_ent = cc.library.find_unit(blib, bent)
            if bound_ent is None                     or entry_kind(bound_ent) != "entity":
                msgs.append(_msg(line, "no entity %s.%s"
                                 % (blib, bent)))
            elif barch and cc.library.find_architecture(
                    blib, bent, barch) is None:
                msgs.append(_msg(line, "no architecture %r of %s.%s"
                                 % (barch, blib, bent)))
            # Traverse the bound entity's interface against the
            # component's — the VIF editing work of footnote 3.
            if bound_ent is not None                     and entry_kind(bound_ent) == "entity":
                comp_entry = None
                for inst in arch.instances:
                    if inst.component is not None                             and inst.component.name == comp:
                        comp_entry = inst.component
                        break
                if comp_entry is not None:
                    for port in comp_entry.ports:
                        if bound_ent.port_by_name(port.name) is None:
                            msgs.append(_msg(
                                line, "entity %s has no port %r of "
                                "component %r" % (bent, port.name,
                                                  comp)))
    unit = ConfigUnit(name=name, entity_name=entity_name,
                      entity=entity, bindings=[list(b) for b in bindings],
                      py_source="", line=line)
    unit.c_source = "/* configuration %s */" % name
    return unit, msgs
