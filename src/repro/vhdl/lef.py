"""LEF — the intermediate language for expressions (§4.1).

"LEF consists of a flat list of tokens with no other structure imposed
on them. ... the symbol table is an attribute of the principal AG, not
of the expression AG, and it is used to resolve identifiers so that ID
is not a token of LEF; instead there are distinct tokens for variable,
type, subprogram, attribute, enum_literal, etc."

Our LEF token kinds:

==========  ==================================================
``OBJ``     an object (variable/signal/constant/generic/port);
            value: the ObjectEntry
``NAMESET`` an overloadable name: subprograms and/or enum
            literals; value: list of entries
``TYPEMARK``a type or subtype; value: the type node
``UNIT``    a physical-type unit; value: PhysicalUnitEntry
``RAWID``   an identifier with no (or deferred) denotation —
            formal names, record fields, attribute designators
``INT/REAL/STR/BITSTR``  literals (CHAR literals classify as
            NAMESET over enum literals)
punctuation ``LP RP COMMA ARROW BAR TICK DOT``
operators   ``AND OR NAND NOR XOR NOT EQ NE LT LE GT GE PLUS
            MINUS AMP STAR SLASH MOD REM POW ABS TO DOWNTO``
``OTHERS``  the aggregate/choice keyword
mode marks  ``M_EXPR M_TARGET M_RANGE M_CHOICE M_CALL`` —
            synthetic first token selecting the goal phrase
            (the paper's "flags indicating the context")
==========  ==================================================

Because token *values* ride along (Linguist's token-value mechanism),
"all the information associated with a variable by the principal AG is
also available in the expression AG".
"""

from ..ag import Token
from ..applicative import Env
from .symtab import entry_kind, deref_alias

#: Mode marks: the context flag exprEval passes (§4.1).
M_EXPR = "M_EXPR"
M_TARGET = "M_TARGET"
M_RANGE = "M_RANGE"
M_CHOICE = "M_CHOICE"
M_CALL = "M_CALL"

MODES = (M_EXPR, M_TARGET, M_RANGE, M_CHOICE, M_CALL)

#: All LEF terminal kinds (the expression AG's terminal alphabet).
LEF_KINDS = MODES + (
    "OBJ", "NAMESET", "TYPEMARK", "UNIT", "RAWID",
    "INT", "REAL", "STR", "BITSTR",
    "LP", "RP", "COMMA", "ARROW", "BAR", "TICK", "DOT",
    "AND", "OR", "NAND", "NOR", "XOR", "NOT",
    "EQ", "NE", "LT", "LE", "GT", "GE",
    "PLUS", "MINUS", "AMP", "STAR", "SLASH", "MOD", "REM", "POW", "ABS",
    "TO", "DOWNTO", "OTHERS", "RANGEKW", "BOX",
)


def lef(kind, text, value=None, line=0):
    """Build one LEF token."""
    return Token(kind, text, value, line)


class LefError:
    """A classification failure carried inside the LEF list.

    Rather than aborting the principal AG, a bad identifier becomes a
    RAWID whose value records the message; the expression AG reports it
    when (and only if) the name is actually used as a value.
    """

    __slots__ = ("message",)

    def __init__(self, message):
        self.message = message

    def __repr__(self):
        return "LefError(%r)" % self.message


def classify_id(name, env, line=0, text=None):
    """Resolve an identifier against ENV into a LEF token.

    This is the heart of cascaded evaluation: the same source text
    produces different LEF tokens — hence different phrase structure in
    the expression AG — depending on what the name denotes here.
    """
    text = text if text is not None else name
    result = env.lookup(name)
    if result.conflict:
        return lef(
            "RAWID", text,
            LefError(
                "%r is hidden by conflicting use-clause imports" % text
            ),
            line,
        )
    entries = _unique([deref_alias(e) for e in result.entries])
    if not entries:
        # Unknown here: may be a formal name or record field resolved
        # by selection in the expression AG; error only if used as a
        # value.
        return lef("RAWID", text, LefError("%r is not visible" % text), line)
    kinds = {entry_kind(e) for e in entries}
    if kinds <= {"subprogram", "enum_literal"}:
        return lef("NAMESET", text, entries, line)
    first = entries[0]
    k = entry_kind(first)
    if k == "object" or k == "param":
        return lef("OBJ", text, first, line)
    if k == "type":
        return lef("TYPEMARK", text, first, line)
    if k == "physical_unit":
        return lef("UNIT", text, first, line)
    if k in ("entity", "architecture", "package", "configuration",
             "component", "attribute_decl", "library"):
        # Usable only in selected-name or attribute positions; ride as
        # RAWID with the entry attached for the expression AG's prefix
        # handling.
        return lef("RAWID", text, first, line)
    return lef(
        "RAWID", text, LefError("%r cannot appear in an expression" % text),
        line,
    )


def _unique(entries):
    seen = set()
    out = []
    for e in entries:
        if id(e) not in seen:
            seen.add(id(e))
            out.append(e)
    return out


def classify_char(char_text, env, line=0):
    """A character literal is an overloadable enum-literal name."""
    result = env.lookup(char_text)
    entries = _unique(
        e for e in result.entries if entry_kind(e) == "enum_literal"
    )
    if entries:
        return lef("NAMESET", char_text, entries, line)
    return lef(
        "RAWID", char_text,
        LefError("character literal %s has no visible type" % char_text),
        line,
    )


_KW_OPS = {
    "kw_and": "AND", "kw_or": "OR", "kw_nand": "NAND", "kw_nor": "NOR",
    "kw_xor": "XOR", "kw_not": "NOT", "kw_mod": "MOD", "kw_rem": "REM",
    "kw_abs": "ABS", "kw_to": "TO", "kw_downto": "DOWNTO",
    "kw_others": "OTHERS",
}

_SYM_OPS = {
    "EQ": "EQ", "NE": "NE", "LT": "LT", "LE": "LE", "GT": "GT", "GE": "GE",
    "PLUS": "PLUS", "MINUS": "MINUS", "AMP": "AMP", "STAR": "STAR",
    "SLASH": "SLASH", "POW": "POW", "LP": "LP", "RP": "RP",
    "COMMA": "COMMA", "ARROW": "ARROW", "BAR": "BAR", "TICK": "TICK",
    "DOT": "DOT",
}


def op_token(vhdl_token):
    """Map a VHDL operator/punctuation token to its LEF kind, or None."""
    kind = _KW_OPS.get(vhdl_token.kind) or _SYM_OPS.get(vhdl_token.kind)
    if kind is None:
        return None
    return lef(kind, vhdl_token.text, vhdl_token.text, vhdl_token.line)


def mode_token(mode, line=0):
    """The synthetic first token selecting the goal phrase structure."""
    assert mode in MODES
    return lef(mode, mode, mode, line)
