"""Out-of-line semantic functions: declarations.

Each declaration-processing function returns a :class:`DeclResult`:
the new environment (applicatively extended — the old value is never
touched, §4.3), the generated code lines for the declaration, the VIF
entries it created, and error messages.

Code lines are ``(depth, text)`` pairs; depth is relative to the
enclosing declarative region and resolved at unit-assembly time.
"""

from ..vif.nodes import (
    AliasEntry,
    ArraySubtype,
    ArrayType,
    AttributeDeclEntry,
    AttributeValue,
    ComponentEntry,
    EnumLiteralEntry,
    EnumType,
    IndexRange,
    IntegerType,
    ObjectEntry,
    ParamEntry,
    RecordType,
    ScalarSubtype,
    SubprogramEntry,
)
from . import vtypes
from .compile_ctx import bind_attr_value
from .expr_sem import code_for_value
from .symtab import entry_kind, is_overloadable


def ln(text, depth=0):
    return (depth, text)


def indent(lines, by=1):
    return [(d + by, t) for d, t in lines]


def render(lines, base_indent=0, unit="    "):
    return "\n".join(unit * (base_indent + d) + t for d, t in lines)


class DeclResult:
    """Outcome of processing one declaration.

    ``configs`` carries configuration specifications (§3.3) out of an
    architecture's declarative part to the unit-assembly rule.
    """

    __slots__ = ("env", "code", "entries", "msgs", "configs")

    def __init__(self, env, code=(), entries=(), msgs=(), configs=()):
        self.env = env
        self.code = list(code)
        self.entries = list(entries)
        self.msgs = list(msgs)
        self.configs = list(configs)


def _msg(line, text):
    return "line %d: %s" % (line, text)


# -- marks and subtype indications --------------------------------------------------


def resolve_mark(parts, env, cc, line):
    """Resolve a (possibly selected) type-mark name to entries.

    ``parts`` is the identifier path (``["std", "standard", "bit"]``).
    Returns (entries, msgs).
    """
    head = parts[0]
    result = env.lookup(head)
    entries = list(result.entries)
    msgs = []
    if result.conflict:
        return [], [_msg(line, "%r is hidden by conflicting imports" % head)]
    if not entries and cc.library is not None and len(parts) > 1 \
            and cc.library.has_library(head):
        entries = [LibraryName(head)]
    for part in parts[1:]:
        if not entries:
            break
        entry = entries[0]
        kind = entry_kind(entry)
        if kind == "library":
            unit = cc.library.find_unit(entry.name, part) \
                if cc.library else None
            if unit is None:
                return [], [_msg(line, "no unit %r in library %r"
                                 % (part, entry.name))]
            entries = [unit]
        elif kind == "package":
            found = [d for d in entry.visible_decls()
                     if getattr(d, "name", None) == part]
            if not found:
                return [], [_msg(line, "package %r has no %r"
                                 % (entry.name, part))]
            entries = found
        else:
            return [], [_msg(line, "cannot select %r from %s"
                             % (part, kind))]
    if not entries:
        return [], [_msg(line, "%r is not visible" % ".".join(parts))]
    return entries, msgs


class LibraryName:
    """A library name bound by a LIBRARY clause (not serialized)."""

    __slots__ = ("name",)
    entry_kind = "library"
    overloadable = False

    def __init__(self, name):
        self.name = name


class SubtypeInfo:
    """A processed subtype indication: the type denotation plus the
    code that builds a default initial value."""

    __slots__ = ("vtype", "init_code", "resolution", "msgs",
                 "bounds_code")

    def __init__(self, vtype, init_code, resolution=None, msgs=(),
                 bounds_code=None):
        self.vtype = vtype
        self.init_code = init_code
        self.resolution = resolution
        self.msgs = list(msgs)
        self.bounds_code = bounds_code  # (left, dir, right) code triple


def default_init(vtype, bounds_code=None):
    """Code for T'LEFT-style default initial values."""
    if vtype is None:
        return "None"
    if vtypes.is_array(vtype):
        elem = default_init(vtype.element_type)
        rng = getattr(vtype, "index_range", None)
        if rng is not None and isinstance(rng.left, int):
            return "ops.fill(%r, %r, %r, %s)" % (
                rng.left, rng.direction, rng.right, elem)
        if bounds_code is not None:
            left, direction, right = bounds_code
            return "ops.fill(%s, %r, %s, %s)" % (
                left, direction, right, elem)
        return None  # unconstrained with no bounds: caller reports
    if vtypes.is_record(vtype):
        pairs = ", ".join(
            "(%r, %s)" % (f, default_init(t))
            for f, t in zip(vtype.field_names, vtype.field_types))
        return "ops.record_from([%s])" % pairs
    low, _high = vtypes.scalar_bounds(vtype)
    if vtype.base().kind == "float":
        return repr(float(low))
    return repr(low)


def subtype_indication(mark_entries, resolution_entries, constraint,
                       env, cc, line):
    """Build a SubtypeInfo from resolved mark + optional constraint.

    ``constraint`` is None or ("range"|"index", range_goal_dict).
    """
    msgs = []
    vtype = None
    for e in mark_entries:
        if entry_kind(e) == "type":
            vtype = e
            break
    if vtype is None:
        return SubtypeInfo(None, "None",
                           msgs=[_msg(line, "not a type mark")])
    resolution = None
    if resolution_entries:
        funcs = [e for e in resolution_entries
                 if entry_kind(e) == "subprogram" and e.is_function]
        if funcs:
            resolution = funcs[0]
        else:
            msgs.append(_msg(line, "resolution name is not a function"))
    bounds_code = None
    if constraint is not None:
        ckind, goal = constraint
        if not goal.get("ok"):
            msgs.extend(goal.get("msgs", ()))
        elif vtypes.is_array(vtype):
            if goal.get("static"):
                rng = IndexRange(left=goal["left_val"],
                                 direction=goal["direction"],
                                 right=goal["right_val"])
                vtype = ArraySubtype(name="", base_type=vtype.base(),
                                     index_range=rng)
            else:
                bounds_code = (goal["left_code"], goal["direction"],
                               goal["right_code"])
                vtype = ArraySubtype(name="", base_type=vtype.base(),
                                     index_range=None)
        elif vtype.is_scalar():
            if goal.get("static"):
                lo = min(goal["left_val"], goal["right_val"])
                hi = max(goal["left_val"], goal["right_val"])
                vtype = ScalarSubtype(name="", base_type=vtype,
                                      low=lo, high=hi,
                                      resolution=resolution)
            else:
                msgs.append(_msg(
                    line, "scalar subtype bounds must be static"))
        else:
            msgs.append(_msg(line, "constraint on non-array type"))
    if resolution is not None and vtype is not None \
            and vtype.kind != "subtype":
        vtype = ScalarSubtype(name="", base_type=vtype,
                              low=None, high=None, resolution=resolution)
    init = default_init(vtype, bounds_code)
    if init is None:
        init = "None"
    return SubtypeInfo(vtype, init, resolution, msgs, bounds_code)


# -- object declarations ----------------------------------------------------------------


_PREFIX = {
    "constant": "c", "variable": "v", "signal": "s",
    "generic": "g", "port": "p",
}


def object_decl(obj_class, names, sub, init_goal, env, cc, line,
                py_scope="", signal_kind=""):
    """Process constant/variable/signal declarations (one id list).

    ``init_goal`` is the exprEval result of the initializer or None.
    """
    msgs = list(sub.msgs)
    init_code = sub.init_code
    init_val = None
    has_val = False
    if init_goal is not None:
        msgs.extend(init_goal.get("msgs", ()))
        if init_goal.get("code"):
            init_code = init_goal["code"]
        if init_goal.get("has_val"):
            init_val = init_goal["val"]
            has_val = True
    elif sub.vtype is not None and vtypes.is_array(sub.vtype) \
            and not getattr(sub.vtype, "constrained", True) \
            and sub.bounds_code is None:
        msgs.append(_msg(
            line, "object of unconstrained array type needs an "
            "initial value"))
    new_env = env
    code = []
    entries = []
    for name in names:
        py = "%s%s_%s" % (py_scope, _PREFIX.get(obj_class, "o"), name)
        storable = has_val and _jsonable(init_val)
        entry = ObjectEntry(
            name=name, obj_class=obj_class, mode="",
            vtype=sub.vtype, py=py,
            value=init_val if storable else None,
            has_value=storable,
            signal_kind=signal_kind, line=line)
        entries.append(entry)
        new_env = new_env.bind(name, entry)
        if obj_class == "signal":
            res = _resolution_code(sub, cc)
            code.append(ln("%s = ctx.signal(%r, init=%s%s, line=%r)"
                           % (py, name, init_code, res, line)))
        elif obj_class in ("constant", "variable"):
            code.append(ln("%s = %s" % (py, init_code)))
    return DeclResult(new_env, code, entries, msgs)


def _jsonable(val):
    return isinstance(val, (int, float, str, bool, type(None)))


def _resolution_code(sub, cc):
    resolution = sub.resolution or vtypes.resolution_of(sub.vtype)
    if resolution is None:
        return ""
    return (", res=lambda _vs: %s(VArray.from_list(list(_vs)))"
            % resolution.py)


# -- type declarations --------------------------------------------------------------------


def enum_type_decl(name, literal_names, env, cc, line):
    etype = EnumType(name=name, literals=list(literal_names))
    new_env = env.bind(name, etype)
    entries = [etype]
    for pos, lit in enumerate(etype.literals):
        entry = EnumLiteralEntry(name=lit, etype=etype, position=pos)
        entries.append(entry)
        new_env = new_env.bind(lit, entry, overloadable=True)
    return DeclResult(new_env, [], entries, [])


def integer_type_decl(name, range_goal, env, cc, line):
    msgs = list(range_goal.get("msgs", ()))
    if not range_goal.get("static"):
        msgs.append(_msg(line, "integer type bounds must be static"))
        low, high = 0, 0
    else:
        low = min(range_goal["left_val"], range_goal["right_val"])
        high = max(range_goal["left_val"], range_goal["right_val"])
    itype = IntegerType(name=name, low=low, high=high)
    return DeclResult(env.bind(name, itype), [], [itype], msgs)


def array_type_decl(name, index_goal, unconstrained_mark, element_sub,
                    env, cc, line):
    """``type T is array (...) of elem``.

    ``index_goal`` is the range goal for a constrained array, or None
    with ``unconstrained_mark`` entries for ``array (T range <>)``.
    """
    msgs = list(element_sub.msgs)
    elem = element_sub.vtype
    if index_goal is not None:
        msgs.extend(m for m in index_goal.get("msgs", ()))
        index_type = index_goal.get("type") or cc.std.integer
        rng = None
        if index_goal.get("static"):
            rng = IndexRange(left=index_goal["left_val"],
                             direction=index_goal["direction"],
                             right=index_goal["right_val"])
        else:
            msgs.append(_msg(
                line, "array type index bounds must be static "
                "(use a subtype at the object for computed bounds)"))
        atype = ArrayType(name=name, index_type=index_type,
                          element_type=elem, index_range=rng)
    else:
        index_type = None
        for e in unconstrained_mark or ():
            if entry_kind(e) == "type":
                index_type = e
                break
        if index_type is None or not vtypes.is_discrete(index_type):
            msgs.append(_msg(line, "bad index type in array type"))
            index_type = cc.std.integer
        atype = ArrayType(name=name, index_type=index_type,
                          element_type=elem, index_range=None)
    return DeclResult(env.bind(name, atype), [], [atype], msgs)


def record_type_decl(name, fields, env, cc, line):
    """``fields`` is a list of (field_name, SubtypeInfo)."""
    msgs = []
    names = []
    ftypes = []
    for fname, sub in fields:
        msgs.extend(sub.msgs)
        if fname in names:
            msgs.append(_msg(line, "duplicate record field %r" % fname))
            continue
        names.append(fname)
        ftypes.append(sub.vtype)
    rtype = RecordType(name=name, field_names=names, field_types=ftypes)
    return DeclResult(env.bind(name, rtype), [], [rtype], msgs)


def subtype_decl(name, sub, env, cc, line):
    vtype = sub.vtype
    if vtype is not None and not getattr(vtype, "name", ""):
        vtype.name = name
    elif vtype is not None and vtype.name != name:
        # ``subtype small is integer`` with no constraint: a renaming
        # view is enough in the subset.
        if vtype.is_scalar() and vtype.kind != "subtype":
            vtype = ScalarSubtype(name=name, base_type=vtype,
                                  low=None, high=None,
                                  resolution=sub.resolution)
    return DeclResult(env.bind(name, vtype), [], [vtype], sub.msgs)


# -- subprograms -------------------------------------------------------------------------------


def make_param(name, obj_class, mode, sub, default_goal, line):
    msgs = list(sub.msgs)
    default = None
    has_default = False
    if default_goal is not None:
        msgs.extend(default_goal.get("msgs", ()))
        if default_goal.get("has_val") and _jsonable(default_goal["val"]):
            default = default_goal["val"]
            has_default = True
        elif default_goal.get("has_val"):
            msgs.append(_msg(
                line, "composite parameter defaults are not supported"))
        else:
            msgs.append(_msg(line, "parameter default must be static"))
    if not obj_class:
        obj_class = "constant" if mode in ("", "in") else "variable"
    param = ParamEntry(name=name, obj_class=obj_class,
                       mode=mode or "in", vtype=sub.vtype,
                       default=default, has_default=has_default)
    return param, msgs


def subprogram_entry(name, sub_kind, params, result_entries, env, cc,
                     line, py_scope=""):
    """Build the SubprogramEntry and bind it (overloadable)."""
    result = None
    msgs = []
    if sub_kind == "function":
        for e in result_entries or ():
            if entry_kind(e) == "type":
                result = e
                break
        if result is None:
            msgs.append(_msg(line, "bad function result type"))
    safe = name.strip('"').replace('"', "")
    py = cc.gensym("%sf_%s" % (py_scope, _py_safe(safe)))
    entry = SubprogramEntry(
        name=name, sub_kind=sub_kind, params=list(params),
        result=result, py=py, predefined_op="", pure=True, line=line)
    return DeclResult(env.bind(name, entry, overloadable=True), [],
                      [entry], msgs)


_OPNAME = {
    "+": "plus", "-": "minus", "*": "times", "/": "div", "&": "amp",
    "=": "eq", "/=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
    "**": "pow",
}


def _py_safe(name):
    if name in _OPNAME:
        return "op_" + _OPNAME[name]
    return "".join(ch if ch.isalnum() else "_" for ch in name)


def subprogram_body_env(entry, env, line):
    """The environment inside a subprogram body: params bound."""
    inner = env.enter_scope()
    for param in entry.params:
        obj = ObjectEntry(
            name=param.name, obj_class=param.obj_class,
            mode=param.mode, vtype=param.vtype,
            py="a_%s" % param.name, line=line,
            signal_kind="signal" if param.obj_class == "signal" else "")
        inner = inner.bind(param.name, obj)
    return inner


def subprogram_code(entry, body_code, local_names, writes, line):
    """Assemble the nested ``def`` for a subprogram body.

    ``writes`` is the set of python names the body assigns; names not
    local and not parameters need ``nonlocal`` — the up-level-reference
    support the paper notes C lacked (§1).
    """
    params = []
    for p in entry.params:
        if p.has_default:
            params.append("a_%s=%s" % (p.name, code_for_value(p.default)))
        else:
            params.append("a_%s" % p.name)
    lines = [ln("def %s(%s):" % (entry.py, ", ".join(params)))]
    locals_ = set(local_names) | {"a_%s" % p.name for p in entry.params}
    uplevel = sorted(w for w in writes if w not in locals_)
    body = list(body_code)
    if uplevel:
        body.insert(0, ln("nonlocal %s" % ", ".join(uplevel)))
    if not body:
        body = [ln("pass")]
    if entry.sub_kind == "procedure":
        out = ["a_%s" % p.name for p in entry.params
               if p.mode in ("out", "inout") and p.obj_class != "signal"]
        if out:
            body.append(ln("return %s" % ", ".join(out)))
    lines.extend(indent(body))
    return lines


# -- components, aliases, attributes -------------------------------------------------------------


def component_decl(name, generics, ports, env, cc, line):
    entry = ComponentEntry(name=name, generics=list(generics),
                           ports=list(ports), line=line)
    return DeclResult(env.bind(name, entry), [], [entry], [])


def alias_decl(name, sub, target_goal, env, cc, line):
    msgs = list(sub.msgs)
    msgs.extend(target_goal.get("msgs", ()))
    lv = target_goal.get("lvalue")
    if lv is None or lv.path:
        msgs.append(_msg(line, "alias target must be a whole object"))
        return DeclResult(env, [], [], msgs)
    entry = AliasEntry(name=name, target=lv.base,
                       vtype=sub.vtype or lv.base.vtype)
    return DeclResult(env.bind(name, entry), [], [entry], msgs)


def attribute_decl(name, mark_entries, env, cc, line):
    vtype = None
    msgs = []
    for e in mark_entries:
        if entry_kind(e) == "type":
            vtype = e
            break
    if vtype is None:
        msgs.append(_msg(line, "attribute type must be a type mark"))
    entry = AttributeDeclEntry(name=name, vtype=vtype)
    return DeclResult(env.bind(name, entry), [], [entry], msgs)


def attribute_spec(attr_name, item_name, value_goal, env, cc, line):
    """``attribute A of X : class is expr;`` — user-defined attribute
    values, the §3.2 shadowing mechanism."""
    msgs = list(value_goal.get("msgs", ()))
    result = env.lookup(attr_name)
    attr = None
    for e in result.entries:
        if entry_kind(e) == "attribute_decl":
            attr = e
            break
    if attr is None:
        msgs.append(_msg(line, "%r is not an attribute" % attr_name))
        return DeclResult(env, [], [], msgs)
    target_result = env.lookup(item_name)
    if not target_result.entries:
        msgs.append(_msg(line, "%r is not visible" % item_name))
        return DeclResult(env, [], [], msgs)
    if not value_goal.get("has_val"):
        msgs.append(_msg(line, "attribute value must be static"))
        return DeclResult(env, [], [], msgs)
    target = target_result.entries[0]
    av = AttributeValue(attr=attr, target=target,
                        value=value_goal["val"]
                        if _jsonable(value_goal["val"]) else None)
    return DeclResult(bind_attr_value(env, av), [], [av], msgs)


# -- context clauses -----------------------------------------------------------------------------


def library_clause(names, env, cc, line):
    msgs = []
    new_env = env
    for name in names:
        if cc.library is not None and not cc.library.has_library(name):
            msgs.append(_msg(line, "unknown library %r" % name))
            continue
        new_env = new_env.bind(name, LibraryName(name))
    return DeclResult(new_env, [], [], msgs)


def use_clause(paths, env, cc, line):
    """``use lib.unit.item`` / ``use lib.unit.all`` (§3.4)."""
    msgs = []
    new_env = env
    for parts in paths:
        if len(parts) < 2:
            msgs.append(_msg(line, "use clause needs a selected name"))
            continue
        head = parts[0]
        lib_entry = None
        for e in new_env.lookup(head).entries:
            if entry_kind(e) == "library":
                lib_entry = e
                break
        if lib_entry is None:
            msgs.append(_msg(line, "%r is not a library (missing "
                             "library clause?)" % head))
            continue
        unit = cc.library.find_unit(lib_entry.name, parts[1]) \
            if cc.library else None
        if unit is None:
            msgs.append(_msg(line, "no unit %r in library %r"
                             % (parts[1], head)))
            continue
        if len(parts) == 2:
            # The unit itself becomes visible (for pkg.item selection).
            new_env = new_env.bind(parts[1], unit, via_use=True)
            continue
        item = parts[2]
        if item == "all":
            new_env = new_env.bind(parts[1], unit, via_use=True)
            for d in unit.visible_decls():
                dname = getattr(d, "name", None)
                if dname:
                    new_env = new_env.bind(
                        dname, d, via_use=True,
                        overloadable=is_overloadable(d))
                if getattr(d, "kind", None) == "enum":
                    for pos, lit in enumerate(d.literals):
                        new_env = new_env.bind(
                            lit,
                            _find_literal(unit, d, pos),
                            via_use=True, overloadable=True)
        else:
            found = [d for d in unit.visible_decls()
                     if getattr(d, "name", None) == item]
            if not found:
                msgs.append(_msg(line, "no %r in unit %r"
                                 % (item, parts[1])))
                continue
            for d in found:
                new_env = new_env.bind(
                    item, d, via_use=True,
                    overloadable=is_overloadable(d))
    return DeclResult(new_env, [], [], msgs)


def _find_literal(unit, etype, pos):
    for d in unit.visible_decls():
        if entry_kind(d) == "enum_literal" and d.etype is etype \
                and d.position == pos:
            return d
    return EnumLiteralEntry(name=etype.literals[pos], etype=etype,
                            position=pos)
