"""Out-of-line semantic functions for the expression AG.

The paper keeps complex shared semantics in "out-of-line,
separately-compiled functions" called from semantic rules (18% of the
compiler).  These are ours: overload resolution, operator typing,
constant folding, aggregate assembly, attribute lookup, and code
emission for the :mod:`repro.sim.runtime` target.

The central value is :class:`Sem` — the meaning of (a piece of) an
expression: its type, generated code, static value when known, the
signals it reads (for sensitivity inference), and accumulated error
messages.  Some Sems are *pending*: an overloaded enumeration literal
or an aggregate cannot be finished until an expected type arrives from
context, so they carry a resolver the use-site forces.
"""

from ..sim.runtime import VArray, ops as _ops
from . import vtypes
from .symtab import entry_kind, lookup_user_attribute

#: Sentinel: no statically known value.
MISSING = object()


class Sem:
    """The semantic value of an expression fragment."""

    __slots__ = (
        "kind", "type", "code", "val", "sigs", "msgs",
        "entries", "entry", "pending", "lvalue", "rng",
    )

    def __init__(self, kind="value", type=None, code="None", val=MISSING,
                 sigs=(), msgs=(), entries=None, entry=None,
                 pending=None, lvalue=None, rng=None):
        self.kind = kind
        self.type = type
        self.code = code
        self.val = val
        self.sigs = frozenset(sigs)
        self.msgs = tuple(msgs)
        self.entries = entries
        self.entry = entry
        self.pending = pending
        self.lvalue = lvalue
        self.rng = rng

    def with_msgs(self, msgs):
        s = Sem.__new__(Sem)
        for slot in Sem.__slots__:
            setattr(s, slot, getattr(self, slot))
        s.msgs = self.msgs + tuple(msgs)
        return s

    def __repr__(self):
        return "Sem(%s, %s, %r)" % (
            self.kind, vtypes.describe(self.type), self.code
        )


def error_sem(message, line=0):
    """An error placeholder that keeps evaluation going."""
    text = "line %d: %s" % (line, message) if line else message
    return Sem(kind="error", msgs=(text,))


def force(sem, hint, ctx):
    """Finish a pending Sem against an expected type."""
    if sem.pending is not None:
        return sem.pending(hint, ctx)
    return sem


# -- code emission helpers ----------------------------------------------------


def code_for_value(val):
    """Python source that rebuilds a static runtime value."""
    if isinstance(val, VArray):
        elems = ", ".join(code_for_value(e) for e in val.elems)
        return "VArray(%r, %r, %r, [%s])" % (
            val.left, val.direction, val.right, elems
        )
    if isinstance(val, bool):
        return "1" if val else "0"
    return repr(val)


def value_sem(vtype, code, val=MISSING, sigs=(), msgs=()):
    if val is not MISSING:
        code = code_for_value(val)
    return Sem(kind="value", type=vtype, code=code, val=val,
               sigs=sigs, msgs=msgs)


# -- name semantics --------------------------------------------------------------


def object_sem(entry, ctx):
    """Sem for an OBJ token: reads of signals go through rt.read."""
    vtype = entry.vtype
    if entry.is_signal:
        code = "rt.read(%s)" % entry.py
        sigs = (entry.py,)
        val = MISSING
    else:
        code = entry.py
        sigs = ()
        val = entry.static_value()
        if val is None and not entry.has_value:
            val = MISSING
    msgs = ()
    if not entry.is_readable:
        msgs = ("line %d: %s %s is mode out and cannot be read"
                % (ctx.line, entry.obj_class, entry.name),)
    sem = Sem(kind="value", type=vtype, code=code,
              val=val if val is not None else MISSING,
              sigs=sigs, msgs=msgs, entry=entry)
    sem.lvalue = LValue(entry)
    return sem


class LValue:
    """An assignable view: base object plus an access path."""

    __slots__ = ("base", "path")

    def __init__(self, base, path=()):
        self.base = base
        self.path = tuple(path)

    def extend(self, step):
        return LValue(self.base, self.path + (step,))


def nameset_sem(entries, text, line):
    """Sem for a NAMESET token: pending until context arrives."""

    def resolver(hint, ctx):
        return resolve_nameset(entries, text, hint, ctx, line)

    return Sem(kind="nameset", entries=list(entries), code=text,
               pending=resolver)


def resolve_nameset(entries, text, hint, ctx, line):
    """An overloadable name used as a value: enumeration literal or
    parameterless function call."""
    lits = [e for e in entries if entry_kind(e) == "enum_literal"]
    funcs = [
        e for e in entries
        if entry_kind(e) == "subprogram"
        and e.is_function and e.accepts_arity(0)
    ]
    if hint is not None:
        base = hint.base()
        lits = [e for e in lits if e.etype.base() is base]
        funcs = [f for f in funcs if f.result is not None
                 and f.result.base() is base]
    candidates = lits + funcs
    if not candidates:
        return error_sem("%r does not denote a value%s" % (
            text,
            " of type %s" % vtypes.describe(hint) if hint else "",
        ), line)
    if len(candidates) > 1:
        return error_sem(
            "%r is ambiguous (%d visible denotations)"
            % (text, len(candidates)), line)
    chosen = candidates[0]
    if entry_kind(chosen) == "enum_literal":
        return value_sem(chosen.etype, "", val=chosen.position)
    return call_sem(chosen, [], ctx, line)


def rawid_sem(token):
    """Sem for a RAWID: usable as prefix/formal, an error as a value."""
    value = token.value
    message = None
    entry = None
    if hasattr(value, "message"):
        message = value.message
    else:
        entry = value

    def resolver(hint, ctx, _tok=token):
        return error_sem(
            message or "%r cannot be used as a value" % _tok.text,
            _tok.line,
        )

    return Sem(kind="rawid", code=token.text, entry=entry,
               pending=resolver)


def typemark_sem(vtype):
    def resolver(hint, ctx, _t=vtype):
        return error_sem("type mark %s used as a value"
                         % vtypes.describe(_t))

    return Sem(kind="typemark", type=vtype, code=vtypes.describe(vtype),
               pending=resolver)


# -- literals ------------------------------------------------------------------------


def int_literal_sem(value, ctx):
    vtype = ctx.std.real if isinstance(value, float) else ctx.std.integer

    def resolver(hint, ctx2, _v=value):
        if hint is not None and vtypes.is_numeric(hint):
            base = hint.base()
            if base.kind == "integer" and isinstance(_v, int):
                return value_sem(hint, "", val=_v)
            if base.kind == "float":
                return value_sem(hint, "", val=float(_v))
        return value_sem(vtype, "", val=_v)

    return Sem(kind="value", type=vtype, code=code_for_value(value),
               val=value, pending=resolver)


def physical_literal_sem(value, unit_entry, line):
    fs = value * unit_entry.scale
    if isinstance(fs, float):
        fs = int(round(fs))
    return value_sem(unit_entry.ptype, "", val=fs)


def string_literal_sem(text, line):
    """A string literal: pending on the expected array type."""

    def resolver(hint, ctx, _text=text):
        if not vtypes.is_array(hint):
            # Default to STRING when context gives nothing.
            hint = ctx.std.string
        elem = hint.element_type.base()
        if elem.kind != "enum":
            return error_sem(
                "string literal needs an enumeration-element array type, "
                "got %s" % vtypes.describe(hint), line)
        positions = []
        for ch in _text:
            lit = "'%s'" % ch
            if lit not in elem.literals:
                return error_sem(
                    "character %s not in type %s"
                    % (lit, vtypes.describe(elem)), line)
            positions.append(elem.literals.index(lit))
        left, direction, right = _bounds_for(hint, len(positions))
        return value_sem(
            hint, "", val=VArray(left, direction, right, positions))

    return Sem(kind="value", code=repr(text), pending=resolver)


def bitstring_literal_sem(bits, line):
    def resolver(hint, ctx, _bits=bits):
        target = hint if vtypes.is_array(hint) else ctx.std.bit_vector
        positions = [1 if b == "1" else 0 for b in _bits]
        left, direction, right = _bounds_for(target, len(positions))
        return value_sem(
            target, "", val=VArray(left, direction, right, positions))

    return Sem(kind="value", code=repr(bits), pending=resolver)


def _bounds_for(array_type, n):
    rng = getattr(array_type, "index_range", None)
    if rng is not None and isinstance(rng.left, int):
        return rng.left, rng.direction, rng.right
    idx = array_type.index_type
    low = idx.effective_low if idx.kind == "subtype" else idx.low
    return low, "to", low + n - 1


# -- operators -------------------------------------------------------------------------

_NUMERIC_BIN = {
    "PLUS": ("add", "+"), "MINUS": ("sub", "-"), "STAR": ("mul", "*"),
    "SLASH": ("div", "/"), "MOD": ("mod", "mod"), "REM": ("rem", "rem"),
    "POW": ("pow_", "**"),
}
_RELATIONAL = {
    "EQ": ("eq", "="), "NE": ("ne", "/="), "LT": ("lt", "<"),
    "LE": ("le", "<="), "GT": ("gt", ">"), "GE": ("ge", ">="),
}
_LOGICAL = {
    "AND": ("and_", "and"), "OR": ("or_", "or"), "XOR": ("xor", "xor"),
    "NAND": ("nand", "nand"), "NOR": ("nor", "nor"),
}

_FOLD_FNS = {
    "add": _ops.add, "sub": _ops.sub, "mul": _ops.mul, "div": _ops.div,
    "mod": _ops.mod, "rem": _ops.rem, "pow_": _ops.pow_, "eq": _ops.eq,
    "ne": _ops.ne, "lt": _ops.lt, "le": _ops.le, "gt": _ops.gt,
    "ge": _ops.ge, "and_": _ops.and_, "or_": _ops.or_, "xor": _ops.xor,
    "nand": _ops.nand, "nor": _ops.nor, "not_": _ops.not_,
    "neg": _ops.neg, "pos": _ops.pos, "abs_": _ops.abs_,
    "concat": _ops.concat,
}


def _sem_with(vtype, code, val, sigs, msgs):
    s = Sem(kind="value", type=vtype, code=code, val=val,
            sigs=sigs, msgs=msgs)
    return s


def _is_boolean_like(vtype, ctx):
    return vtype is not None and vtype.base().kind == "enum"


#: Operators whose result type equals the operand type: the context's
#: expected type flows down into pending operands (string literals,
#: aggregates, overloaded enum literals).
_HINT_TRANSPARENT = frozenset(
    ["AMP", "AND", "OR", "XOR", "NAND", "NOR", "PLUS", "MINUS", "STAR",
     "SLASH", "MOD", "REM", "POW"]
)


def binary_sem(op_kind, left, right, ctx, line):
    """Type-check, fold, and emit a binary operator application.

    When an operand is still *pending* (a literal or aggregate waiting
    for an expected type), the whole application stays pending so the
    context's type can flow down — e.g. ``"01" & "10"`` assigned to a
    bit_vector resolves both strings against bit_vector.
    """
    if left.pending is not None or right.pending is not None:

        def resolver(hint, ctx2, _l=left, _r=right):
            operand_hint = hint if op_kind in _HINT_TRANSPARENT else None
            return _binary_core(op_kind, _l, _r, ctx2, line,
                                operand_hint)

        eager = _binary_core(op_kind, left, right, ctx, line, None)
        return Sem(kind=eager.kind, type=eager.type, code=eager.code,
                   val=eager.val, sigs=eager.sigs, msgs=eager.msgs,
                   pending=resolver)
    return _binary_core(op_kind, left, right, ctx, line, None)


def _force_operand(sem, hint, ctx, allow_element):
    """Force one operand; for ``&`` an operand may also be a single
    *element* of the hinted array type."""
    out = force(sem, hint, ctx)
    if out.kind == "error" and allow_element and vtypes.is_array(hint):
        retry = force(sem, hint.element_type, ctx)
        if retry.kind != "error":
            return retry
    return out


def _binary_core(op_kind, left, right, ctx, line, operand_hint=None):
    # Operands inform each other's expected types: the left resolves
    # first (against the context hint for type-transparent operators),
    # then the right against the left's type.
    elementwise = op_kind == "AMP"
    left = _force_operand(left, operand_hint, ctx, elementwise)
    if left.kind == "error":
        right = _force_operand(right, operand_hint, ctx, elementwise)
        return _combine_errors(left, right)
    right_hint = left.type if left.type is not None else operand_hint
    right = _force_operand(right, right_hint, ctx, elementwise)
    if right.kind == "error":
        return _combine_errors(left, right)
    lt, rt = left.type, right.type
    user = _user_operator(op_kind, (left, right), ctx, line)
    if user is not None:
        return user

    if op_kind in _NUMERIC_BIN:
        fn, symbol = _NUMERIC_BIN[op_kind]
        # Predefined mixed operators on physical types: T*I, I*T, T/I.
        if op_kind in ("STAR", "SLASH") and lt is not None \
                and lt.base().kind == "physical" \
                and rt is not None and rt.base().kind == "integer":
            return _finish(fn, left, right, lt, ctx)
        if op_kind == "STAR" and rt is not None \
                and rt.base().kind == "physical" \
                and lt is not None and lt.base().kind == "integer":
            return _finish(fn, left, right, rt, ctx)
        if not vtypes.is_numeric(lt) or not vtypes.same_base(lt, rt):
            return _op_type_error(symbol, lt, rt, line)
        result = lt if lt.kind != "subtype" else lt.base()
        return _finish(fn, left, right, result, ctx)
    if op_kind in _RELATIONAL:
        fn, symbol = _RELATIONAL[op_kind]
        if not vtypes.same_base(lt, rt):
            return _op_type_error(symbol, lt, rt, line)
        return _finish(fn, left, right, ctx.std.boolean, ctx)
    if op_kind in _LOGICAL:
        fn, symbol = _LOGICAL[op_kind]
        ok = vtypes.same_base(lt, rt) and (
            _is_logical_type(lt) or _is_logical_array(lt)
        )
        if not ok:
            return _op_type_error(symbol, lt, rt, line)
        return _finish(fn, left, right, lt, ctx)
    if op_kind == "AMP":
        return _concat_sem(left, right, ctx, line)
    return error_sem("unsupported operator %r" % op_kind, line)


def _is_logical_type(vtype):
    if vtype is None:
        return False
    base = vtype.base()
    return base.kind == "enum" and len(base.literals) == 2


def _is_logical_array(vtype):
    return vtypes.is_array(vtype) and _is_logical_type(
        vtype.element_type
    )


def _finish(fn, left, right, result_type, ctx):
    code = "ops.%s(%s, %s)" % (fn, left.code, right.code)
    val = MISSING
    if left.val is not MISSING and right.val is not MISSING:
        try:
            val = _FOLD_FNS[fn](left.val, right.val)
        except Exception:
            val = MISSING
    return _sem_with(result_type, code, val,
                     left.sigs | right.sigs, left.msgs + right.msgs)


def _concat_sem(left, right, ctx, line):
    lt, rt = left.type, right.type
    if vtypes.is_array(lt):
        result = lt.base()
    elif vtypes.is_array(rt):
        result = rt.base()
    else:
        return _op_type_error("&", lt, rt, line)
    return _finish("concat", left, right, result, ctx)


def unary_sem(op_kind, operand, ctx, line):
    operand = force(operand, None, ctx)
    if operand.kind == "error":
        return operand
    vtype = operand.type
    user = _user_operator(op_kind, (operand,), ctx, line)
    if user is not None:
        return user
    if op_kind == "NOT":
        if not (_is_logical_type(vtype) or _is_logical_array(vtype)):
            return _op_type_error("not", vtype, None, line)
        fn = "not_"
    elif op_kind == "ABS":
        if not vtypes.is_numeric(vtype):
            return _op_type_error("abs", vtype, None, line)
        fn = "abs_"
    elif op_kind == "MINUS":
        if not vtypes.is_numeric(vtype):
            return _op_type_error("-", vtype, None, line)
        fn = "neg"
    else:
        if not vtypes.is_numeric(vtype):
            return _op_type_error("+", vtype, None, line)
        fn = "pos"
    code = "ops.%s(%s)" % (fn, operand.code)
    val = MISSING
    if operand.val is not MISSING:
        try:
            val = _FOLD_FNS[fn](operand.val)
        except Exception:
            val = MISSING
    return _sem_with(vtype, code, val, operand.sigs, operand.msgs)


_OP_DESIGNATORS = {
    "PLUS": '"+"', "MINUS": '"-"', "STAR": '"*"', "SLASH": '"/"',
    "MOD": '"mod"', "REM": '"rem"', "POW": '"**"', "EQ": '"="',
    "NE": '"/="', "LT": '"<"', "LE": '"<="', "GT": '">"', "GE": '">="',
    "AND": '"and"', "OR": '"or"', "XOR": '"xor"', "NAND": '"nand"',
    "NOR": '"nor"', "AMP": '"&"', "NOT": '"not"', "ABS": '"abs"',
}


def _user_operator(op_kind, operands, ctx, line):
    """User-overloaded operator lookup: ``function "+"(...)``."""
    designator = _OP_DESIGNATORS.get(op_kind)
    if designator is None or ctx.env is None:
        return None
    result = ctx.env.lookup(designator)
    candidates = [
        e for e in result.entries
        if entry_kind(e) == "subprogram"
        and e.is_function and len(e.params) == len(operands)
    ]
    for cand in candidates:
        if all(
            vtypes.same_base(p.vtype, s.type)
            for p, s in zip(cand.params, operands)
        ):
            return call_sem(cand, list(operands), ctx, line)
    return None


def _op_type_error(symbol, lt, rt, line):
    if rt is None:
        return error_sem(
            "operator %r undefined for %s" % (symbol, vtypes.describe(lt)),
            line)
    return error_sem(
        "operator %r undefined for %s and %s"
        % (symbol, vtypes.describe(lt), vtypes.describe(rt)), line)


def _combine_errors(*sems):
    msgs = sum((s.msgs for s in sems), ())
    return Sem(kind="error", msgs=msgs)


# -- calls -------------------------------------------------------------------------------


def call_sem(subprog, arg_sems, ctx, line):
    """Emit a call to a resolved subprogram with positional Sems."""
    msgs = sum((s.msgs for s in arg_sems), ())
    sigs = frozenset().union(
        *[s.sigs for s in arg_sems]) if arg_sems else frozenset()
    if subprog.predefined_op == "now":
        return _sem_with(subprog.result, "rt.now", MISSING, sigs, msgs)
    codes = []
    for param, sem in zip(subprog.params, arg_sems):
        codes.append(sem.code)
    for param in subprog.params[len(arg_sems):]:
        codes.append(code_for_value(param.default))
    code = "%s(%s)" % (subprog.py, ", ".join(codes))
    return _sem_with(subprog.result, code, MISSING, sigs, msgs)


def resolve_call(entries, items, ctx, line, text="?"):
    """Overload resolution for ``NAMESET LP items RP``.

    ``items`` are Item records (positional or named).  Candidates are
    filtered by arity, named formals, and argument types; a single
    survivor wins.
    """
    funcs = [e for e in entries
             if entry_kind(e) == "subprogram" and e.is_function]
    if not funcs:
        return error_sem("%r is not callable as a function" % text,
                         line)
    positional = [it for it in items if it.kind == "pos"]
    named = [it for it in items if it.kind == "named"]
    bad = [it for it in items if it.kind not in ("pos", "named")]
    if bad:
        return error_sem(
            "range or others association in a call to %r" % text, line)
    viable = []
    for cand in funcs:
        binding = _try_bind(cand, positional, named, ctx)
        if binding is not None:
            viable.append((cand, binding))
    if not viable:
        return error_sem(
            "no visible %r matches this call (%d candidates)"
            % (text, len(funcs)), line)
    if len(viable) > 1:
        return error_sem(
            "call to %r is ambiguous (%d candidates match)"
            % (text, len(viable)), line)
    cand, binding = viable[0]
    return call_sem(cand, binding, ctx, line)


def _try_bind(cand, positional, named, ctx):
    """Bind arguments to ``cand``'s formals; None if it cannot fit."""
    n = len(cand.params)
    if len(positional) + len(named) > n:
        return None
    slots = [None] * n
    for i, item in enumerate(positional):
        if i >= n:
            return None
        slots[i] = item
    for item in named:
        param = cand.param_by_name(item.formal)
        if param is None:
            return None
        idx = cand.params.index(param)
        if slots[idx] is not None:
            return None
        slots[idx] = item
    sems = []
    for param, slot in zip(cand.params, slots):
        if slot is None:
            if not param.has_default:
                return None
            sems.append(value_sem(param.vtype, "", val=param.default))
            continue
        sem = force(slot.value, param.vtype, ctx)
        if sem.kind == "error":
            return None
        if not vtypes.same_base(sem.type, param.vtype):
            return None
        sems.append(sem)
    return sems


class Item:
    """One element of a parenthesized item list: a positional value, a
    named association/choice, a range, or an others-choice."""

    __slots__ = ("kind", "formal", "choices", "value", "rng", "line")

    def __init__(self, kind, value=None, formal=None, choices=(),
                 rng=None, line=0):
        self.kind = kind  # pos | named | range | others
        self.value = value
        self.formal = formal
        self.choices = tuple(choices)
        self.rng = rng
        self.line = line

    def __repr__(self):
        return "Item(%s)" % self.kind


# -- the evaluation context ------------------------------------------------------


class Ctx:
    """What exprEval receives besides the LEF list (§4.1): "the nesting
    level at which this expression occurs, the type expected for this
    expression (if this is known), the source line number ... and flags
    indicating the context"."""

    __slots__ = ("env", "std", "line", "level", "expected",
                 "unit_resolver", "user_attrs")

    def __init__(self, env, std, line=0, level=0, expected=None,
                 unit_resolver=None, user_attrs=()):
        self.env = env
        self.std = std
        self.line = line
        self.level = level
        self.expected = expected
        self.unit_resolver = unit_resolver  # (lib, name) -> unit or None
        self.user_attrs = tuple(user_attrs)


# -- parenthesized expressions and aggregates ---------------------------------------


def paren_sem(items, ctx, line):
    """``( items )``: a parenthesized expression when it is one plain
    value, an aggregate otherwise — decided here, by phrase content and
    expected type, exactly the dual role the paper describes."""
    if len(items) == 1 and items[0].kind == "pos":
        inner = items[0].value
        if inner.pending is not None:
            def resolver(hint, ctx2, _inner=inner):
                return force(_inner, hint, ctx2)
            return Sem(kind="value", type=inner.type, code=inner.code,
                       pending=resolver)
        return inner

    def resolver(hint, ctx2, _items=items):
        return aggregate_sem(_items, hint, ctx2, line)

    return Sem(kind="aggregate", pending=resolver, code="<aggregate>")


def aggregate_sem(items, hint, ctx, line):
    """Assemble an array or record aggregate against ``hint``."""
    if hint is None:
        return error_sem("aggregate in a context with no expected type",
                         line)
    if vtypes.is_record(hint.base()):
        return _record_aggregate(items, hint.base(), ctx, line)
    if not vtypes.is_array(hint):
        return error_sem(
            "aggregate for non-composite type %s" % vtypes.describe(hint),
            line)
    return _array_aggregate(items, hint, ctx, line)


def _record_aggregate(items, rtype, ctx, line):
    by_field = {}
    msgs = []
    sigs = set()
    pos_i = 0
    for item in items:
        if item.kind == "pos":
            if pos_i >= len(rtype.field_names):
                msgs.append("line %d: too many record aggregate elements"
                            % line)
                continue
            fname = rtype.field_names[pos_i]
            pos_i += 1
            targets = [fname]
        elif item.kind == "named":
            targets = [item.formal]
        elif item.kind == "others":
            targets = [f for f in rtype.field_names if f not in by_field]
        else:
            msgs.append("line %d: range choice in record aggregate" % line)
            continue
        for fname in targets:
            ftype = rtype.field_type(fname)
            if ftype is None:
                msgs.append("line %d: no record field %r" % (line, fname))
                continue
            sem = force(item.value, ftype, ctx)
            msgs.extend(sem.msgs)
            sigs |= sem.sigs
            by_field[fname] = sem
    missing = [f for f in rtype.field_names if f not in by_field]
    if missing:
        msgs.append("line %d: record aggregate misses fields %s"
                    % (line, ", ".join(missing)))
    pairs = ", ".join(
        "(%r, %s)" % (f, s.code) for f, s in by_field.items()
    )
    code = "ops.record_from([%s])" % pairs
    return _sem_with(rtype, code, MISSING, frozenset(sigs), tuple(msgs))


def _array_aggregate(items, atype, ctx, line):
    elem = atype.element_type
    msgs = []
    sigs = set()
    positional = []
    named = []       # (index_val, sem) — static indices only
    others = None
    for item in items:
        if item.kind == "pos":
            sem = force(item.value, elem, ctx)
            msgs.extend(sem.msgs)
            sigs |= sem.sigs
            positional.append(sem)
        elif item.kind == "others":
            sem = force(item.value, elem, ctx)
            msgs.extend(sem.msgs)
            sigs |= sem.sigs
            others = sem
        elif item.kind in ("named", "range"):
            sem = force(item.value, elem, ctx)
            msgs.extend(sem.msgs)
            sigs |= sem.sigs
            for choice in item.choices:
                if choice.kind == "range" and choice.rng is not None:
                    lo, hi = _static_range_bounds(choice, msgs, line)
                    if lo is None:
                        continue
                    for i in range(lo, hi + 1):
                        named.append((i, sem))
                else:
                    cval = force(choice, atype.index_type, ctx)
                    if cval.val is MISSING:
                        msgs.append(
                            "line %d: aggregate choice must be static"
                            % line)
                        continue
                    named.append((cval.val, sem))
        else:
            msgs.append("line %d: bad aggregate element" % line)

    left, direction, right = _aggregate_bounds(
        atype, positional, named, others, msgs, line)
    if named or others is not None:
        # Build via fill + updates so sparse named choices work.
        base = "ops.fill(%r, %r, %r, %s)" % (
            left, direction, right,
            others.code if others is not None else "0",
        )
        code = base
        indices = list(
            _ops.iter_range(left, direction, right)
        )
        for k, sem in enumerate(positional):
            code = "ops.array_update(%s, %r, %s)" % (
                code, indices[k], sem.code)
        for idx, sem in named:
            code = "ops.array_update(%s, %r, %s)" % (code, idx, sem.code)
    else:
        elems = ", ".join(s.code for s in positional)
        code = "ops.array_from([%s], %r, %r, %r)" % (
            elems, left, direction, right)
    val = MISSING
    parts = positional + [s for _, s in named]
    if all(s.val is not MISSING for s in parts) and (
            others is None or others.val is not MISSING):
        fill = others.val if others is not None else 0
        arr = _ops.fill(left, direction, right, fill)
        idxs = list(_ops.iter_range(left, direction, right))
        try:
            for k, sem in enumerate(positional):
                arr = _ops.array_update(arr, idxs[k], sem.val)
            for idx, sem in named:
                arr = _ops.array_update(arr, idx, sem.val)
            val = arr
        except Exception:
            val = MISSING
    return _sem_with(atype, code, val, frozenset(sigs), tuple(msgs))


def _static_range_bounds(choice, msgs, line):
    left, _, right = choice.rng
    if left.val is MISSING or right.val is MISSING:
        msgs.append("line %d: aggregate range choice must be static" % line)
        return None, None
    lo, hi = sorted((left.val, right.val))
    return lo, hi


def _aggregate_bounds(atype, positional, named, others, msgs, line):
    rng = getattr(atype, "index_range", None)
    if rng is not None and isinstance(rng.left, int):
        return rng.left, rng.direction, rng.right
    if named:
        idxs = [i for i, _ in named]
        lo, hi = min(idxs), max(idxs)
        return lo, "to", hi
    idx = atype.index_type
    low = idx.effective_low if idx.kind == "subtype" else idx.low
    if others is not None:
        msgs.append(
            "line %d: others in an aggregate for an unconstrained type"
            % line)
    return low, "to", low + len(positional) - 1


# -- applying ( items ) to a name ------------------------------------------------------


def apply_items(prefix, items, ctx, line):
    """``prefix ( items )`` where the prefix is an object-like name:
    array indexing or slicing (calls and conversions have their own
    phrase structures, chosen by the LEF token of the prefix)."""
    if prefix.kind == "error":
        return prefix
    if prefix.kind == "nameset":
        return resolve_call(prefix.entries, items, ctx, line,
                            prefix.code)
    if prefix.kind == "typemark":
        return conversion_sem(prefix.type, items, ctx, line)
    if prefix.kind == "attrfn":
        return _apply_attr_fn(prefix, items, ctx, line)
    if prefix.kind == "rawid":
        return error_sem("%r is not visible here" % prefix.code, line)
    vtype = prefix.type
    if not vtypes.is_array(vtype):
        return error_sem(
            "%s is not an array and cannot be indexed or sliced"
            % vtypes.describe(vtype), line)
    if len(items) == 1 and items[0].kind == "range":
        return _slice_sem(prefix, items[0], ctx, line)
    if len(items) == 1 and items[0].kind == "pos":
        return _index_sem(prefix, items[0], ctx, line)
    if all(it.kind == "pos" for it in items):
        return error_sem(
            "multi-dimensional arrays are outside the supported subset",
            line)
    # A single named/range item may be a slice by attribute range.
    return error_sem("bad index or slice", line)


def _index_sem(prefix, item, ctx, line):
    vtype = prefix.type
    idx = force(item.value, vtype.index_type, ctx)
    if idx.kind == "error":
        return idx
    if idx.type is not None and not vtypes.same_base(
            idx.type, vtype.index_type):
        return error_sem(
            "index of type %s for array indexed by %s"
            % (vtypes.describe(idx.type),
               vtypes.describe(vtype.index_type)), line)
    code = "ops.index(%s, %s)" % (prefix.code, idx.code)
    val = MISSING
    if prefix.val is not MISSING and idx.val is not MISSING:
        try:
            val = _ops.index(prefix.val, idx.val)
        except Exception:
            val = MISSING
    sem = _sem_with(vtype.element_type, code, val,
                    prefix.sigs | idx.sigs, prefix.msgs + idx.msgs)
    if prefix.lvalue is not None:
        sem.lvalue = prefix.lvalue.extend(("index", idx))
    return sem


def _slice_sem(prefix, item, ctx, line):
    vtype = prefix.type
    left, direction, right = item.rng
    left = force(left, vtype.index_type, ctx)
    right = force(right, vtype.index_type, ctx)
    code = "ops.slice_(%s, %s, %r, %s)" % (
        prefix.code, left.code, direction, right.code)
    sub = None
    from ..vif.nodes import ArraySubtype, IndexRange
    if left.val is not MISSING and right.val is not MISSING:
        sub = ArraySubtype(
            name="", base_type=vtype.base(),
            index_range=IndexRange(left=left.val, direction=direction,
                                   right=right.val))
    result_type = sub if sub is not None else vtype.base()
    sem = _sem_with(result_type, code, MISSING,
                    prefix.sigs | left.sigs | right.sigs,
                    prefix.msgs + left.msgs + right.msgs)
    if prefix.lvalue is not None:
        sem.lvalue = prefix.lvalue.extend(
            ("slice", (left, direction, right)))
    return sem


def conversion_sem(vtype, items, ctx, line):
    """Type conversion ``T ( e )`` — its own phrase structure in the
    expression AG (the paper's fourth reading of ``X (Y)``)."""
    if len(items) != 1 or items[0].kind != "pos":
        return error_sem("type conversion takes exactly one expression",
                         line)
    operand = force(items[0].value, None, ctx)
    if operand.kind == "error":
        return operand
    src = operand.type
    dst_base = vtype.base()
    src_base = src.base() if src is not None else None
    if src_base is dst_base:
        return _sem_with(vtype, operand.code, operand.val,
                         operand.sigs, operand.msgs)
    numeric = ("integer", "float", "physical")
    if src_base is not None and src_base.kind in numeric \
            and dst_base.kind in numeric:
        fn = "to_float" if dst_base.kind == "float" else "to_integer"
        code = "ops.%s(%s)" % (fn, operand.code)
        val = MISSING
        if operand.val is not MISSING:
            val = getattr(_ops, fn)(operand.val)
        return _sem_with(vtype, code, val, operand.sigs, operand.msgs)
    return error_sem(
        "no conversion from %s to %s"
        % (vtypes.describe(src), vtypes.describe(vtype)), line)


def qualified_sem(vtype, paren, ctx, line):
    """Qualified expression ``T'( ... )``: the aggregate/value is
    resolved against exactly T."""
    sem = force(paren, vtype, ctx)
    if sem.kind == "error":
        return sem
    if sem.type is not None and not vtypes.same_base(sem.type, vtype):
        return error_sem(
            "qualified expression: value of type %s does not match %s"
            % (vtypes.describe(sem.type), vtypes.describe(vtype)), line)
    return _sem_with(vtype, sem.code, sem.val, sem.sigs, sem.msgs)


# -- selection (DOT) ---------------------------------------------------------------------


def selection_sem(prefix, field_name, ctx, line):
    """``prefix . name`` — record field, or expanded name through a
    package/library (visibility by selection, §3.2)."""
    if prefix.kind == "error":
        return prefix
    entry = prefix.entry
    if entry is not None and entry_kind(entry) == "library":
        unit = None
        if ctx.unit_resolver is not None:
            unit = ctx.unit_resolver(entry.name, field_name)
        if unit is None:
            return error_sem(
                "no unit %r in library %r" % (field_name, entry.name),
                line)
        return Sem(kind="rawid", code=field_name, entry=unit,
                   pending=lambda hint, ctx2: error_sem(
                       "unit %r used as a value" % field_name, line))
    if entry is not None and entry_kind(entry) == "package":
        matches = [
            d for d in entry.visible_decls()
            if getattr(d, "name", None) == field_name
        ]
        if not matches:
            return error_sem(
                "package %r has no declaration %r"
                % (entry.name, field_name), line)
        return _sem_for_entries(matches, field_name, ctx, line)
    prefix_v = force(prefix, None, ctx)
    if prefix_v.kind == "error":
        return prefix_v
    rtype = prefix_v.type.base() if prefix_v.type is not None else None
    if not vtypes.is_record(rtype):
        return error_sem(
            "%s is not a record; cannot select %r"
            % (vtypes.describe(prefix_v.type), field_name), line)
    ftype = rtype.field_type(field_name)
    if ftype is None:
        return error_sem(
            "record %s has no field %r"
            % (vtypes.describe(rtype), field_name), line)
    code = "ops.field(%s, %r)" % (prefix_v.code, field_name)
    val = MISSING
    if prefix_v.val is not MISSING:
        try:
            val = _ops.field(prefix_v.val, field_name)
        except Exception:
            val = MISSING
    sem = _sem_with(ftype, code, val, prefix_v.sigs, prefix_v.msgs)
    if prefix_v.lvalue is not None:
        sem.lvalue = prefix_v.lvalue.extend(("field", field_name))
    return sem


def _sem_for_entries(entries, text, ctx, line):
    """Entries found by selection get the same classification LEF
    identifiers get."""
    kinds = {entry_kind(e) for e in entries}
    if kinds <= {"subprogram", "enum_literal"}:
        return nameset_sem(entries, text, line)
    first = entries[0]
    k = entry_kind(first)
    if k == "object":
        return object_sem(first, ctx)
    if k == "type":
        return typemark_sem(first)
    if k == "physical_unit":
        return Sem(kind="value", type=first.ptype,
                   code=repr(first.scale), val=first.scale)
    return error_sem("%r cannot appear in an expression" % text, line)


# -- attributes (TICK) ---------------------------------------------------------------------

_SIGNAL_ATTRS = ("event", "active", "last_value")


def attribute_sem(prefix, attr_name, ctx, line):
    """``prefix ' attr`` — the §3.2/§4.1 showcase: a user-defined
    attribute can shadow a predefined one (X'REVERSE_RANGE), and which
    reading applies depends on the symbol table, not the syntax."""
    if prefix.kind == "error":
        return prefix
    entry = prefix.entry
    if entry is not None and ctx.user_attrs:
        av = lookup_user_attribute(ctx.user_attrs, entry, attr_name)
        if av is not None:
            return value_sem(av.attr.vtype, "", val=av.value)
    if prefix.kind == "typemark":
        return _type_attribute(prefix.type, attr_name, ctx, line)
    if prefix.kind in ("value",) and prefix.entry is not None \
            and prefix.entry.is_signal:
        if attr_name in _SIGNAL_ATTRS:
            sig = prefix.entry.py
            if attr_name == "event":
                return _sem_with(ctx.std.boolean, "rt.event(%s)" % sig,
                                 MISSING, frozenset({sig}), prefix.msgs)
            if attr_name == "active":
                return _sem_with(ctx.std.boolean, "rt.active(%s)" % sig,
                                 MISSING, frozenset({sig}), prefix.msgs)
            return _sem_with(prefix.type, "rt.last_value(%s)" % sig,
                             MISSING, frozenset({sig}), prefix.msgs)
    if prefix.kind == "value" and vtypes.is_array(prefix.type):
        return _array_attribute(prefix, attr_name, ctx, line)
    if prefix.kind == "value":
        return _type_attribute(prefix.type, attr_name, ctx, line)
    return error_sem(
        "no attribute %r on this prefix" % attr_name, line)


def _array_attribute(prefix, attr_name, ctx, line):
    vtype = prefix.type
    rng = getattr(vtype, "index_range", None)
    static = rng is not None and isinstance(rng.left, int)
    if attr_name in ("left", "right", "low", "high", "length"):
        if static:
            val = {
                "left": rng.left, "right": rng.right, "low": rng.low,
                "high": rng.high, "length": rng.length(),
            }[attr_name]
            return value_sem(
                ctx.std.integer if attr_name == "length"
                else vtype.index_type, "", val=val)
        fn = {"left": "[0]", "right": "[2]"}.get(attr_name)
        if attr_name == "length":
            code = "ops.length(%s)" % prefix.code
        elif fn:
            code = "ops.range_of(%s)%s" % (prefix.code, fn)
        else:
            code = "%s(ops.range_of(%s)[0], ops.range_of(%s)[2])" % (
                "min" if attr_name == "low" else "max",
                prefix.code, prefix.code)
        return _sem_with(vtype.index_type, code, MISSING,
                         prefix.sigs, prefix.msgs)
    if attr_name in ("range", "reverse_range"):
        return _range_attr_sem(prefix, vtype, attr_name, static, rng, ctx)
    return error_sem("no array attribute %r" % attr_name, line)


def _range_attr_sem(prefix, vtype, attr_name, static, rng, ctx):
    if static:
        left, direction, right = rng.left, rng.direction, rng.right
        if attr_name == "reverse_range":
            left, right = right, left
            direction = "downto" if direction == "to" else "to"
        lsem = value_sem(vtype.index_type, "", val=left)
        rsem = value_sem(vtype.index_type, "", val=right)
        return Sem(kind="range", type=vtype.index_type,
                   rng=(lsem, direction, rsem), sigs=prefix.sigs,
                   msgs=prefix.msgs, code="<range>")
    fn = "range_of" if attr_name == "range" else "reverse_range_of"
    base = "ops.%s(%s)" % (fn, prefix.code)
    lsem = _sem_with(vtype.index_type, base + "[0]", MISSING,
                     prefix.sigs, ())
    rsem = _sem_with(vtype.index_type, base + "[2]", MISSING, set(), ())
    # Direction is not statically known for unconstrained prefixes;
    # runtime VArray values built by the kernel are ascending, so the
    # assumption is documented rather than diagnosed.
    return Sem(kind="range", type=vtype.index_type,
               rng=(lsem, "to", rsem), sigs=prefix.sigs,
               msgs=prefix.msgs, code="<range>")


def _type_attribute(vtype, attr_name, ctx, line):
    if vtype is None:
        return error_sem("attribute %r on unknown type" % attr_name, line)
    if vtypes.is_array(vtype):
        rng = getattr(vtype, "index_range", None)
        if rng is not None and isinstance(rng.left, int):
            fake = Sem(kind="value", type=vtype, code="<type>")
            return _array_attribute(fake, attr_name, ctx, line)
        return error_sem(
            "attribute %r needs a constrained array type" % attr_name,
            line)
    if not vtypes.is_scalar(vtype):
        return error_sem("no attribute %r on %s"
                         % (attr_name, vtypes.describe(vtype)), line)
    low, high = vtypes.scalar_bounds(vtype)
    left, right = low, high  # ascending declaration ranges in the subset
    if attr_name in ("left", "low"):
        return value_sem(vtype, "", val=left)
    if attr_name in ("right", "high"):
        return value_sem(vtype, "", val=right)
    if attr_name == "range":
        return Sem(kind="range", type=vtype,
                   rng=(value_sem(vtype, "", val=left), "to",
                        value_sem(vtype, "", val=right)),
                   code="<range>")
    if attr_name == "reverse_range":
        return Sem(kind="range", type=vtype,
                   rng=(value_sem(vtype, "", val=right), "downto",
                        value_sem(vtype, "", val=left)),
                   code="<range>")
    if attr_name in ("pos", "val", "succ", "pred"):
        return Sem(kind="attrfn", type=vtype, code=attr_name,
                   entry=None, rng=(attr_name, vtype),
                   pending=lambda hint, ctx2: error_sem(
                       "attribute %r needs an argument" % attr_name, line))
    return error_sem("no attribute %r on %s"
                     % (attr_name, vtypes.describe(vtype)), line)


def _apply_attr_fn(prefix, items, ctx, line):
    attr_name, vtype = prefix.rng
    if len(items) != 1 or items[0].kind != "pos":
        return error_sem("attribute %r takes one argument" % attr_name,
                         line)
    arg = force(items[0].value, vtype, ctx)
    if arg.kind == "error":
        return arg
    low, high = vtypes.scalar_bounds(vtype)
    if attr_name == "pos":
        return _sem_with(ctx.std.integer, arg.code, arg.val,
                         arg.sigs, arg.msgs)
    if attr_name == "val":
        code = "ops.check_range(%s, %r, %r, %r)" % (
            arg.code, low, high, "'val")
        val = arg.val
        return _sem_with(vtype, code, val, arg.sigs, arg.msgs)
    if attr_name == "succ":
        code = "ops.succ(%s, %r)" % (arg.code, high)
        val = MISSING if arg.val is MISSING else arg.val + 1
        return _sem_with(vtype, code, val, arg.sigs, arg.msgs)
    code = "ops.pred(%s, %r)" % (arg.code, low)
    val = MISSING if arg.val is MISSING else arg.val - 1
    return _sem_with(vtype, code, val, arg.sigs, arg.msgs)


# -- ranges, choices, targets, goals ---------------------------------------------------------


def range_sem(left, direction, right, ctx, line):
    left = force(left, None, ctx)
    right = force(right, left.type, ctx)
    if left.kind == "error" or right.kind == "error":
        return _combine_errors(left, right)
    left2 = left
    if left.type is None and right.type is not None:
        left2 = force(left, right.type, ctx)
    return Sem(kind="range",
               type=left2.type or right.type or ctx.std.integer,
               rng=(left2, direction, right),
               sigs=left2.sigs | right.sigs,
               msgs=left2.msgs + right.msgs, code="<range>")


def goal_value(sem, ctx):
    """Assemble the exprEval result for M_EXPR."""
    sem = force(sem, ctx.expected, ctx)
    if sem.kind == "range":
        sem = error_sem("range used where a value is required", ctx.line)
    ok = sem.kind not in ("error",)
    if ok and ctx.expected is not None and sem.type is not None \
            and not vtypes.same_base(sem.type, ctx.expected):
        sem = sem.with_msgs((
            "line %d: expression of type %s where %s is required"
            % (ctx.line, vtypes.describe(sem.type),
               vtypes.describe(ctx.expected)),))
    return {
        "kind": "value",
        "type": sem.type,
        "code": sem.code,
        "val": None if sem.val is MISSING else sem.val,
        "has_val": sem.val is not MISSING,
        "sigs": sorted(sem.sigs),
        "msgs": list(sem.msgs),
    }


def goal_target(sem, ctx):
    """Assemble the exprEval result for M_TARGET."""
    # Writing (or naming) a mode-out object is fine; only *reading* it
    # is illegal, and that diagnostic comes from value contexts.
    msgs = [m for m in sem.msgs if "cannot be read" not in m]
    lv = sem.lvalue
    if sem.kind == "error":
        return {"kind": "target", "ok": False, "msgs": msgs,
                "type": None, "lvalue": None, "sigs": [], "code": ""}
    if lv is None:
        msgs.append("line %d: not an assignable name" % ctx.line)
        return {"kind": "target", "ok": False, "msgs": msgs,
                "type": None, "lvalue": None, "sigs": [], "code": ""}
    return {
        "kind": "target",
        "ok": True,
        "type": sem.type,
        "lvalue": lv,
        "code": sem.code,
        "sigs": sorted(sem.sigs),
        "msgs": msgs,
    }


def goal_range(sem, ctx):
    """Assemble the exprEval result for M_RANGE (discrete ranges)."""
    if sem.kind == "typemark" or (
            sem.kind == "value" and sem.pending is not None
            and sem.type is not None and sem.entry is None
            and sem.kind == "typemark"):
        vtype = sem.type
        low, high = vtypes.scalar_bounds(vtype)
        sem = Sem(kind="range", type=vtype,
                  rng=(value_sem(vtype, "", val=low), "to",
                       value_sem(vtype, "", val=high)), code="<range>")
    if sem.kind != "range":
        sem2 = force(sem, None, ctx)
        if sem2.kind == "range":
            sem = sem2
        else:
            return {"kind": "range", "ok": False,
                    "msgs": list(sem2.msgs) or [
                        "line %d: not a discrete range" % ctx.line],
                    "type": None}
    left, direction, right = sem.rng
    return {
        "kind": "range",
        "ok": not sem.msgs or all("assumed" in m for m in sem.msgs),
        "type": sem.type,
        "left_code": left.code,
        "right_code": right.code,
        "direction": direction,
        "left_val": None if left.val is MISSING else left.val,
        "right_val": None if right.val is MISSING else right.val,
        "static": left.val is not MISSING and right.val is not MISSING,
        "sigs": sorted(sem.sigs),
        "msgs": list(sem.msgs),
    }


def goal_choice(sem, ctx):
    """Assemble the exprEval result for M_CHOICE (case choices)."""
    if sem.kind == "others":
        return {"kind": "choice", "others": True, "msgs": [],
                "vals": [], "ok": True}
    if sem.kind == "range":
        left, direction, right = sem.rng
        if left.val is MISSING or right.val is MISSING:
            return {"kind": "choice", "others": False, "ok": False,
                    "vals": [],
                    "msgs": ["line %d: case choice range must be static"
                             % ctx.line]}
        lo, hi = sorted((left.val, right.val))
        return {"kind": "choice", "others": False, "ok": True,
                "vals": list(range(lo, hi + 1)), "type": sem.type,
                "msgs": list(sem.msgs)}
    sem = force(sem, ctx.expected, ctx)
    if sem.kind == "error" or sem.val is MISSING:
        msgs = list(sem.msgs) or [
            "line %d: case choice must be a static expression" % ctx.line]
        return {"kind": "choice", "others": False, "ok": False,
                "vals": [], "msgs": msgs}
    return {"kind": "choice", "others": False, "ok": True,
            "vals": [sem.val], "type": sem.type, "msgs": list(sem.msgs)}


def goal_call(sem, items, ctx):
    """Assemble the exprEval result for M_CALL (procedure calls)."""
    msgs = []
    if sem.kind != "nameset":
        return {"kind": "call", "ok": False, "code": "",
                "msgs": list(sem.msgs) or [
                    "line %d: not a procedure name" % ctx.line]}
    procs = [e for e in sem.entries
             if entry_kind(e) == "subprogram" and not e.is_function]
    if not procs:
        return {"kind": "call", "ok": False, "code": "",
                "msgs": ["line %d: %r is not a procedure"
                         % (ctx.line, sem.code)]}
    positional = [it for it in items if it.kind == "pos"]
    named = [it for it in items if it.kind == "named"]
    viable = []
    for cand in procs:
        binding = _try_bind(cand, positional, named, ctx)
        if binding is not None:
            viable.append((cand, binding))
    if len(viable) != 1:
        return {"kind": "call", "ok": False, "code": "",
                "msgs": ["line %d: procedure call to %r is %s"
                         % (ctx.line, sem.code,
                            "ambiguous" if viable else "unmatched")]}
    cand, binding = viable[0]
    sigs = set()
    arg_codes = []
    out_params = []
    for param, arg_sem in zip(cand.params, binding):
        sigs |= arg_sem.sigs
        msgs.extend(arg_sem.msgs)
        if param.obj_class == "signal":
            # Signal-class formals receive the Signal object itself.
            entry = arg_sem.entry
            if entry is not None and entry.is_signal:
                arg_codes.append(entry.py)
            else:
                msgs.append(
                    "line %d: signal parameter %s needs a signal actual"
                    % (ctx.line, param.name))
                arg_codes.append(arg_sem.code)
        else:
            arg_codes.append(arg_sem.code)
        if param.mode in ("out", "inout") and param.obj_class != "signal":
            lv = arg_sem.lvalue
            if lv is None or lv.path:
                msgs.append(
                    "line %d: out parameter %s needs a simple variable "
                    "actual" % (ctx.line, param.name))
                out_params.append("_")
            else:
                out_params.append(lv.base.py)
    call = "%s(%s)" % (cand.py, ", ".join(arg_codes))
    if out_params:
        code = "%s = %s" % (", ".join(out_params), call)
    else:
        code = call
    return {"kind": "call", "ok": not msgs, "code": code,
            "sigs": sorted(sigs), "msgs": msgs}
