"""The compilation context threaded through the principal AG.

One :class:`CompileCtx` per compilation unit, carried by the ``CC``
inherited attribute class.  It bundles the services semantic rules
need: package STANDARD, the ``exprEval`` sub-evaluator (§4.1), the
design-library view for foreign references (§3.4), and a name supply
for generated Python identifiers.
"""

from .expr_grammar import ExprEvaluator
from .lef import mode_token
from .stdpkg import standard


class CompileCtx:
    """Per-unit compilation services."""

    def __init__(self, library=None, work="work", filename=None):
        self.std = standard()
        self.library = library  # LibraryManager or None
        self.work = work  # name of the working library
        #: the source file being compiled; stamped onto every unit at
        #: registration so post-compile tools (``repro lint``, runtime
        #: multi-driver errors) can anchor diagnostics to declarations
        self.filename = filename
        self.expr_eval = ExprEvaluator(self.std, self._resolve_unit)
        self._gensym = 0
        #: set by the unit productions as they learn what they compile
        self.unit_name = "?"
        #: prefix for generated python names (packages use
        #: ``pkg_<name>_`` so cross-unit references are unambiguous)
        self.py_scope = ""

    def _resolve_unit(self, lib_name, unit_name):
        if self.library is None:
            return None
        return self.library.find_unit(lib_name, unit_name)

    def gensym(self, prefix):
        """A fresh generated-code identifier."""
        self._gensym += 1
        return "%s_%d" % (prefix, self._gensym)

    # -- exprEval entry points (the paper's single out-of-line function,
    # split by context flag) ------------------------------------------------

    def eval_expr(self, lef_tokens, env, line=0, expected=None):
        return self.expr_eval(
            list(lef_tokens), "M_EXPR", env, line=line, expected=expected,
            user_attrs=attrs_of(env))

    def eval_target(self, lef_tokens, env, line=0):
        return self.expr_eval(
            list(lef_tokens), "M_TARGET", env, line=line,
            user_attrs=attrs_of(env))

    def eval_range(self, lef_tokens, env, line=0):
        return self.expr_eval(
            list(lef_tokens), "M_RANGE", env, line=line,
            user_attrs=attrs_of(env))

    def eval_choice(self, lef_tokens, env, line=0, expected=None):
        return self.expr_eval(
            list(lef_tokens), "M_CHOICE", env, line=line,
            expected=expected, user_attrs=attrs_of(env))

    def eval_call(self, lef_tokens, env, line=0):
        return self.expr_eval(
            list(lef_tokens), "M_CALL", env, line=line,
            user_attrs=attrs_of(env))


#: The env key under which accumulated attribute specifications ride.
#: Attribute values are part of the environment so that their
#: availability follows declaration order, like any other binding.
ATTRS_KEY = "attribute specifications"


def attrs_of(env):
    """The accumulated AttributeValue tuple visible in ``env``."""
    result = env.lookup(ATTRS_KEY)
    if result.entries:
        return result.entries[0]
    return ()


def bind_attr_value(env, attr_value):
    """Extend ``env`` with one more attribute specification."""
    return env.bind(ATTRS_KEY, attrs_of(env) + (attr_value,))
