"""The expression AG (§4.1) — the second of the two cascaded grammars.

Parses LEF token lists.  Because identifiers were already resolved by
the principal AG into distinct token kinds (OBJ / NAMESET / TYPEMARK /
...), the phrase structure built here differs for identical source
text: ``X (Y)`` parses through ``fcall`` when X is a subprogram,
through the indexing/slicing production on ``obj_name`` when X is an
object, and through ``conv`` when X is a type mark — the paper's
motivating example, realized syntactically rather than by semantic
dispatch on a *united* production.

A synthetic first token (``M_EXPR`` / ``M_TARGET`` / ``M_RANGE`` /
``M_CHOICE`` / ``M_CALL``) selects the goal phrase — the "flags
indicating the context in which this expression occurs" that exprEval
receives.
"""

from ..ag import AGSpec, SYN, INH, SubEvaluator
from ..ag.lexer import Token

from . import expr_sem as sem
from .lef import LEF_KINDS, mode_token


def _binary(op_kind):
    def rule(left, right, ctx):
        return sem.binary_sem(op_kind, left, right, ctx, ctx.line)

    return rule


def _unary(op_kind):
    def rule(operand, ctx):
        return sem.unary_sem(op_kind, operand, ctx, ctx.line)

    return rule


def _call_or_items(prefix_entries, items, ctx, text):
    """NAMESET ( items ): a function call — or a pending procedure
    call when only procedures fit (finished by the M_CALL goal)."""
    from .symtab import entry_kind

    result = sem.resolve_call(prefix_entries, list(items), ctx,
                              ctx.line, text)
    if result.kind != "error":
        return result
    procs = [e for e in prefix_entries
             if entry_kind(e) == "subprogram" and not e.is_function]
    if procs:
        return sem.Sem(kind="call_items", entries=list(prefix_entries),
                       rng=tuple(items), code=text)
    return result


def _goal_call(s, ctx):
    if s.kind == "call_items":
        return sem.goal_call(
            sem.Sem(kind="nameset", entries=s.entries, code=s.code),
            list(s.rng), ctx)
    return sem.goal_call(s, [], ctx)


def _formal_of(choice_sems):
    """Extract a simple formal name from a one-element choice list."""
    if len(choice_sems) != 1:
        return None
    c = choice_sems[0]
    if c.kind == "rawid":
        return c.code
    if c.entry is not None and getattr(c.entry, "name", None):
        return c.entry.name
    return None


def _named_item(choices, value, ctx):
    expanded = []
    for c in choices:
        if c.kind == "range":
            expanded.append(c)
        else:
            expanded.append(c)
    return sem.Item("named", value=value, formal=_formal_of(choices),
                    choices=expanded, line=ctx.line)


def _make_grammar():
    g = AGSpec("vhdl_expr")
    g.terminals(*LEF_KINDS)
    g.terminals("UNARY")

    g.precedence("left", "AND", "OR", "NAND", "NOR", "XOR")
    g.precedence("left", "EQ", "NE", "LT", "LE", "GT", "GE")
    g.precedence("left", "PLUS", "MINUS", "AMP")
    g.precedence("left", "UNARY")
    g.precedence("left", "STAR", "SLASH", "MOD", "REM")
    g.precedence("nonassoc", "POW")
    g.precedence("left", "NOT", "ABS")

    g.attr_class("ENV", INH)
    g.attr_class("CTX", INH)
    g.attr_group("X", "ENV", "CTX")

    g.nonterminal("goal", ("GOAL", SYN), "X")
    for nt in ("e", "primary", "paren", "name", "base_name", "obj_name",
               "fcall", "conv", "qual", "tattr", "range_spec",
               "case_choice", "choice"):
        g.nonterminal(nt, ("SEM", SYN), "X")
    g.nonterminal("items", ("ITEMS", SYN), "X")
    g.nonterminal("choice_list", ("CHOICES", SYN), "X")
    g.set_start("goal")

    # ---- goals -----------------------------------------------------------

    p = g.production("g_expr", "goal -> M_EXPR e")
    p.rule("goal.GOAL", "e.SEM", "goal.CTX", fn=sem.goal_value)
    p = g.production("g_target", "goal -> M_TARGET name")
    p.rule("goal.GOAL", "name.SEM", "goal.CTX", fn=sem.goal_target)
    p = g.production("g_range", "goal -> M_RANGE range_spec")
    p.rule("goal.GOAL", "range_spec.SEM", "goal.CTX", fn=sem.goal_range)
    p = g.production("g_choice", "goal -> M_CHOICE case_choice")
    p.rule("goal.GOAL", "case_choice.SEM", "goal.CTX", fn=sem.goal_choice)
    p = g.production("g_call", "goal -> M_CALL name")
    p.rule("goal.GOAL", "name.SEM", "goal.CTX", fn=_goal_call)

    # ---- binary and unary operators ----------------------------------------

    binaries = [
        ("AND", "and"), ("OR", "or"), ("NAND", "nand"), ("NOR", "nor"),
        ("XOR", "xor"), ("EQ", "eq"), ("NE", "ne"), ("LT", "lt"),
        ("LE", "le"), ("GT", "gt"), ("GE", "ge"), ("PLUS", "add"),
        ("MINUS", "sub"), ("AMP", "amp"), ("STAR", "mul"),
        ("SLASH", "div"), ("MOD", "mod"), ("REM", "rem"), ("POW", "pow"),
    ]
    for term, tag in binaries:
        p = g.production("e_%s" % tag, "e -> e0 %s e1" % term)
        p.rule("e0.SEM", "e1.SEM", "e2.SEM", "e0.CTX", fn=_binary(term))
    p = g.production("e_not", "e -> NOT e0")
    p.rule("e0.SEM", "e1.SEM", "e0.CTX", fn=_unary("NOT"))
    p = g.production("e_abs", "e -> ABS e0")
    p.rule("e0.SEM", "e1.SEM", "e0.CTX", fn=_unary("ABS"))
    p = g.production("e_uminus", "e -> MINUS e0", prec="UNARY")
    p.rule("e0.SEM", "e1.SEM", "e0.CTX", fn=_unary("MINUS"))
    p = g.production("e_uplus", "e -> PLUS e0", prec="UNARY")
    p.rule("e0.SEM", "e1.SEM", "e0.CTX", fn=_unary("PLUS"))
    p = g.production("e_primary", "e -> primary")
    p.copy("e.SEM", "primary.SEM")

    # ---- primaries ------------------------------------------------------------

    p = g.production("p_name", "primary -> name")
    p.copy("primary.SEM", "name.SEM")
    p = g.production("p_int", "primary -> INT")
    p.rule("primary.SEM", "INT.value", "primary.CTX",
           fn=sem.int_literal_sem)
    p = g.production("p_real", "primary -> REAL")
    p.rule("primary.SEM", "REAL.value", "primary.CTX",
           fn=sem.int_literal_sem)
    p = g.production("p_phys_int", "primary -> INT UNIT")
    p.rule("primary.SEM", "INT.value", "UNIT.value", "INT.line",
           fn=sem.physical_literal_sem)
    p = g.production("p_phys_real", "primary -> REAL UNIT")
    p.rule("primary.SEM", "REAL.value", "UNIT.value", "REAL.line",
           fn=sem.physical_literal_sem)
    p = g.production("p_unit", "primary -> UNIT")
    p.rule("primary.SEM", "UNIT.value", "UNIT.line",
           fn=lambda u, line: sem.physical_literal_sem(1, u, line))
    p = g.production("p_str", "primary -> STR")
    p.rule("primary.SEM", "STR.value", "STR.line",
           fn=sem.string_literal_sem)
    p = g.production("p_bitstr", "primary -> BITSTR")
    p.rule("primary.SEM", "BITSTR.value", "BITSTR.line",
           fn=sem.bitstring_literal_sem)
    p = g.production("p_paren", "primary -> paren")
    p.copy("primary.SEM", "paren.SEM")

    p = g.production("paren_items", "paren -> LP items RP")
    p.rule("paren.SEM", "items.ITEMS", "paren.CTX", "LP.line",
           fn=lambda items, ctx, line: sem.paren_sem(
               list(items), ctx, ctx.line or line))

    # ---- names: the §4.1 phrase structures -----------------------------------

    p = g.production("n_obj", "name -> obj_name")
    p.copy("name.SEM", "obj_name.SEM")
    p = g.production("n_fcall", "name -> fcall")
    p.copy("name.SEM", "fcall.SEM")
    p = g.production("n_conv", "name -> conv")
    p.copy("name.SEM", "conv.SEM")
    p = g.production("n_qual", "name -> qual")
    p.copy("name.SEM", "qual.SEM")
    p = g.production("n_tattr", "name -> tattr")
    p.copy("name.SEM", "tattr.SEM")
    p = g.production("n_nameset", "name -> NAMESET")
    p.rule("name.SEM", "NAMESET.value", "NAMESET.text", "NAMESET.line",
           fn=sem.nameset_sem)
    p = g.production("n_typemark", "name -> TYPEMARK")
    p.rule("name.SEM", "TYPEMARK.value", fn=sem.typemark_sem)
    p = g.production("n_rawid", "name -> RAWID")
    p.rule("name.SEM", "RAWID.value", "RAWID.text", "RAWID.line",
           fn=lambda v, t, ln: sem.rawid_sem(Token("RAWID", t, v, ln)))

    p = g.production("b_obj", "base_name -> obj_name")
    p.copy("base_name.SEM", "obj_name.SEM")
    p = g.production("b_fcall", "base_name -> fcall")
    p.copy("base_name.SEM", "fcall.SEM")
    p = g.production("b_conv", "base_name -> conv")
    p.copy("base_name.SEM", "conv.SEM")
    p = g.production("b_qual", "base_name -> qual")
    p.copy("base_name.SEM", "qual.SEM")
    p = g.production("b_tattr", "base_name -> tattr")
    p.copy("base_name.SEM", "tattr.SEM")
    p = g.production("b_rawid", "base_name -> RAWID")
    p.rule("base_name.SEM", "RAWID.value", "RAWID.text", "RAWID.line",
           fn=lambda v, t, ln: sem.rawid_sem(Token("RAWID", t, v, ln)))

    p = g.production("o_obj", "obj_name -> OBJ")
    p.rule("obj_name.SEM", "OBJ.value", "obj_name.CTX",
           fn=lambda entry, ctx: sem.object_sem(entry, ctx))
    p = g.production("o_apply", "obj_name -> base_name LP items RP")
    p.rule("obj_name.SEM", "base_name.SEM", "items.ITEMS",
           "obj_name.CTX",
           fn=lambda pfx, items, ctx: sem.apply_items(
               pfx, list(items), ctx, ctx.line))
    p = g.production("o_select", "obj_name -> base_name DOT RAWID")
    p.rule("obj_name.SEM", "base_name.SEM", "RAWID.text",
           "obj_name.CTX",
           fn=lambda pfx, field, ctx: sem.selection_sem(
               pfx, field, ctx, ctx.line))
    p = g.production("o_attr", "obj_name -> base_name TICK RAWID")
    p.rule("obj_name.SEM", "base_name.SEM", "RAWID.text",
           "obj_name.CTX",
           fn=lambda pfx, attr, ctx: sem.attribute_sem(
               pfx, attr, ctx, ctx.line))

    # The call phrase structure: distinct because the prefix token is
    # NAMESET, not OBJ — "parsed according to the expression AG's
    # phrase-structure for a subprogram invocation".
    p = g.production("f_call", "fcall -> NAMESET LP items RP")
    p.rule("fcall.SEM", "NAMESET.value", "items.ITEMS", "fcall.CTX",
           "NAMESET.text", fn=_call_or_items)

    # The conversion phrase structure: prefix token is TYPEMARK.
    p = g.production("c_conv", "conv -> TYPEMARK LP e RP")
    p.rule("conv.SEM", "TYPEMARK.value", "e.SEM", "conv.CTX",
           fn=lambda t, operand, ctx: sem.conversion_sem(
               t, [sem.Item("pos", value=operand)], ctx, ctx.line))

    p = g.production("q_qual", "qual -> TYPEMARK TICK paren")
    p.rule("qual.SEM", "TYPEMARK.value", "paren.SEM", "qual.CTX",
           fn=lambda t, paren, ctx: sem.qualified_sem(
               t, paren, ctx, ctx.line))

    p = g.production("t_attr", "tattr -> TYPEMARK TICK RAWID")
    p.rule("tattr.SEM", "TYPEMARK.value", "RAWID.text", "tattr.CTX",
           fn=lambda t, attr, ctx: sem.attribute_sem(
               sem.typemark_sem(t), attr, ctx, ctx.line))

    # ---- item lists (arguments, aggregates, indexes, slices) ------------------

    g.nonterminal("item", ("ITEM", SYN), "X")
    p = g.production("items_one", "items -> item")
    p.rule("items.ITEMS", "item.ITEM", fn=lambda it: (it,))
    p = g.production("items_more", "items -> items0 COMMA item")
    p.rule("items0.ITEMS", "items1.ITEMS", "item.ITEM",
           fn=lambda items, it: items + (it,))

    p = g.production("item_pos", "item -> e")
    p.rule("item.ITEM", "e.SEM",
           fn=lambda s: sem.Item("pos", value=s))
    p = g.production("item_range_to", "item -> e0 TO e1")
    p.rule("item.ITEM", "e0.SEM", "e1.SEM", "item.CTX",
           fn=lambda l, r, ctx: sem.Item(
               "range", rng=sem.range_sem(l, "to", r, ctx, ctx.line).rng,
               value=None, line=ctx.line))
    p = g.production("item_range_downto", "item -> e0 DOWNTO e1")
    p.rule("item.ITEM", "e0.SEM", "e1.SEM", "item.CTX",
           fn=lambda l, r, ctx: sem.Item(
               "range",
               rng=sem.range_sem(l, "downto", r, ctx, ctx.line).rng,
               value=None, line=ctx.line))
    p = g.production("item_named", "item -> choice_list ARROW e")
    p.rule("item.ITEM", "choice_list.CHOICES", "e.SEM", "item.CTX",
           fn=_named_item)
    p = g.production("item_others", "item -> OTHERS ARROW e")
    p.rule("item.ITEM", "e.SEM",
           fn=lambda v: sem.Item("others", value=v))

    # ---- choices (aggregate keys, case alternatives) ---------------------------

    p = g.production("choices_one", "choice_list -> choice")
    p.rule("choice_list.CHOICES", "choice.SEM", fn=lambda c: (c,))
    p = g.production("choices_more", "choice_list -> choice_list0 BAR choice")
    p.rule("choice_list0.CHOICES", "choice_list1.CHOICES", "choice.SEM",
           fn=lambda cs, c: cs + (c,))
    p = g.production("choice_e", "choice -> e")
    p.copy("choice.SEM", "e.SEM")
    p = g.production("choice_to", "choice -> e0 TO e1")
    p.rule("choice.SEM", "e0.SEM", "e1.SEM", "choice.CTX",
           fn=lambda l, r, ctx: sem.range_sem(l, "to", r, ctx, ctx.line))
    p = g.production("choice_downto", "choice -> e0 DOWNTO e1")
    p.rule("choice.SEM", "e0.SEM", "e1.SEM", "choice.CTX",
           fn=lambda l, r, ctx: sem.range_sem(
               l, "downto", r, ctx, ctx.line))

    # ---- discrete ranges (M_RANGE) ------------------------------------------------

    p = g.production("r_single", "range_spec -> e")
    p.copy("range_spec.SEM", "e.SEM")
    p = g.production("r_to", "range_spec -> e0 TO e1")
    p.rule("range_spec.SEM", "e0.SEM", "e1.SEM", "range_spec.CTX",
           fn=lambda l, r, ctx: sem.range_sem(l, "to", r, ctx, ctx.line))
    p = g.production("r_downto", "range_spec -> e0 DOWNTO e1")
    p.rule("range_spec.SEM", "e0.SEM", "e1.SEM", "range_spec.CTX",
           fn=lambda l, r, ctx: sem.range_sem(
               l, "downto", r, ctx, ctx.line))
    p = g.production("r_mark_to", "range_spec -> e0 RANGEKW e1 TO e2")
    p.rule("range_spec.SEM", "e0.SEM", "e1.SEM", "e2.SEM",
           "range_spec.CTX", fn=_range_with_mark("to"))
    p = g.production("r_mark_downto",
                     "range_spec -> e0 RANGEKW e1 DOWNTO e2")
    p.rule("range_spec.SEM", "e0.SEM", "e1.SEM", "e2.SEM",
           "range_spec.CTX", fn=_range_with_mark("downto"))

    # ---- case choices (M_CHOICE) ----------------------------------------------------

    p = g.production("cc_e", "case_choice -> e")
    p.copy("case_choice.SEM", "e.SEM")
    p = g.production("cc_to", "case_choice -> e0 TO e1")
    p.rule("case_choice.SEM", "e0.SEM", "e1.SEM", "case_choice.CTX",
           fn=lambda l, r, ctx: sem.range_sem(l, "to", r, ctx, ctx.line))
    p = g.production("cc_downto", "case_choice -> e0 DOWNTO e1")
    p.rule("case_choice.SEM", "e0.SEM", "e1.SEM", "case_choice.CTX",
           fn=lambda l, r, ctx: sem.range_sem(
               l, "downto", r, ctx, ctx.line))
    p = g.production("cc_others", "case_choice -> OTHERS")
    p.rule("case_choice.SEM", fn=lambda: sem.Sem(kind="others"))

    return g.finish()


def _range_with_mark(direction):
    def rule(mark, left, right, ctx):
        vtype = mark.type if mark.kind == "typemark" else None
        if vtype is not None:
            left = sem.force(left, vtype, ctx)
            right = sem.force(right, vtype, ctx)
        return sem.range_sem(left, direction, right, ctx, ctx.line)

    return rule


_GRAMMAR = None


def expr_grammar():
    """The compiled expression AG (built once per session, like the
    evaluator Linguist generates once per AG)."""
    global _GRAMMAR
    if _GRAMMAR is None:
        _GRAMMAR = _make_grammar()
    return _GRAMMAR


class ExprEvaluator:
    """The ``exprEval`` out-of-line function of §4.1.

    Wraps the generated expression evaluator behind a functional
    interface: takes a LEF token list plus the context arguments (the
    expected type, line, level, flags) and returns the goal attributes
    of the expression AG.
    """

    def __init__(self, std, unit_resolver=None):
        self.sub = SubEvaluator(expr_grammar(), goals=["GOAL"])
        self.std = std
        self.unit_resolver = unit_resolver

    @property
    def invocations(self):
        return self.sub.invocations

    def __call__(self, lef_tokens, mode, env, line=0, level=0,
                 expected=None, user_attrs=()):
        ctx = sem.Ctx(env=env, std=self.std, line=line, level=level,
                      expected=expected, unit_resolver=self.unit_resolver,
                      user_attrs=user_attrs)
        tokens = [mode_token(mode, line)] + list(lef_tokens)
        result = self.sub.try_call(
            tokens,
            inherited={"ENV": env, "CTX": ctx},
            on_error=lambda exc: {"GOAL": {
                "kind": "error", "ok": False, "code": "None",
                "type": None, "val": None, "has_val": False, "sigs": [],
                "msgs": ["line %d: expression syntax: %s" % (line, exc)],
            }},
        )
        return result["GOAL"]
