"""The VHDL scanner (IEEE 1076-1987 lexical rules).

Identifiers are case-insensitive: tokens carry the original text, and
``Token.value`` holds the lower-cased name used for lookup.  Abstract
literals (with underscores and based forms), character literals, string
literals with doubled-quote escapes, and bit-string literals are all
handled.

One classic VHDL lexing hazard: in a qualified expression like
``bit'('1')`` the characters ``'('`` would scan as a character literal,
but a tick directly after an identifier or ``)`` is always an
attribute/qualification tick.  The CHAR rule therefore carries a
negative lookbehind on identifier characters and ``)``.
"""

from ..ag import LexerSpec

KEYWORDS = [
    "abs", "access", "after", "alias", "all", "and", "architecture",
    "array", "assert", "attribute", "begin", "block", "body", "buffer",
    "bus", "case", "component", "configuration", "constant",
    "disconnect", "downto", "else", "elsif", "end", "entity", "exit",
    "file", "for", "function", "generate", "generic", "guarded", "if",
    "in", "inout", "is", "label", "library", "linkage", "loop", "map",
    "mod", "nand", "new", "next", "nor", "not", "null", "of", "on",
    "open", "or", "others", "out", "package", "port", "procedure",
    "process", "range", "record", "register", "rem", "report", "return",
    "select", "severity", "signal", "subtype", "then", "to",
    "transport", "type", "units", "until", "use", "variable", "wait",
    "when", "while", "with", "xor",
]


def _parse_abstract(text):
    """Integer or real literal value, handling underscores, based
    literals (2#1010#), and exponents."""
    text = text.replace("_", "").lower()
    if "#" in text:
        base_s, _, rest = text.partition("#")
        digits, _, exp_s = rest.partition("#")
        base = int(base_s)
        exp = int(exp_s.lstrip("e") or "0") if exp_s else 0
        if "." in digits:
            whole, _, frac = digits.partition(".")
            value = int(whole, base) + (
                int(frac, base) / (base ** len(frac)) if frac else 0.0
            )
            return value * (base**exp)
        return int(digits, base) * (base**exp)
    if "." in text:
        return float(text)
    if "e" in text:
        mantissa, _, exp = text.partition("e")
        return int(mantissa) * (10 ** int(exp))
    return int(text)


def _string_value(text):
    """Unquote a string literal, collapsing doubled quotes."""
    return text[1:-1].replace('""', '"')


def _bitstring_value(text):
    """Expand a bit-string literal to a string of 0/1 characters."""
    base_ch = text[0].lower()
    digits = text[2:-1].replace("_", "")
    width = {"b": 1, "o": 3, "x": 4}[base_ch]
    base = {"b": 2, "o": 8, "x": 16}[base_ch]
    bits = []
    for ch in digits:
        bits.append(format(int(ch, base), "0%db" % width))
    return "".join(bits)


def _make_lexer():
    lex = LexerSpec("vhdl")
    lex.skip(r"\s+")
    lex.skip(r"--[^\n]*")
    lex.token(
        "BITSTRING", r"[bBoOxX]\"[0-9a-fA-F_]*\"", action=_bitstring_value
    )
    lex.token("ID", r"[a-zA-Z][a-zA-Z0-9_]*", action=str.lower)
    lex.token(
        "ABSTRACT",
        r"\d[\d_]*#[\da-fA-F_]+(\.[\da-fA-F_]+)?#([eE][+-]?\d+)?"
        r"|\d[\d_]*\.\d[\d_]*([eE][+-]?\d+)?"
        r"|\d[\d_]*([eE]\+?\d+)?",
        action=_parse_abstract,
    )
    # A character literal cannot directly follow an identifier or a
    # closing parenthesis — there the tick is an attribute tick.
    lex.token("CHAR", r"(?<![\w)])'[^']'", action=lambda t: t)
    lex.token("STRING", r'"([^"]|"")*"', action=_string_value)
    lex.token("ARROW", r"=>")
    lex.token("POW", r"\*\*")
    lex.token("COLONEQ", r":=")
    lex.token("NE", r"/=")
    lex.token("GE", r">=")
    lex.token("LE", r"<=")
    lex.token("BOX", r"<>")
    lex.token("AMP", r"&")
    lex.token("TICK", r"'")
    lex.token("LP", r"\(")
    lex.token("RP", r"\)")
    lex.token("STAR", r"\*")
    lex.token("PLUS", r"\+")
    lex.token("COMMA", r",")
    lex.token("MINUS", r"-")
    lex.token("DOT", r"\.")
    lex.token("SLASH", r"/")
    lex.token("COLON", r":")
    lex.token("SEMI", r";")
    lex.token("LT", r"<")
    lex.token("EQ", r"=")
    lex.token("GT", r">")
    lex.token("BAR", r"\|")
    lex.keywords("ID", KEYWORDS, case_insensitive=True)
    return lex.build()


_LEXER = None


def lexer():
    global _LEXER
    if _LEXER is None:
        _LEXER = _make_lexer()
    return _LEXER


def scan(text, filename="<input>"):
    """Scan VHDL source into tokens."""
    return lexer().scan(text, filename)


def token_kinds():
    """All terminal names the VHDL scanner can produce."""
    return lexer()._spec.token_kinds()
