"""Symbol-table entry behaviors.

Entries are VIF nodes (classes generated from ``repro/vif/schema.vif``)
with the behavior defined here — the paper's design where "in our VHDL
compiler [the symbol table] is done by the VIF, both foreign VIF read
from the library, and domestic VIF created as part of processing the
current compilation unit" (§4.3).

The *environment* that maps identifiers to entries is the applicative
:class:`repro.applicative.Env`; this module adds the VHDL-specific
classification helpers the two AGs use to build LEF tokens and resolve
overloading.
"""

from . import vtypes


class ObjectEntryBehavior:
    """A declared object: constant, variable, signal, generic, port,
    subprogram parameter, or loop parameter.

    ``py`` is the Python runtime reference the code generator emits for
    this object (e.g. ``s_count`` for a signal); ``value`` carries the
    statically known value of a constant or generic when there is one.
    """

    __slots__ = ()
    entry_kind = "object"
    overloadable = False

    @property
    def is_signal(self):
        return self.obj_class in ("signal", "port") or (
            self.obj_class == "param" and self.signal_kind == "signal"
        )

    @property
    def is_readable(self):
        return self.mode != "out"

    @property
    def is_writable(self):
        return self.obj_class not in ("constant", "generic") and (
            self.mode in ("out", "inout", "")
            or self.obj_class in ("variable", "signal", "loopvar")
        )

    def static_value(self):
        return self.value if self.has_value else None


class EnumLiteralEntryBehavior:
    """An enumeration literal — overloadable, like a parameterless
    function returning its type (the Ada/VHDL model)."""

    __slots__ = ()
    entry_kind = "enum_literal"
    overloadable = True


class PhysicalUnitEntryBehavior:
    """A unit name of a physical type (``ns``, ``ms``, ...): scales an
    abstract literal into the type's primary unit."""

    __slots__ = ()
    entry_kind = "physical_unit"
    overloadable = False


class ParamEntryBehavior:
    """One formal parameter of a subprogram."""

    __slots__ = ()
    entry_kind = "param"
    overloadable = False


class SubprogramEntryBehavior:
    """A function or procedure, possibly one of an overload set.

    ``predefined_op`` is the operator symbol for implicitly declared
    operators ("+", "and", ...); the code generator maps those to
    :mod:`repro.sim.runtime` calls instead of user code.
    """

    __slots__ = ()
    entry_kind = "subprogram"
    overloadable = True

    @property
    def is_function(self):
        return self.sub_kind == "function"

    def min_args(self):
        return sum(1 for p in self.params if not p.has_default)

    def max_args(self):
        return len(self.params)

    def accepts_arity(self, n):
        return self.min_args() <= n <= self.max_args()

    def param_by_name(self, name):
        for p in self.params:
            if p.name == name:
                return p
        return None


class AliasEntryBehavior:
    """A restricted Ada-renaming: another view of an existing object."""

    __slots__ = ()
    entry_kind = "alias"
    overloadable = False

    def resolve(self):
        """The ultimate non-alias entry."""
        target = self.target
        while getattr(target, "entry_kind", None) == "alias":
            target = target.target
        return target


class AttributeDeclEntryBehavior:
    """A user-defined attribute declaration: ``attribute A : T;``."""

    __slots__ = ()
    entry_kind = "attribute_decl"
    overloadable = False


class AttributeValueBehavior:
    """One attribute specification: the value of attribute ``attr`` on
    the declared item ``target``."""

    __slots__ = ()
    entry_kind = "attribute_value"


class ComponentEntryBehavior:
    """A component declaration — "a kind of socket" in the paper's
    hardware analogy (§3.3)."""

    __slots__ = ()
    entry_kind = "component"
    overloadable = False

    def port_by_name(self, name):
        for p in self.ports:
            if p.name == name:
                return p
        return None

    def generic_by_name(self, name):
        for g in self.generics:
            if g.name == name:
                return g
        return None


class _UnitBehavior:
    __slots__ = ()
    overloadable = False

    def visible_decls(self):
        """Entries a USE clause can import from this unit."""
        return list(self.decls)


class EntityUnitBehavior(_UnitBehavior):
    """An entity: the interface of a family of devices (§3.3)."""

    __slots__ = ()
    entry_kind = "entity"
    unit_class = "entity"

    def port_by_name(self, name):
        for p in self.ports:
            if p.name == name:
                return p
        return None

    def generic_by_name(self, name):
        for g in self.generics:
            if g.name == name:
                return g
        return None


class ArchUnitBehavior(_UnitBehavior):
    """An architecture: 'a board with sockets' (§3.3)."""

    __slots__ = ()
    entry_kind = "architecture"
    unit_class = "architecture"


class InstanceEntryBehavior:
    """A component instantiation: 'an instance of a socket'."""

    __slots__ = ()
    entry_kind = "instance"

    @property
    def is_bound(self):
        return bool(self.bound_entity)


class PackageUnitBehavior(_UnitBehavior):
    __slots__ = ()
    entry_kind = "package"
    unit_class = "package"


class PackageBodyUnitBehavior(_UnitBehavior):
    __slots__ = ()
    entry_kind = "package_body"
    unit_class = "package_body"


class ConfigUnitBehavior(_UnitBehavior):
    """A configuration: 'what actual chips to plug in the sockets'."""

    __slots__ = ()
    entry_kind = "configuration"
    unit_class = "configuration"

    def visible_decls(self):
        return []


# -- classification helpers ---------------------------------------------------


def entry_kind(entry):
    """The classification tag of any environment entry."""
    kind = getattr(entry, "entry_kind", None)
    if kind is not None:
        return kind
    if getattr(entry, "kind", None) in (
        "enum",
        "integer",
        "physical",
        "float",
        "array",
        "record",
        "subtype",
    ):
        return "type"
    return "unknown"


def is_type_entry(entry):
    return entry_kind(entry) == "type"


def is_object_entry(entry):
    return entry_kind(entry) == "object"


def is_overloadable(entry):
    return bool(getattr(entry, "overloadable", False))


def deref_alias(entry):
    """Follow alias chains to the real entry."""
    if entry_kind(entry) == "alias":
        return entry.resolve()
    return entry


def entry_type(entry):
    """The VHDL type associated with an entry, if any."""
    kind = entry_kind(entry)
    if kind == "type":
        return entry
    if kind in ("object", "param", "alias", "attribute_decl"):
        return entry.vtype
    if kind == "enum_literal":
        return entry.etype
    if kind == "subprogram" and entry.is_function:
        return entry.result
    return None


def describe_entry(entry):
    """Readable description for diagnostics."""
    kind = entry_kind(entry)
    name = getattr(entry, "name", "?")
    if kind == "type":
        return "type %s" % name
    if kind == "object":
        return "%s %s" % (entry.obj_class, name)
    if kind == "subprogram":
        return "%s %s" % (entry.sub_kind, name)
    return "%s %s" % (kind, name)


def lookup_user_attribute(user_attrs, target, attr_name):
    """Find the AttributeValue for (target, attr_name), following the
    §3.2 rule that a user-defined attribute can shadow a predefined
    one.  ``user_attrs`` is a unit's attribute-specification list."""
    target = deref_alias(target)
    for av in user_attrs:
        if av.target is target and av.attr.name == attr_name:
            return av
    return None
