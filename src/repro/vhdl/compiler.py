"""The compiler driver.

"The compiler accepts a file containing compilation units, a list of
compiler directives, a working library ... and a reference library"
(§2).  :class:`Compiler` wires the scanner, the generated principal-AG
evaluator, exprEval cascading, VIF emission into the library, and the
back-end compile of the generated model — and times each phase, which
is what benchmark E4 (the paper's §2.2 time breakdown) reports.
"""

import time

from ..ag.errors import AGError
from .codegen.pymodel import compile_model
from .compile_ctx import CompileCtx
from .grammar import principal_grammar
from .lexer import scan
from .library import LibraryManager


class CompileError(Exception):
    """Compilation failed; ``messages`` lists the diagnostics."""

    def __init__(self, messages):
        self.messages = list(messages)
        super().__init__(
            "%d error(s):\n%s" % (len(self.messages),
                                  "\n".join(self.messages[:20])))


class CompileResult:
    """Outcome of compiling one source file."""

    def __init__(self, units, messages, timings, source_lines,
                 expr_evals, registered_units=()):
        self.units = list(units)
        self.messages = list(messages)
        self.timings = dict(timings)
        self.source_lines = source_lines
        self.expr_evals = expr_evals
        #: (lib, key) library entries this compile registered, in
        #: registration order — the incremental build driver's view.
        self.registered_units = list(registered_units)

    @property
    def ok(self):
        return not self.messages

    def unit_names(self):
        """Names of the compiled units.

        Every VIF unit kind guarantees a ``name`` field; a unit
        arriving here without one is an internal error worth a clear
        diagnostic, not a silent ``"?"`` placeholder.
        """
        names = []
        for u in self.units:
            name = getattr(u, "name", None)
            if not name:
                raise CompileError([
                    "internal: compilation produced an unnamed %s "
                    "unit — VIF units must carry a name"
                    % type(u).__name__])
            names.append(name)
        return names

    def __repr__(self):
        # repr must never raise; show a placeholder for the
        # pathological unnamed case unit_names() diagnoses loudly.
        shown = ", ".join(
            getattr(u, "name", None) or "<unnamed>" for u in self.units)
        return "<CompileResult %s: %d message(s)>" % (
            shown, len(self.messages))


class Compiler:
    """Compiles VHDL source into a design library."""

    def __init__(self, library=None, work="work", root=None,
                 strict=True):
        self.library = library or LibraryManager(root=root, work=work)
        self.work = work
        self.strict = strict
        # Force generation of the translator up front (the paper's
        # Linguist run happens before any compilation).
        principal_grammar()

    def compile(self, text, filename="<input>"):
        """Compile all design units in ``text``.

        Raises :class:`CompileError` on diagnostics when ``strict``;
        otherwise returns them in the result.
        """
        timings = {}
        cc = CompileCtx(self.library, self.work)
        grammar = principal_grammar()

        t0 = time.perf_counter()
        tokens = scan(text, filename)
        timings["scan"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        try:
            tree = grammar.parse(tokens, filename)
        except AGError as exc:
            raise CompileError([str(exc)]) from exc
        timings["parse"] = time.perf_counter() - t0

        registered_before = len(self.library.compile_order)
        t0 = time.perf_counter()
        expr0 = cc.expr_eval.invocations
        try:
            out = grammar.evaluate(
                tree,
                inherited={
                    "ENV": None,
                    "CC": cc,
                    "LEVEL": 0,
                    "RESULT": None,
                    "SCOPE": "",
                },
                goals=["UNITS", "MSGS"],
            )
        except AGError as exc:
            raise CompileError([str(exc)]) from exc
        timings["attribute_evaluation"] = time.perf_counter() - t0
        expr_evals = cc.expr_eval.invocations - expr0

        units = list(out["UNITS"])
        messages = list(out["MSGS"])

        # Back-end compile of the generated models (the host-compiler
        # phase of the paper's pipeline).
        t0 = time.perf_counter()
        for unit in units:
            py = getattr(unit, "py_source", "")
            if py and "elaborate" in py:
                try:
                    compile_model(py, getattr(unit, "name", "?"))
                except SyntaxError as exc:
                    messages.append(
                        "internal: generated model for %s does not "
                        "compile: %s" % (getattr(unit, "name", "?"),
                                         exc))
        timings["model_compile"] = time.perf_counter() - t0

        # VIF writing happened inside register_unit during evaluation;
        # measure it separately by re-serializing (cheap, and keeps
        # the phase visible to the E4 bench).
        t0 = time.perf_counter()
        for lib, key in self.library.compile_order[registered_before:]:
            self.library.payload_of(lib, key)
        timings["vif"] = time.perf_counter() - t0

        source_lines = _count_lines(text)
        registered = self.library.compile_order[registered_before:]
        result = CompileResult(units, messages, timings, source_lines,
                               expr_evals, registered_units=registered)
        if messages and self.strict:
            raise CompileError(messages)
        return result

    def compile_file(self, path):
        with open(path) as f:
            return self.compile(f.read(), filename=path)


def _count_lines(text):
    """Source lines stripped of blanks and comments (Figure 2's
    counting convention)."""
    n = 0
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("--"):
            n += 1
    return n
