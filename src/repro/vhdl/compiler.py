"""The compiler driver.

"The compiler accepts a file containing compilation units, a list of
compiler directives, a working library ... and a reference library"
(§2).  :class:`Compiler` wires the scanner, the generated principal-AG
evaluator, exprEval cascading, VIF emission into the library, and the
back-end compile of the generated model.

Phase timing goes through the span-based tracer of
:mod:`repro.diag.trace` — the same phase names the E4 bench (§2.2 time
breakdown) reports are kept in ``CompileResult.timings``, but every
phase is also a Chrome trace event, so a multi-file (or multi-worker)
build renders as one timeline.  Diagnostics are collected structured
(:mod:`repro.diag.diagnostic`): every message carries an error code
and a file/line/column span next to the legacy string form.
"""

from ..ag.errors import AGError
from ..diag import AGObserver, DiagnosticEngine, Tracer
from .codegen.pymodel import compile_model
from .compile_ctx import CompileCtx
from .grammar import principal_grammar
from .lexer import scan
from .library import LibraryManager


class CompileError(Exception):
    """Compilation failed; ``messages`` lists the diagnostics.

    ``diagnostics`` carries the structured
    :class:`repro.diag.Diagnostic` records when the failure came out
    of a compile (empty for hand-constructed instances).
    """

    def __init__(self, messages, diagnostics=None):
        self.messages = list(messages)
        self.diagnostics = list(diagnostics or [])
        super().__init__(
            "%d error(s):\n%s" % (len(self.messages),
                                  "\n".join(self.messages[:20])))


class CompileResult:
    """Outcome of compiling one source file."""

    def __init__(self, units, messages, timings, source_lines,
                 expr_evals, registered_units=(), diagnostics=(),
                 trace_events=(), ag_stats=None, filename=None):
        self.units = list(units)
        self.messages = list(messages)
        self.timings = dict(timings)
        self.source_lines = source_lines
        self.expr_evals = expr_evals
        #: (lib, key) library entries this compile registered, in
        #: registration order — the incremental build driver's view.
        self.registered_units = list(registered_units)
        #: structured :class:`repro.diag.Diagnostic` records mirroring
        #: ``messages`` (plus any with richer spans).
        self.diagnostics = list(diagnostics)
        #: Chrome trace events recorded for this compile.
        self.trace_events = list(trace_events)
        #: the compiler's :class:`repro.diag.AGObserver` (rule
        #: firings, memo hits/misses, accumulated across the
        #: compiler's lifetime), or None.
        self.ag_stats = ag_stats
        self.filename = filename

    @property
    def ok(self):
        return not self.messages

    def unit_names(self):
        """Names of the compiled units.

        Every VIF unit kind guarantees a ``name`` field; a unit
        arriving here without one is an internal error worth a clear
        diagnostic, not a silent ``"?"`` placeholder.
        """
        names = []
        for u in self.units:
            name = getattr(u, "name", None)
            if not name:
                raise CompileError([
                    "internal: compilation produced an unnamed %s "
                    "unit — VIF units must carry a name"
                    % type(u).__name__])
            names.append(name)
        return names

    def __repr__(self):
        # repr must never raise; show a placeholder for the
        # pathological unnamed case unit_names() diagnoses loudly.
        shown = ", ".join(
            getattr(u, "name", None) or "<unnamed>" for u in self.units)
        return "<CompileResult %s: %d message(s)>" % (
            shown, len(self.messages))


class Compiler:
    """Compiles VHDL source into a design library.

    ``tracer`` (a :class:`repro.diag.Tracer`) accumulates phase spans
    across every ``compile`` call on this instance; ``observer`` (a
    :class:`repro.diag.AGObserver`) accumulates evaluation counters
    the same way.  Both are created fresh when not supplied, so the
    plain one-shot API is unchanged.  ``werror`` promotes warnings to
    errors at diagnostic-emission time.
    """

    def __init__(self, library=None, work="work", root=None,
                 strict=True, tracer=None, observer=None,
                 werror=False):
        self.library = library or LibraryManager(root=root, work=work)
        self.work = work
        self.strict = strict
        self.tracer = tracer if tracer is not None else Tracer()
        self.observer = observer if observer is not None else AGObserver()
        self.werror = werror
        # Force generation of the translator up front (the paper's
        # Linguist run happens before any compilation).
        with self.tracer.phase("translator_generation"):
            principal_grammar()

    def compile(self, text, filename="<input>"):
        """Compile all design units in ``text``.

        Raises :class:`CompileError` on diagnostics when ``strict``;
        otherwise returns them in the result.
        """
        tracer = self.tracer
        engine = DiagnosticEngine(file=filename, werror=self.werror)
        timings = {}
        cc = CompileCtx(self.library, self.work, filename=filename)
        grammar = principal_grammar()
        events_before = len(tracer.events)

        with tracer.phase("scan", file=filename) as ev:
            try:
                tokens = scan(text, filename)
            except AGError as exc:
                engine.add_exception(exc, file=filename)
                raise CompileError(
                    [str(exc)],
                    diagnostics=engine.diagnostics) from exc
        timings["scan"] = ev["dur"] / 1e6

        with tracer.phase("parse", file=filename) as ev:
            try:
                tree = grammar.parse(tokens, filename)
            except AGError as exc:
                engine.add_exception(exc, file=filename)
                raise CompileError(
                    [str(exc)],
                    diagnostics=engine.diagnostics) from exc
        timings["parse"] = ev["dur"] / 1e6

        registered_before = len(self.library.compile_order)
        expr0 = cc.expr_eval.invocations
        with tracer.phase("attribute_evaluation", file=filename) as ev:
            try:
                out = grammar.evaluate(
                    tree,
                    inherited={
                        "ENV": None,
                        "CC": cc,
                        "LEVEL": 0,
                        "RESULT": None,
                        "SCOPE": "",
                    },
                    goals=["UNITS", "MSGS"],
                    observer=self.observer,
                )
            except AGError as exc:
                engine.add_exception(exc, file=filename)
                raise CompileError(
                    [str(exc)],
                    diagnostics=engine.diagnostics) from exc
        timings["attribute_evaluation"] = ev["dur"] / 1e6
        expr_evals = cc.expr_eval.invocations - expr0

        units = list(out["UNITS"])
        messages = list(out["MSGS"])

        # Back-end compile of the generated models (the host-compiler
        # phase of the paper's pipeline).
        with tracer.phase("model_compile", file=filename) as ev:
            for unit in units:
                py = getattr(unit, "py_source", "")
                if py and "elaborate" in py:
                    try:
                        compile_model(py, getattr(unit, "name", "?"))
                    except SyntaxError as exc:
                        messages.append(
                            "internal: generated model for %s does "
                            "not compile: %s"
                            % (getattr(unit, "name", "?"), exc))
        timings["model_compile"] = ev["dur"] / 1e6

        # VIF writing happened inside register_unit during evaluation;
        # measure it separately by re-serializing (cheap, and keeps
        # the phase visible to the E4 bench).
        with tracer.phase("vif", file=filename) as ev:
            for lib, key in self.library.compile_order[
                    registered_before:]:
                self.library.payload_of(lib, key)
        timings["vif"] = ev["dur"] / 1e6

        engine.add_messages(messages, file=filename)
        source_lines = _count_lines(text)
        registered = self.library.compile_order[registered_before:]
        result = CompileResult(
            units, messages, timings, source_lines, expr_evals,
            registered_units=registered,
            diagnostics=engine.diagnostics,
            trace_events=tracer.events[events_before:],
            ag_stats=self.observer,
            filename=filename,
        )
        if messages and self.strict:
            raise CompileError(messages,
                               diagnostics=engine.diagnostics)
        return result

    def compile_file(self, path):
        with open(path) as f:
            return self.compile(f.read(), filename=path)


def _count_lines(text):
    """Source lines stripped of blanks and comments (Figure 2's
    counting convention)."""
    n = 0
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("--"):
            n += 1
    return n
