"""Out-of-line semantic functions: sequential and concurrent statements.

Statement rules in the principal AG receive LEF token lists for the
expressions they contain and call ``exprEval`` (via the compile
context) with the appropriate mode and expected type, then assemble
generated code — the exact shape of the paper's example production::

    stmt.CODE = TextOf("if( %t ){%t}", EXPR_CODE, stmts.CODE)

Results are :class:`SRes` records: code lines, messages, the set of
python names written (for ``nonlocal`` computation in nested
subprograms), whether a wait occurs (process safety), and the signals
read (for concurrent-statement sensitivity inference).
"""

from . import vtypes
from .semantics_decl import indent, ln


class SRes:
    """Generated-code result of one (list of) statement(s)."""

    __slots__ = ("code", "msgs", "writes", "haswait", "sigs")

    def __init__(self, code=(), msgs=(), writes=(), haswait=False,
                 sigs=()):
        self.code = list(code)
        self.msgs = list(msgs)
        self.writes = frozenset(writes)
        self.haswait = haswait
        self.sigs = frozenset(sigs)

    @staticmethod
    def merge(a, b):
        return SRes(a.code + b.code, a.msgs + b.msgs,
                    a.writes | b.writes, a.haswait or b.haswait,
                    a.sigs | b.sigs)


EMPTY = SRes()


def _msg(line, text):
    return "line %d: %s" % (line, text)


def _bool_cond(lef, env, cc, line, out_msgs, out_sigs):
    goal = cc.eval_expr(lef, env, line, expected=cc.std.boolean)
    out_msgs.extend(goal.get("msgs", ()))
    out_sigs.update(goal.get("sigs", ()))
    return goal.get("code", "0")


# -- assignments -------------------------------------------------------------------


def _target_update_code(lv, value_code, read_code):
    """Build the updated composite value for a path assignment."""
    code = read_code
    steps = list(lv.path)
    if not steps:
        return value_code
    # Single-step paths cover the subset (a(i) / a.f / a(h downto l)).
    step_kind, info = steps[-1]
    prefix = read_code
    for kind, inner in steps[:-1]:
        if kind == "index":
            prefix = "ops.index(%s, %s)" % (prefix, inner.code)
        elif kind == "field":
            prefix = "ops.field(%s, %r)" % (prefix, inner)
    del code
    if step_kind == "index":
        updated = "ops.array_update(%s, %s, %s)" % (
            prefix, info.code, value_code)
    elif step_kind == "field":
        updated = "ops.record_update(%s, %r, %s)" % (
            prefix, info, value_code)
    else:  # slice
        left, direction, right = info
        updated = "ops.slice_update(%s, %s, %r, %s, %s)" % (
            prefix, left.code, direction, right.code, value_code)
    # Rebuild outward for nested paths.
    for kind, inner in reversed(steps[:-1]):
        raise NotImplementedError  # depth-2 paths not in the subset
    return updated


def _rebound_code(value_code, vtype):
    """Wrap an assigned array value so it takes the target subtype's
    bounds (VHDL's implicit subtype conversion on assignment)."""
    rng = getattr(vtype, "index_range", None) if vtype is not None \
        else None
    if rng is None or not isinstance(rng.left, int):
        return value_code
    # Literal constructors already carry the right bounds.
    if value_code.startswith(("VArray(", "ops.fill(", "ops.array_from(")):
        return value_code
    return "ops.rebound(%s, %r, %r, %r)" % (
        value_code, rng.left, rng.direction, rng.right)


def signal_assign(target_lef, wave, transport, env, cc, line,
                  guard_code=None):
    """``target <= [transport] v1 after t1, v2 after t2 ;``

    ``wave`` is a list of (value_lef, after_lef_or_None).
    """
    msgs = []
    sigs = set()
    tgt = cc.eval_target(target_lef, env, line)
    msgs.extend(tgt.get("msgs", ()))
    if not tgt.get("ok"):
        return SRes((), msgs, (), False, ())
    lv = tgt["lvalue"]
    base = lv.base
    if not base.is_signal:
        msgs.append(_msg(line, "target of <= is not a signal"))
        return SRes((), msgs, (), False, ())
    expected = tgt.get("type")
    elems = []
    for value_lef, after_lef in wave:
        vgoal = cc.eval_expr(value_lef, env, line, expected=expected)
        msgs.extend(vgoal.get("msgs", ()))
        sigs.update(vgoal.get("sigs", ()))
        delay = "0"
        if after_lef is not None:
            agoal = cc.eval_expr(after_lef, env, line,
                                 expected=cc.std.time)
            msgs.extend(agoal.get("msgs", ()))
            sigs.update(agoal.get("sigs", ()))
            delay = agoal.get("code", "0")
        value_code = vgoal.get("code", "None")
        if lv.path:
            value_code = _target_update_code(
                lv, value_code, "rt.read(%s)" % base.py)
        else:
            value_code = _rebound_code(value_code, expected)
        elems.append("(%s, %s)" % (value_code, delay))
    code_line = "rt.assign(%s, (%s,), transport=%r)" % (
        base.py, ", ".join(elems), bool(transport))
    lines = [ln(code_line)]
    if guard_code is not None:
        lines = [ln("if %s:" % guard_code)] + indent(lines)
    return SRes(lines, msgs, (), False, sigs)


def variable_assign(target_lef, rhs_lef, env, cc, line):
    """``target := expr ;``"""
    msgs = []
    sigs = set()
    tgt = cc.eval_target(target_lef, env, line)
    msgs.extend(tgt.get("msgs", ()))
    if not tgt.get("ok"):
        return SRes((), msgs, (), False, ())
    lv = tgt["lvalue"]
    base = lv.base
    if base.is_signal:
        msgs.append(_msg(line, "target of := is a signal (use <=)"))
        return SRes((), msgs, (), False, ())
    if not base.is_writable:
        msgs.append(_msg(line, "%s %s cannot be assigned"
                         % (base.obj_class, base.name)))
    rhs = cc.eval_expr(rhs_lef, env, line, expected=tgt.get("type"))
    msgs.extend(rhs.get("msgs", ()))
    sigs.update(rhs.get("sigs", ()))
    value_code = rhs.get("code", "None")
    if lv.path:
        value_code = _target_update_code(lv, value_code, base.py)
    else:
        value_code = _rebound_code(value_code, tgt.get("type"))
    # Range check on scalar subtypes with static bounds.
    vtype = tgt.get("type")
    if vtype is not None and vtype.kind == "subtype":
        low, high = vtypes.scalar_bounds(vtype)
        value_code = "ops.check_range(%s, %r, %r, %r)" % (
            value_code, low, high, base.name)
    return SRes([ln("%s = %s" % (base.py, value_code))], msgs,
                {base.py}, False, sigs)


# -- control flow --------------------------------------------------------------------------


def if_stmt(arms, else_body, env, cc, line):
    """``arms``: list of (cond_lef, SRes body); else_body: SRes|None."""
    msgs = []
    sigs = set()
    lines = []
    writes = set()
    haswait = False
    keyword = "if"
    for cond_lef, body in arms:
        cond = _bool_cond(cond_lef, env, cc, line, msgs, sigs)
        lines.append(ln("%s %s:" % (keyword, cond)))
        lines.extend(indent(body.code or [ln("pass")]))
        msgs.extend(body.msgs)
        writes |= body.writes
        haswait = haswait or body.haswait
        sigs |= body.sigs
        keyword = "elif"
    if else_body is not None:
        lines.append(ln("else:"))
        lines.extend(indent(else_body.code or [ln("pass")]))
        msgs.extend(else_body.msgs)
        writes |= else_body.writes
        haswait = haswait or else_body.haswait
        sigs |= else_body.sigs
    return SRes(lines, msgs, writes, haswait, sigs)


def case_stmt(selector_lef, alternatives, env, cc, line):
    """``alternatives``: list of (choice_lef_lists, SRes body); a
    choice LEF of None means OTHERS position handled via eval_choice.
    """
    msgs = []
    sigs = set()
    sel = cc.eval_expr(selector_lef, env, line)
    msgs.extend(sel.get("msgs", ()))
    sigs.update(sel.get("sigs", ()))
    sel_type = sel.get("type")
    tmp = cc.gensym("_case")
    lines = [ln("%s = %s" % (tmp, sel.get("code", "None")))]
    writes = set()  # tmp is local to the statement, never uplevel
    haswait = False
    keyword = "if"
    seen_others = False
    covered = []
    for choice_lefs, body in alternatives:
        vals = []
        others = False
        for clef in choice_lefs:
            goal = cc.eval_choice(clef, env, line, expected=sel_type)
            msgs.extend(goal.get("msgs", ()))
            if goal.get("others"):
                others = True
            else:
                vals.extend(goal.get("vals", ()))
        msgs.extend(body.msgs)
        writes |= body.writes
        haswait = haswait or body.haswait
        sigs |= body.sigs
        if others:
            seen_others = True
            lines.append(ln("else:" if covered else "if True:"))
        else:
            covered.extend(vals)
            cond = "%s in (%s)" % (
                tmp, ", ".join(repr(v) for v in vals) + ("," if vals else ""))
            lines.append(ln("%s %s:" % (keyword, cond)))
            keyword = "elif"
        lines.extend(indent(body.code or [ln("pass")]))
    if not seen_others and sel_type is not None \
            and vtypes.is_scalar(sel_type):
        low, high = vtypes.scalar_bounds(sel_type)
        if len(set(covered)) < (high - low + 1):
            msgs.append(_msg(
                line, "case does not cover all choices and has no "
                "others"))
    return SRes(lines, msgs, writes, haswait, sigs)


def loop_param_py(param_name, line):
    """Deterministic python name for a loop parameter.

    Deterministic (name + line) rather than gensym'd, because two
    independent semantic rules — the body's inherited ENV and the
    statement's synthesized code — must derive the same name.  A fresh
    name (not ``v_<name>``) so an outer homonym keeps its value after
    the loop, as VHDL scoping requires.
    """
    return "v_%s_l%d" % (param_name, line)


def loop_env(param_name, range_lef, env, cc, line):
    """The environment inside a for loop: parameter bound."""
    from ..vif.nodes import ObjectEntry

    rng = cc.eval_range(range_lef, env, line)
    entry = ObjectEntry(name=param_name, obj_class="loopvar",
                        vtype=rng.get("type") or cc.std.integer,
                        py=loop_param_py(param_name, line), line=line)
    return env.enter_scope().bind(param_name, entry)


def for_loop(param_name, range_lef, body, env, cc, line):
    """``for i in range loop ... end loop`` (body already evaluated
    under :func:`loop_env`)."""
    msgs = []
    rng = cc.eval_range(range_lef, env, line)
    msgs.extend(rng.get("msgs", ()))
    py = loop_param_py(param_name, line)
    msgs.extend(body.msgs)
    head = "for %s in ops.iter_range(%s, %r, %s):" % (
        py, rng.get("left_code", "0"), rng.get("direction", "to"),
        rng.get("right_code", "0"))
    lines = [ln(head)] + indent(body.code or [ln("pass")])
    # The loop parameter is local wherever the loop appears — it must
    # not leak into the write set, or a nested subprogram containing
    # the loop would emit a bogus ``nonlocal``.
    return SRes(lines, msgs, body.writes - {py}, body.haswait,
                body.sigs | frozenset(rng.get("sigs", ())))


def while_loop(cond_lef, body, env, cc, line):
    msgs = []
    sigs = set()
    if cond_lef is None:
        head = "while True:"
    else:
        cond = _bool_cond(cond_lef, env, cc, line, msgs, sigs)
        head = "while %s:" % cond
    msgs.extend(body.msgs)
    lines = [ln(head)] + indent(body.code or [ln("pass")])
    return SRes(lines, msgs, body.writes, body.haswait,
                body.sigs | sigs)


def next_or_exit(which, cond_lef, env, cc, line):
    stmt = "continue" if which == "next" else "break"
    if cond_lef is None:
        return SRes([ln(stmt)])
    msgs = []
    sigs = set()
    cond = _bool_cond(cond_lef, env, cc, line, msgs, sigs)
    return SRes([ln("if %s:" % cond), ln(stmt, 1)], msgs, (), False,
                sigs)


# -- waits, asserts, calls, return -----------------------------------------------------------


def wait_stmt(on_lefs, until_lef, for_lef, env, cc, line):
    msgs = []
    sig_codes = []
    sigs = set()
    for name_lef in on_lefs:
        tgt = cc.eval_target(name_lef, env, line)
        msgs.extend(tgt.get("msgs", ()))
        lv = tgt.get("lvalue")
        if lv is None or not lv.base.is_signal:
            msgs.append(_msg(line, "wait on non-signal"))
            continue
        sig_codes.append(lv.base.py)
        sigs.add(lv.base.py)
    cond_code = "None"
    if until_lef is not None:
        goal = cc.eval_expr(until_lef, env, line,
                            expected=cc.std.boolean)
        msgs.extend(goal.get("msgs", ()))
        cond_code = "lambda: %s" % goal.get("code", "1")
        if not sig_codes:
            # wait until C: sensitivity is the signals in C.
            sig_codes = sorted(goal.get("sigs", ()))
        sigs.update(goal.get("sigs", ()))
    timeout_code = "None"
    if for_lef is not None:
        goal = cc.eval_expr(for_lef, env, line, expected=cc.std.time)
        msgs.extend(goal.get("msgs", ()))
        timeout_code = goal.get("code", "None")
        sigs.update(goal.get("sigs", ()))
    code = "yield rt.wait([%s], %s, %s)" % (
        ", ".join(sig_codes), cond_code, timeout_code)
    return SRes([ln(code)], msgs, (), True, sigs)


def assert_stmt(cond_lef, report_lef, severity_lef, env, cc, line):
    msgs = []
    sigs = set()
    cond = _bool_cond(cond_lef, env, cc, line, msgs, sigs)
    message = '"assertion violation (line %d)"' % line
    if report_lef is not None:
        goal = cc.eval_expr(report_lef, env, line,
                            expected=cc.std.string)
        msgs.extend(goal.get("msgs", ()))
        if goal.get("has_val") and goal["val"] is not None:
            chars = getattr(goal["val"], "elems", None)
            if chars is not None:
                message = repr("".join(chr(c) for c in chars))
        else:
            msgs.append(_msg(
                line, "report expression must be a static string"))
    severity = "error"
    if severity_lef is not None:
        goal = cc.eval_expr(severity_lef, env, line,
                            expected=cc.std.severity_level)
        msgs.extend(goal.get("msgs", ()))
        if goal.get("has_val"):
            severity = cc.std.severity_level.literals[goal["val"]]
    code = "rt.assert_(%s, %s, %r)" % (cond, message, severity)
    return SRes([ln(code)], msgs, (), False, sigs)


def procedure_call(call_lef, env, cc, line):
    goal = cc.eval_call(call_lef, env, line)
    msgs = list(goal.get("msgs", ()))
    if not goal.get("ok"):
        return SRes((), msgs or [_msg(line, "bad procedure call")],
                    (), False, ())
    writes = set()
    code = goal.get("code", "")
    if " = " in code.split("(")[0]:
        writes = {n.strip() for n in
                  code.split(" = ")[0].split(",")}
    return SRes([ln(code)], msgs, writes, False,
                frozenset(goal.get("sigs", ())))


def return_stmt(value_lef, expected, env, cc, line):
    if value_lef is None:
        return SRes([ln("return")])
    goal = cc.eval_expr(value_lef, env, line, expected=expected)
    return SRes([ln("return %s" % goal.get("code", "None"))],
                list(goal.get("msgs", ())), (), False,
                frozenset(goal.get("sigs", ())))


def null_stmt():
    return SRes([ln("pass")])
