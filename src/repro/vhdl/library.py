"""Design libraries and separate compilation.

"The compiler accepts a file containing compilation units, a list of
compiler directives, a working library where the successfully compiled
units are placed and a reference library which can be referenced in
addition to the work library but which can not be updated."

The manager tracks compile order because §3.3's default-configuration
rule is *usage-history* dependent: "the default for an architecture
name in the binding of a component to an entity-architecture is the
latest compiled architecture for that entity", which "makes the VHDL
description itself non-deterministic" — benchmark E5 and the
separate-compilation example exercise exactly this.

Units are stored as VIF payloads (plus generated Python/C text); the
shared :class:`repro.vif.io.VIFReader` resolves foreign references so
a declaration read from two different units is one node object.
"""

import json
import os
import tempfile

from ..vif.core import VIFError
from ..vif.io import VIFReader, VIFWriter, dump_unit, unit_depends
from .stdpkg import standard
from .symtab import entry_kind


def unit_filename(key, suffix):
    """Filesystem-safe artifact name for a unit key (shared with the
    incremental-build driver, which probes artifacts directly)."""
    safe = "".join(ch if ch.isalnum() or ch in "()._-" else "_"
                   for ch in key)
    return "%s.%s" % (safe, suffix)


def _atomic_write(path, text):
    """Write ``text`` to ``path`` via tempfile + ``os.replace`` so a
    crash mid-write can never leave a truncated artifact behind."""
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp.",
                               suffix=".part")
    try:
        with os.fdopen(fd, "w") as f:
            f.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def unit_key(node):
    """Storage key for a unit node."""
    kind = entry_kind(node)
    if kind == "architecture":
        return "%s(%s)" % (node.name, node.entity_name)
    if kind == "package_body":
        return "body(%s)" % node.name
    return node.name


class LibraryError(Exception):
    """Missing library/unit or an attempt to update a reference library."""


class LibraryManager:
    """A set of design libraries (in memory, optionally disk-backed)."""

    def __init__(self, root=None, work="work", reference_libs=()):
        self.root = root
        self.work = work
        self._units = {}      # (lib, key) -> unit node
        self._payloads = {}   # (lib, key) -> VIF payload
        self._libraries = {work, "std"}
        self._libraries.update(reference_libs)
        self._read_only = set(reference_libs) | {"std"}
        self.compile_order = []  # (lib, key) in registration order
        #: Corrupt on-disk artifacts moved aside at load time:
        #: [(path, reason), ...] — inspect instead of crashing.
        self.quarantined = []
        self.reader = VIFReader(self._load_payload)
        std = standard()
        self._units[("std", "standard")] = std.package
        self._payloads[("std", "standard")] = std.payload
        # Foreign references into STANDARD must resolve to the
        # singleton's node objects (identity-based typing), not to
        # copies materialized from the payload.
        self.reader.seed("std", "standard", std.node_table,
                         {"unit": std.package})
        self.compile_order.append(("std", "standard"))
        if root is not None:
            self._load_root()

    # -- queries ---------------------------------------------------------------

    def has_library(self, name):
        return name in self._libraries

    def add_library(self, name, read_only=False):
        self._libraries.add(name)
        if read_only:
            self._read_only.add(name)

    def find_unit(self, lib, name):
        """A primary unit by simple name (entity/package/config)."""
        return self._units.get((lib, name))

    def find_architecture(self, lib, entity_name, arch_name):
        return self._units.get(
            (lib, "%s(%s)" % (arch_name, entity_name)))

    def find_package_body(self, lib, pkg_name):
        return self._units.get((lib, "body(%s)" % pkg_name))

    def units_of(self, lib):
        """(key, node) pairs of one library, in compile order."""
        return [
            (key, self._units[(l, key)])
            for l, key in self.compile_order
            if l == lib
        ]

    def latest_architecture(self, lib, entity_name):
        """The §3.3 default rule: latest *compiled* architecture."""
        suffix = "(%s)" % entity_name
        latest = None
        for l, key in self.compile_order:
            if l == lib and key.endswith(suffix):
                latest = self._units[(l, key)]
        return latest

    def architectures_of(self, lib, entity_name):
        suffix = "(%s)" % entity_name
        return [
            self._units[(l, key)]
            for l, key in self.compile_order
            if l == lib and key.endswith(suffix)
        ]

    def configurations_for(self, lib, entity_name):
        """Configuration units targeting an entity, in compile order."""
        out = []
        for l, key in self.compile_order:
            node = self._units[(l, key)]
            if l == lib and entry_kind(node) == "configuration" \
                    and node.entity_name == entity_name:
                out.append(node)
        return out

    # -- registration ------------------------------------------------------------

    def register_unit(self, lib, node):
        """Place a successfully compiled unit into a library.

        Recompiling a unit replaces it; compile order is extended, so
        the latest-architecture default tracks usage history.
        """
        if lib in self._read_only:
            raise LibraryError(
                "library %r is a reference library and cannot be "
                "updated" % lib)
        if lib not in self._libraries:
            raise LibraryError("unknown library %r" % lib)
        key = unit_key(node)
        writer = VIFWriter(lib, key)
        payload = writer.write({"unit": node})
        self._units[(lib, key)] = node
        self._payloads[(lib, key)] = payload
        self.compile_order.append((lib, key))
        if self.root is not None:
            self._store(lib, key, node, payload)
        return key

    # -- VIF access -----------------------------------------------------------------

    def _load_payload(self, lib, key):
        payload = self._payloads.get((lib, key))
        if payload is None and self.root is not None:
            path = self._path(lib, key, "vif.json")
            if os.path.exists(path):
                try:
                    with open(path) as f:
                        payload = json.load(f)
                except (json.JSONDecodeError, UnicodeDecodeError,
                        OSError) as exc:
                    self._quarantine(path, str(exc))
                    return None
                self._payloads[(lib, key)] = payload
        return payload

    def _quarantine(self, path, reason):
        """Move a corrupt artifact aside (``*.corrupt``) so the unit
        reads as missing instead of raising at load time."""
        self.quarantined.append((path, reason))
        try:
            os.replace(path, path + ".corrupt")
        except OSError:
            pass

    def payload_of(self, lib, key):
        return self._load_payload(lib, key)

    def dump_vif(self, lib, key):
        """The human-readable VIF form of a stored unit."""
        payload = self._load_payload(lib, key)
        if payload is None:
            raise LibraryError("no VIF for %s.%s" % (lib, key))
        return dump_unit(payload)

    def read_foreign(self, lib, key):
        """Re-read a unit through the VIF reader (foreign-reference
        path; used by benches to measure VIF time)."""
        return self.reader.read_unit(lib, key)["unit"]

    def depends_of(self, lib, key):
        """The stored dependency metadata of a unit: the ``(library,
        unit)`` pairs its VIF payload records foreign references to
        (what the compile actually read, per the writer's depends
        set)."""
        payload = self._load_payload(lib, key)
        if payload is None:
            return []
        return unit_depends(payload)

    def apply_compile_order(self, recorded):
        """Reorder ``compile_order`` to match a recorded sequence.

        Disk loading is alphabetical; an incremental build records the
        true deterministic order so §3.3's latest-architecture default
        is reproducible across sessions.  Entries not mentioned in
        ``recorded`` (STANDARD, reference units) keep their relative
        position at the front."""
        recorded = [tuple(e) for e in recorded]
        present = set(self.compile_order)
        recorded_set = set(recorded)
        self.compile_order = [
            e for e in self.compile_order if e not in recorded_set
        ] + [e for e in recorded if e in present]

    # -- disk persistence ----------------------------------------------------------

    def _path(self, lib, key, suffix):
        return os.path.join(self.root, lib, unit_filename(key, suffix))

    def _store(self, lib, key, node, payload):
        os.makedirs(os.path.join(self.root, lib), exist_ok=True)
        _atomic_write(self._path(lib, key, "vif.json"),
                      json.dumps(payload, indent=1))
        py = getattr(node, "py_source", "")
        if py:
            _atomic_write(self._path(lib, key, "py"), py)
        c = getattr(node, "c_source", "")
        if c:
            _atomic_write(self._path(lib, key, "c"), c)

    def _load_root(self):
        if not os.path.isdir(self.root):
            return
        for lib in sorted(os.listdir(self.root)):
            lib_dir = os.path.join(self.root, lib)
            if not os.path.isdir(lib_dir):
                continue
            self._libraries.add(lib)
            for fname in sorted(os.listdir(lib_dir)):
                if not fname.endswith(".vif.json"):
                    continue
                key = fname[: -len(".vif.json")]
                try:
                    roots = self.reader.read_unit(lib, key)
                except VIFError as exc:
                    # Corrupt JSON was already quarantined by
                    # _load_payload; a structurally bad payload is
                    # quarantined here.  Either way, skip the unit.
                    path = os.path.join(lib_dir, fname)
                    if os.path.exists(path):
                        self._quarantine(path, str(exc))
                    continue
                node = roots["unit"]
                self._units[(lib, key)] = node
                self.compile_order.append((lib, key))
                py_path = self._path(lib, key, "py")
                if os.path.exists(py_path):
                    with open(py_path) as f:
                        node.py_source = f.read()
