"""Design libraries and separate compilation.

"The compiler accepts a file containing compilation units, a list of
compiler directives, a working library where the successfully compiled
units are placed and a reference library which can be referenced in
addition to the work library but which can not be updated."

The manager tracks compile order because §3.3's default-configuration
rule is *usage-history* dependent: "the default for an architecture
name in the binding of a component to an entity-architecture is the
latest compiled architecture for that entity", which "makes the VHDL
description itself non-deterministic" — benchmark E5 and the
separate-compilation example exercise exactly this.

Units are stored as VIF payloads (plus generated Python/C text); the
shared :class:`repro.vif.io.VIFReader` resolves foreign references so
a declaration read from two different units is one node object.

Concurrency model (the ``repro serve`` substrate): the in-memory
contents live in one immutable :class:`_State` (units dict, compile
order, version) that is *published* by plain attribute assignment.
Readers capture the current state once per query — or pin one with
:meth:`LibraryManager.snapshot` for a whole job — and therefore never
observe a half-applied commit.  Writers serialize on a single commit
lock and write disk artifacts (atomic tempfile + ``os.replace``)
*before* publishing, so a racing reader sees either the old consistent
library or the new one, in memory and on disk alike.  ``read_only``
managers additionally refuse registration and never move quarantined
files they do not own.
"""

import json
import os
import tempfile
import threading

from ..vif.core import VIFError
from ..vif.io import VIFReader, VIFWriter, dump_unit, unit_depends
from .stdpkg import standard
from .symtab import entry_kind


def unit_filename(key, suffix):
    """Filesystem-safe artifact name for a unit key (shared with the
    incremental-build driver, which probes artifacts directly)."""
    safe = "".join(ch if ch.isalnum() or ch in "()._-" else "_"
                   for ch in key)
    return "%s.%s" % (safe, suffix)


def _atomic_write(path, text):
    """Write ``text`` to ``path`` via tempfile + ``os.replace`` so a
    crash mid-write can never leave a truncated artifact behind."""
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp.",
                               suffix=".part")
    try:
        with os.fdopen(fd, "w") as f:
            f.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def unit_key(node):
    """Storage key for a unit node."""
    kind = entry_kind(node)
    if kind == "architecture":
        return "%s(%s)" % (node.name, node.entity_name)
    if kind == "package_body":
        return "body(%s)" % node.name
    return node.name


class LibraryError(Exception):
    """Missing library/unit or an attempt to update a reference library."""


class _State:
    """One immutable published version of the in-memory library.

    ``units`` and ``order`` are never mutated after publication; a
    commit builds replacements and swaps the whole object in a single
    attribute store, which is atomic under the GIL."""

    __slots__ = ("units", "order", "version")

    def __init__(self, units, order, version):
        self.units = units    # {(lib, key): unit node}
        self.order = order    # ((lib, key), ...) registration order
        self.version = version


class _LibraryQueries:
    """Query surface shared by the live manager and pinned snapshots.

    Every method captures ``self._view()`` exactly once, so a single
    query is internally consistent even while a writer publishes."""

    def _view(self):
        raise NotImplementedError

    def find_unit(self, lib, name):
        """A primary unit by simple name (entity/package/config)."""
        return self._view().units.get((lib, name))

    def find_architecture(self, lib, entity_name, arch_name):
        return self._view().units.get(
            (lib, "%s(%s)" % (arch_name, entity_name)))

    def find_package_body(self, lib, pkg_name):
        return self._view().units.get((lib, "body(%s)" % pkg_name))

    def units_of(self, lib):
        """(key, node) pairs of one library, in compile order."""
        state = self._view()
        return [
            (key, state.units[(l, key)])
            for l, key in state.order
            if l == lib
        ]

    def latest_architecture(self, lib, entity_name):
        """The §3.3 default rule: latest *compiled* architecture."""
        state = self._view()
        suffix = "(%s)" % entity_name
        latest = None
        for l, key in state.order:
            if l == lib and key.endswith(suffix):
                latest = state.units[(l, key)]
        return latest

    def architectures_of(self, lib, entity_name):
        state = self._view()
        suffix = "(%s)" % entity_name
        return [
            state.units[(l, key)]
            for l, key in state.order
            if l == lib and key.endswith(suffix)
        ]

    def configurations_for(self, lib, entity_name):
        """Configuration units targeting an entity, in compile order."""
        state = self._view()
        out = []
        for l, key in state.order:
            node = state.units[(l, key)]
            if l == lib and entry_kind(node) == "configuration" \
                    and node.entity_name == entity_name:
                out.append(node)
        return out

    @property
    def compile_order(self):
        """The registration order, as a fresh list (callers may slice
        and index; they must not try to mutate the library through
        it)."""
        return list(self._view().order)

    @property
    def _units(self):
        """The published units mapping (read-only by convention)."""
        return self._view().units


class LibraryManager(_LibraryQueries):
    """A set of design libraries (in memory, optionally disk-backed).

    ``read_only=True`` opens the root purely for reading: registration
    raises :class:`LibraryError` and corrupt artifacts are recorded in
    ``quarantined`` but never renamed (the files belong to the
    writer).  Concurrent reader jobs in one process should pin a
    :meth:`snapshot` instead of re-querying the live manager when they
    need one frozen view across many lookups.
    """

    def __init__(self, root=None, work="work", reference_libs=(),
                 read_only=False):
        self.root = root
        self.work = work
        self.read_only = bool(read_only)
        self._write_lock = threading.RLock()
        self._payloads = {}   # (lib, key) -> VIF payload (append-only)
        self._libraries = {work, "std"}
        self._libraries.update(reference_libs)
        self._read_only = set(reference_libs) | {"std"}
        #: Corrupt on-disk artifacts moved aside at load time:
        #: [(path, reason), ...] — inspect (or render via
        #: :meth:`quarantine_diagnostics`) instead of crashing.
        self.quarantined = []
        self.reader = VIFReader(self._load_payload)
        std = standard()
        self._payloads[("std", "standard")] = std.payload
        # Foreign references into STANDARD must resolve to the
        # singleton's node objects (identity-based typing), not to
        # copies materialized from the payload.
        self.reader.seed("std", "standard", std.node_table,
                         {"unit": std.package})
        self._state = _State({("std", "standard"): std.package},
                             (("std", "standard"),), 0)
        if root is not None:
            self._load_root()

    # -- state publication -------------------------------------------------

    def _view(self):
        return self._state

    def _publish(self, units, order):
        self._state = _State(units, tuple(order),
                             self._state.version + 1)

    @property
    def version(self):
        """Monotonic commit counter of the published state."""
        return self._state.version

    def snapshot(self):
        """A read-only view pinned to the current published state."""
        return LibrarySnapshot(self)

    # -- queries ---------------------------------------------------------------

    def has_library(self, name):
        return name in self._libraries

    def add_library(self, name, read_only=False):
        self._libraries.add(name)
        if read_only:
            self._read_only.add(name)

    # -- registration ------------------------------------------------------------

    def register_unit(self, lib, node):
        """Place a successfully compiled unit into a library.

        Recompiling a unit replaces it; compile order is extended, so
        the latest-architecture default tracks usage history.  The
        commit is single-writer (serialized on the manager's commit
        lock) and publishes in-memory state only after the disk
        artifacts landed, so concurrent snapshot readers see either
        the whole unit or none of it.
        """
        if self.read_only:
            raise LibraryError(
                "library manager opened read-only; cannot register "
                "%r into %r" % (unit_key(node), lib))
        if lib in self._read_only:
            raise LibraryError(
                "library %r is a reference library and cannot be "
                "updated" % lib)
        if lib not in self._libraries:
            raise LibraryError("unknown library %r" % lib)
        key = unit_key(node)
        writer = VIFWriter(lib, key)
        payload = writer.write({"unit": node})
        with self._write_lock:
            if self.root is not None:
                self._store(lib, key, node, payload)
            self._payloads[(lib, key)] = payload
            state = self._state
            units = dict(state.units)
            units[(lib, key)] = node
            self._publish(units, state.order + ((lib, key),))
        return key

    def install_unit(self, lib, key, node, payload=None):
        """Adopt an already-compiled unit — e.g. a stored VIF payload
        rehydrated in a fresh session — without re-running the writer
        or touching the disk.  Same commit discipline as
        :meth:`register_unit` (single writer, whole-state publish)."""
        if self.read_only:
            raise LibraryError(
                "library manager opened read-only; cannot install "
                "%r into %r" % (key, lib))
        if lib in self._read_only:
            raise LibraryError(
                "library %r is a reference library and cannot be "
                "updated" % lib)
        with self._write_lock:
            self._libraries.add(lib)
            if payload is not None:
                self._payloads[(lib, key)] = payload
            state = self._state
            units = dict(state.units)
            units[(lib, key)] = node
            self._publish(units, state.order + ((lib, key),))
        return key

    # -- VIF access -----------------------------------------------------------------

    def _load_payload(self, lib, key):
        payload = self._payloads.get((lib, key))
        if payload is None and self.root is not None:
            path = self._path(lib, key, "vif.json")
            if os.path.exists(path):
                try:
                    with open(path) as f:
                        payload = json.load(f)
                except (json.JSONDecodeError, UnicodeDecodeError,
                        OSError) as exc:
                    self._quarantine(path, str(exc))
                    return None
                self._payloads[(lib, key)] = payload
        return payload

    def _quarantine(self, path, reason):
        """Record a corrupt artifact and (when this manager owns the
        root) move it aside as ``*.corrupt`` so the unit reads as
        missing instead of raising at load time.  Read-only managers
        only record: the writer owns the files, and yanking one from
        under it would turn *our* race into *its* corruption."""
        self.quarantined.append((path, reason))
        if self.read_only:
            return
        try:
            os.replace(path, path + ".corrupt")
        except OSError:
            pass

    def quarantine_diagnostics(self):
        """The quarantine log as structured diagnostics (code LIB001),
        ready for the same renderers as compile diagnostics."""
        from ..diag import Diagnostic, SourceSpan
        from ..diag.diagnostic import CODE_LIB, WARNING

        return [
            Diagnostic(CODE_LIB, WARNING,
                       "corrupt library artifact quarantined: %s"
                       % reason,
                       span=SourceSpan(file=path))
            for path, reason in self.quarantined
        ]

    def payload_of(self, lib, key):
        return self._load_payload(lib, key)

    def dump_vif(self, lib, key):
        """The human-readable VIF form of a stored unit."""
        payload = self._load_payload(lib, key)
        if payload is None:
            raise LibraryError("no VIF for %s.%s" % (lib, key))
        return dump_unit(payload)

    def read_foreign(self, lib, key):
        """Re-read a unit through the VIF reader (foreign-reference
        path; used by benches to measure VIF time)."""
        return self.reader.read_unit(lib, key)["unit"]

    def depends_of(self, lib, key):
        """The stored dependency metadata of a unit: the ``(library,
        unit)`` pairs its VIF payload records foreign references to
        (what the compile actually read, per the writer's depends
        set)."""
        payload = self._load_payload(lib, key)
        if payload is None:
            return []
        return unit_depends(payload)

    def apply_compile_order(self, recorded):
        """Reorder ``compile_order`` to match a recorded sequence.

        Disk loading is alphabetical; an incremental build records the
        true deterministic order so §3.3's latest-architecture default
        is reproducible across sessions.  Entries not mentioned in
        ``recorded`` (STANDARD, reference units) keep their relative
        position at the front."""
        recorded = [tuple(e) for e in recorded]
        with self._write_lock:
            state = self._state
            present = set(state.order)
            recorded_set = set(recorded)
            order = [
                e for e in state.order if e not in recorded_set
            ] + [e for e in recorded if e in present]
            self._publish(state.units, order)

    # -- disk persistence ----------------------------------------------------------

    def _path(self, lib, key, suffix):
        return os.path.join(self.root, lib, unit_filename(key, suffix))

    def _store(self, lib, key, node, payload):
        os.makedirs(os.path.join(self.root, lib), exist_ok=True)
        _atomic_write(self._path(lib, key, "vif.json"),
                      json.dumps(payload, indent=1))
        py = getattr(node, "py_source", "")
        if py:
            _atomic_write(self._path(lib, key, "py"), py)
        c = getattr(node, "c_source", "")
        if c:
            _atomic_write(self._path(lib, key, "c"), c)

    def _load_root(self):
        if not os.path.isdir(self.root):
            return
        state = self._state
        units = dict(state.units)
        order = list(state.order)
        for lib in sorted(os.listdir(self.root)):
            lib_dir = os.path.join(self.root, lib)
            if not os.path.isdir(lib_dir):
                continue
            self._libraries.add(lib)
            for fname in sorted(os.listdir(lib_dir)):
                if not fname.endswith(".vif.json"):
                    continue
                key = fname[: -len(".vif.json")]
                try:
                    roots = self.reader.read_unit(lib, key)
                except VIFError as exc:
                    # Corrupt JSON was already quarantined by
                    # _load_payload; a structurally bad payload is
                    # quarantined here.  Either way, skip the unit.
                    path = os.path.join(lib_dir, fname)
                    if os.path.exists(path):
                        self._quarantine(path, str(exc))
                    continue
                node = roots["unit"]
                units[(lib, key)] = node
                order.append((lib, key))
                py_path = self._path(lib, key, "py")
                if os.path.exists(py_path):
                    try:
                        with open(py_path) as f:
                            node.py_source = f.read()
                    except OSError:
                        pass
        self._publish(units, order)


class LibrarySnapshot(_LibraryQueries):
    """A read-only library view pinned to one published state.

    All structural queries answer from the captured state even while
    the owning manager commits new units.  Payload access delegates to
    the owner — its payload cache is append-only, and a payload, once
    written for a (lib, key), is only ever replaced by a re-commit of
    the same unit."""

    read_only = True

    def __init__(self, owner):
        self._owner = owner
        self._snap = owner._view()
        self.root = owner.root
        self.work = owner.work
        self.reader = owner.reader
        self.quarantined = owner.quarantined

    def _view(self):
        return self._snap

    @property
    def version(self):
        return self._snap.version

    def snapshot(self):
        return self

    def has_library(self, name):
        return self._owner.has_library(name)

    def register_unit(self, lib, node):
        raise LibraryError(
            "cannot register units through a library snapshot")

    def add_library(self, name, read_only=False):
        raise LibraryError(
            "cannot add libraries through a library snapshot")

    def payload_of(self, lib, key):
        return self._owner.payload_of(lib, key)

    def dump_vif(self, lib, key):
        return self._owner.dump_vif(lib, key)

    def read_foreign(self, lib, key):
        return self._owner.read_foreign(lib, key)

    def depends_of(self, lib, key):
        return self._owner.depends_of(lib, key)

    def quarantine_diagnostics(self):
        return self._owner.quarantine_diagnostics()
