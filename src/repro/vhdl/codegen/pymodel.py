"""Loading and compiling generated Python models.

A compiled unit's ``py_source`` defines ``elaborate(ctx)``.  The
source is compiled with Python's own byte-compiler — our stand-in for
the host C compiler of the paper's pipeline (the E4 bench measures
this phase's share of compile time the way the paper measured the
20–30% cc share).
"""


def compile_model(py_source, unit_name="<model>"):
    """Byte-compile a generated model; returns the code object."""
    return compile(py_source, "<vhdl model %s>" % unit_name, "exec")


def load_model(py_source, unit_name="<model>", extra_globals=None):
    """Execute a generated model module; returns its namespace.

    ``extra_globals`` supplies the namespaces of packages this unit
    depends on (their exported constants, functions, and signals).
    """
    namespace = {}
    if extra_globals:
        namespace.update(extra_globals)
    code = compile_model(py_source, unit_name)
    exec(code, namespace)
    return namespace
