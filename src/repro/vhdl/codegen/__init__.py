"""Code generation back ends.

The paper's compiler emits C source that the host toolchain compiles
into the simulator.  We emit two artifacts per unit:

- :mod:`repro.vhdl.codegen.pymodel` — the executable Python model the
  kernel elaborates (the substitution documented in DESIGN.md §4);
- :mod:`repro.vhdl.codegen.cmodel` — illustrative C source text with
  the same structure, keeping Figure 2's generated-code accounting
  meaningful.
"""

from .cmodel import c_model_for_unit
from .pymodel import compile_model, load_model

__all__ = ["c_model_for_unit", "compile_model", "load_model"]
