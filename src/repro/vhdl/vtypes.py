"""The VHDL type system — behavior mixins for generated VIF nodes.

Type denotations are VIF nodes (see ``repro/vif/schema.vif``): their
class *declarations* are generated from the declarative schema, and the
classes here supply the behavior.  That makes every type a first-class
symbol-table object that serializes into a unit's VIF and can be
referenced foreign from other units — the paper's "the VIF is the
symbol table" design (§4.3).

Runtime values are plain data: every scalar is an int (enumeration
position, integer value, femtoseconds for TIME), composites are
:class:`repro.sim.runtime.VArray` / ``VRecord``.

Type equality in VHDL is by declaration: each type declaration creates
a distinct type object.  Subtypes answer :meth:`base` with their base
type's identity; :func:`same_base` is the compatibility check.
"""


class _TypeBehavior:
    """Shared behavior of all type nodes."""

    __slots__ = ()

    def base(self):
        """The base type (self unless this is a subtype)."""
        return self

    def is_scalar(self):
        return False

    def is_discrete(self):
        return False

    def is_composite(self):
        return False


class EnumTypeBehavior(_TypeBehavior):
    """Enumeration type: ordered literals.  Runtime value: position."""

    __slots__ = ()
    kind = "enum"

    def is_scalar(self):
        return True

    def is_discrete(self):
        return True

    def position(self, literal):
        return self.literals.index(literal)

    def literal_at(self, pos):
        return self.literals[pos]

    @property
    def low(self):
        return 0

    @property
    def high(self):
        return len(self.literals) - 1

    def image(self, value):
        if 0 <= value < len(self.literals):
            return self.literals[value]
        return "#%d" % value


class IntegerTypeBehavior(_TypeBehavior):
    """Integer type with its defining range."""

    __slots__ = ()
    kind = "integer"

    def is_scalar(self):
        return True

    def is_discrete(self):
        return True

    def image(self, value):
        return str(value)


class PhysicalTypeBehavior(_TypeBehavior):
    """Physical type (TIME): runtime value in primary units (fs)."""

    __slots__ = ()
    kind = "physical"

    def is_scalar(self):
        return True

    def scale(self, unit_name):
        for unit, scale in self.units:
            if unit == unit_name:
                return scale
        raise KeyError(unit_name)

    def image(self, value):
        for unit, scale in reversed(self.units):
            if scale and value % scale == 0:
                return "%d %s" % (value // scale, unit)
        unit, scale = self.units[0]
        return "%d %s" % (value // scale, unit)


class FloatTypeBehavior(_TypeBehavior):
    """Floating-point type (REAL)."""

    __slots__ = ()
    kind = "float"

    def is_scalar(self):
        return True

    def image(self, value):
        return repr(value)


class IndexRangeBehavior:
    """A static index range: direction plus integer bounds."""

    __slots__ = ()

    @property
    def low(self):
        return min(self.left, self.right)

    @property
    def high(self):
        return max(self.left, self.right)

    def length(self):
        if self.direction == "to":
            n = self.right - self.left + 1
        else:
            n = self.left - self.right + 1
        return max(n, 0)

    def indices(self):
        if self.direction == "to":
            return range(self.left, self.right + 1)
        return range(self.left, self.right - 1, -1)

    def same_range(self, other):
        return (
            other is not None
            and (self.left, self.direction, self.right)
            == (other.left, other.direction, other.right)
        )


class ArrayTypeBehavior(_TypeBehavior):
    """Array type; unconstrained when ``index_range`` is None."""

    __slots__ = ()
    kind = "array"

    def is_composite(self):
        return True

    @property
    def constrained(self):
        return self.index_range is not None


class ArraySubtypeBehavior(_TypeBehavior):
    """Index-constrained view of an array base type."""

    __slots__ = ()
    kind = "array"

    def base(self):
        return self.base_type.base()

    @property
    def index_type(self):
        return self.base().index_type

    @property
    def element_type(self):
        return self.base().element_type

    def is_composite(self):
        return True

    @property
    def constrained(self):
        return True


class RecordTypeBehavior(_TypeBehavior):
    """Record type: parallel ``field_names`` / ``field_types`` lists."""

    __slots__ = ()
    kind = "record"

    def is_composite(self):
        return True

    def field_type(self, name):
        """Type of field ``name``, or None."""
        try:
            i = self.field_names.index(name)
        except ValueError:
            return None
        return self.field_types[i]

    def field_index(self, name):
        try:
            return self.field_names.index(name)
        except ValueError:
            return None


class ScalarSubtypeBehavior(_TypeBehavior):
    """Range-constrained scalar subtype, optionally resolved (bus
    resolution function on signal subtypes)."""

    __slots__ = ()
    kind = "subtype"

    def base(self):
        return self.base_type.base()

    def is_scalar(self):
        return True

    def is_discrete(self):
        return self.base().is_discrete()

    @property
    def effective_low(self):
        return self.low if self.low is not None else self.base().low

    @property
    def effective_high(self):
        return self.high if self.high is not None else self.base().high

    def image(self, value):
        return self.base().image(value)


# -- helpers over any type node ---------------------------------------------


def same_base(a, b):
    """VHDL type compatibility: identical base types."""
    return a is not None and b is not None and a.base() is b.base()


def is_array(vtype):
    return vtype is not None and getattr(vtype, "kind", None) == "array"


def is_record(vtype):
    return vtype is not None and getattr(vtype, "kind", None) == "record"


def is_enum(vtype):
    return vtype is not None and vtype.base().kind == "enum"


def is_numeric(vtype):
    return vtype is not None and vtype.base().kind in (
        "integer",
        "physical",
        "float",
    )


def is_discrete(vtype):
    return vtype is not None and vtype.is_discrete()


def is_scalar(vtype):
    return vtype is not None and vtype.is_scalar()


def element_type(vtype):
    """Element type of an array (sub)type, or None."""
    if is_array(vtype):
        return vtype.element_type
    return None


def scalar_bounds(vtype):
    """(low, high) of a scalar (sub)type."""
    base = vtype.base()
    if vtype.kind == "subtype":
        return vtype.effective_low, vtype.effective_high
    return base.low, base.high


def resolution_of(vtype):
    """The resolution-function entry on a (sub)type, or None."""
    if vtype is not None and vtype.kind == "subtype":
        return vtype.resolution
    return None


def describe(vtype):
    """Readable type name for diagnostics."""
    if vtype is None:
        return "<error-type>"
    name = getattr(vtype, "name", "")
    return name or "<anonymous %s>" % vtype.kind
