"""A persistent (applicative) AVL map.

"There are applicative forms of balanced trees, and other
data-structures, that can instead be used to make the search more
efficient" (§4.3, citing Myers).  Insertion copies only the search
path; old versions remain valid — exactly the property the AG needs so
that an ENV value, once computed, is never changed.
"""


class _Node:
    __slots__ = ("key", "value", "left", "right", "height", "size")

    def __init__(self, key, value, left, right):
        self.key = key
        self.value = value
        self.left = left
        self.right = right
        lh = left.height if left else 0
        rh = right.height if right else 0
        self.height = 1 + (lh if lh > rh else rh)
        self.size = 1 + (left.size if left else 0) + (
            right.size if right else 0
        )


def _balance(node):
    lh = node.left.height if node.left else 0
    rh = node.right.height if node.right else 0
    return lh - rh


def _rotate_right(node):
    left = node.left
    new_right = _Node(node.key, node.value, left.right, node.right)
    return _Node(left.key, left.value, left.left, new_right)


def _rotate_left(node):
    right = node.right
    new_left = _Node(node.key, node.value, node.left, right.left)
    return _Node(right.key, right.value, new_left, right.right)


def _rebalance(node):
    b = _balance(node)
    if b > 1:
        if _balance(node.left) < 0:
            node = _Node(
                node.key, node.value, _rotate_left(node.left), node.right
            )
        return _rotate_right(node)
    if b < -1:
        if _balance(node.right) > 0:
            node = _Node(
                node.key, node.value, node.left, _rotate_right(node.right)
            )
        return _rotate_left(node)
    return node


def _insert(node, key, value):
    if node is None:
        return _Node(key, value, None, None)
    if key < node.key:
        return _rebalance(
            _Node(node.key, node.value, _insert(node.left, key, value),
                  node.right)
        )
    if key > node.key:
        return _rebalance(
            _Node(node.key, node.value, node.left,
                  _insert(node.right, key, value))
        )
    return _Node(key, value, node.left, node.right)


class AVLMap:
    """An immutable ordered map; all updates return new maps."""

    __slots__ = ("_root",)

    EMPTY = None  # set below

    def __init__(self, _root=None):
        self._root = _root

    def insert(self, key, value):
        """A new map with ``key`` bound to ``value`` (replacing)."""
        return AVLMap(_insert(self._root, key, value))

    def get(self, key, default=None):
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif key > node.key:
                node = node.right
            else:
                return node.value
        return default

    def __contains__(self, key):
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __getitem__(self, key):
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            raise KeyError(key)
        return value

    def __len__(self):
        return self._root.size if self._root else 0

    def __bool__(self):
        return self._root is not None

    def items(self):
        """Key-ordered (key, value) pairs."""
        stack = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self):
        return (k for k, _ in self.items())

    def values(self):
        return (v for _, v in self.items())

    def height(self):
        """Tree height (used by the balance property tests)."""
        return self._root.height if self._root else 0

    @classmethod
    def from_items(cls, items):
        m = cls()
        for k, v in items:
            m = m.insert(k, v)
        return m

    def __repr__(self):
        return "AVLMap({%s})" % ", ".join(
            "%r: %r" % kv for kv in self.items()
        )


AVLMap.EMPTY = AVLMap()
