"""Immutable cons lists.

The paper's LEF token lists and MSGS message lists are "built as
attributes of symbols in the principal AG" and merged by associative
functions; sharing tails keeps those merges cheap and safe.  Python
tuples would copy on concatenation; cons cells share.
"""


class Cons:
    """One immutable cons cell."""

    __slots__ = ("head", "tail", "_length")

    def __init__(self, head, tail):
        self.head = head
        self.tail = tail
        self._length = 1 + (tail._length if isinstance(tail, Cons) else 0)

    def __len__(self):
        return self._length

    def __iter__(self):
        node = self
        while isinstance(node, Cons):
            yield node.head
            node = node.tail

    def __repr__(self):
        items = ", ".join(repr(x) for x in self)
        return "Cons[%s]" % items

    def __eq__(self, other):
        if isinstance(other, Cons):
            return list(self) == list(other)
        return NotImplemented

    def __hash__(self):
        return hash(tuple(self))


class _Nil:
    """The empty list singleton."""

    __slots__ = ()
    _length = 0

    def __len__(self):
        return 0

    def __iter__(self):
        return iter(())

    def __repr__(self):
        return "NIL"

    def __bool__(self):
        return False


NIL = _Nil()


def cons(head, tail=NIL):
    """Prepend ``head`` to ``tail``."""
    return Cons(head, tail)


def from_iterable(items):
    """Build a cons list preserving the order of ``items``."""
    node = NIL
    for item in reversed(list(items)):
        node = Cons(item, node)
    return node


def to_list(node):
    """Convert a cons list to a Python list."""
    return list(iterate(node))


def iterate(node):
    """Iterate a cons list (works for both ``Cons`` and ``NIL``)."""
    while isinstance(node, Cons):
        yield node.head
        node = node.tail


def concat(a, b):
    """Concatenate two cons lists, sharing ``b``'s cells.

    This is the associative merge-function shape used for MSGS-style
    attribute classes; cost is ``O(len(a))``.
    """
    for item in reversed(to_list(a)):
        b = Cons(item, b)
    return b
