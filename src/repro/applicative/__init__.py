"""Applicative (persistent, immutable) data structures.

Section 4.3 of the paper builds the symbol table as a value of
attribute evaluation: "to build a new ENV value that binds ID to some
other object(s) we create a new ENV node and insert it at the front of
the tree ... so that the old ENV value is not changed", citing Myers'
*Efficient Applicative Data Types* for balanced alternatives.

- :mod:`repro.applicative.conslist` — the simple list form ("a tree in
  which each node has only one child").
- :mod:`repro.applicative.avl` — a persistent AVL map, the balanced
  form Myers describes, benchmarked against the list in E7.
- :mod:`repro.applicative.env` — the environment abstraction the VHDL
  compiler's ENV attributes hold, supporting shadowing, multiple
  denotations per identifier (overloading), and visibility provenance.
"""

from .conslist import Cons, NIL, concat, cons, from_iterable, iterate, to_list
from .avl import AVLMap
from .env import Binding, Env, LookupResult

__all__ = [
    "AVLMap",
    "Binding",
    "Cons",
    "Env",
    "LookupResult",
    "NIL",
    "concat",
    "cons",
    "from_iterable",
    "iterate",
    "to_list",
]
