"""The applicative environment (§4.3).

"In our VHDL compiler there is an attribute called ENV ... that
represents this mapping.  ENV values are themselves trees whose nodes
contain both the identifier and link(s) to the object(s) that could be
denoted by the identifier.  ENV nodes may also contain information
about how their corresponding objects were made visible (via
USE-clause, local definition, etc.)"

:class:`Env` is that value: an immutable linked structure extended by
prepending, never mutated.  Lookup implements the VHDL visibility rules
the paper's §3.4 discusses:

- an inner declaration hides outer homographs;
- *overloadable* declarations (subprograms, enumeration literals)
  accumulate across scopes until hidden by a non-overloadable one;
- names made visible by USE-clause ("potential" visibility) lose to
  directly visible names, and conflicting potential non-overloadable
  homographs hide each other — unless the conflict was avoided by
  importing individual names, which simply yields fewer bindings here.
"""


class Binding:
    """One identifier-to-object binding with its visibility provenance."""

    __slots__ = ("name", "entry", "overloadable", "via_use")

    def __init__(self, name, entry, overloadable=False, via_use=False):
        self.name = name
        self.entry = entry
        self.overloadable = overloadable
        self.via_use = via_use

    def __repr__(self):
        tags = []
        if self.overloadable:
            tags.append("overloadable")
        if self.via_use:
            tags.append("use")
        return "<Binding %s%s>" % (
            self.name,
            " [%s]" % ", ".join(tags) if tags else "",
        )


class LookupResult:
    """Outcome of a name lookup.

    ``entries`` holds the denoted objects (several when overloaded);
    ``conflict`` is true when potential homographs hid each other.
    """

    __slots__ = ("name", "entries", "conflict")

    def __init__(self, name, entries, conflict=False):
        self.name = name
        self.entries = list(entries)
        self.conflict = conflict

    def __bool__(self):
        return bool(self.entries)

    def sole(self):
        """The single denotation, or ``None`` if absent/overloaded."""
        if len(self.entries) == 1:
            return self.entries[0]
        return None

    def __repr__(self):
        return "LookupResult(%r, %d entr%s%s)" % (
            self.name,
            len(self.entries),
            "y" if len(self.entries) == 1 else "ies",
            ", CONFLICT" if self.conflict else "",
        )


# Node kinds in the persistent spine.
_BIND = 0
_SCOPE = 1


class _EnvNode:
    __slots__ = ("kind", "binding", "tail", "depth")

    def __init__(self, kind, binding, tail):
        self.kind = kind
        self.binding = binding
        self.tail = tail
        if tail is None:
            self.depth = 1 if kind == _SCOPE else 0
        else:
            self.depth = tail.depth + (1 if kind == _SCOPE else 0)


class Env:
    """A persistent environment value.

    The front of the spine is the most local information; binding and
    scope entry both return *new* Env values sharing the old spine.
    """

    __slots__ = ("_node",)

    EMPTY = None  # assigned below

    def __init__(self, _node=None):
        self._node = _node

    # -- construction ---------------------------------------------------------

    def bind(self, name, entry, overloadable=False, via_use=False):
        """A new Env with ``name`` bound at the front of the current scope."""
        binding = Binding(name, entry, overloadable, via_use)
        return Env(_EnvNode(_BIND, binding, self._node))

    def enter_scope(self):
        """A new Env with a fresh innermost scope."""
        return Env(_EnvNode(_SCOPE, None, self._node))

    def bind_all(self, pairs, overloadable=False, via_use=False):
        """Bind several (name, entry) pairs; later pairs end up innermost."""
        env = self
        for name, entry in pairs:
            env = env.bind(name, entry, overloadable, via_use)
        return env

    # -- queries -----------------------------------------------------------------

    @property
    def depth(self):
        """Number of scopes entered."""
        return self._node.depth if self._node else 0

    def bindings(self):
        """All bindings, innermost first (spine order)."""
        node = self._node
        while node is not None:
            if node.kind == _BIND:
                yield node.binding
            node = node.tail

    def __len__(self):
        return sum(1 for _ in self.bindings())

    def lookup(self, name):
        """Resolve ``name`` per the visibility rules (see module doc)."""
        direct = []
        potential = []
        stop_direct = False
        node = self._node
        while node is not None:
            if node.kind == _BIND and node.binding.name == name:
                b = node.binding
                if b.via_use:
                    potential.append(b)
                elif not stop_direct:
                    if b.overloadable:
                        direct.append(b)
                    elif not direct:
                        # First (innermost) match is non-overloadable:
                        # it alone is visible.
                        return LookupResult(name, [b.entry])
                    else:
                        # Overloadables already found hide this outer
                        # non-overloadable homograph — and nothing
                        # further out can be directly visible.
                        stop_direct = True
            node = node.tail
        if direct:
            # Overloadable direct bindings coexist with *overloadable*
            # potential ones: an enum literal imported by USE is not a
            # homograph of a same-named literal of another type, so
            # both stay visible.  Non-overloadable potential bindings
            # are hidden by the direct ones.
            entries = [b.entry for b in direct]
            seen = {id(e) for e in entries}
            for b in potential:
                if b.overloadable and id(b.entry) not in seen:
                    seen.add(id(b.entry))
                    entries.append(b.entry)
            return LookupResult(name, entries)
        if not potential:
            return LookupResult(name, [])
        if all(b.overloadable for b in potential):
            return LookupResult(name, [b.entry for b in potential])
        if len(potential) == 1:
            return LookupResult(name, [potential[0].entry])
        # Distinct potential homographs, not all overloadable: per the
        # USE-clause rules none of them is made directly visible.
        entries = {id(b.entry): b.entry for b in potential}
        if len(entries) == 1:
            return LookupResult(name, [potential[0].entry])
        return LookupResult(name, [], conflict=True)

    def __repr__(self):
        return "Env(depth=%d, %d bindings)" % (self.depth, len(self))


Env.EMPTY = Env()
