"""Waveform tracing.

The paper's compiler fed the VantageSpreadsheet(TM) behavioral
simulation environment — an interactive tool over simulation results.
:class:`Tracer` records every event on selected signals and can render
an ASCII waveform or export a VCD (Value Change Dump) file that any
wave viewer opens.
"""

from .runtime import VArray

from . import TIME_UNITS


class Tracer:
    """Records (time, value) changes of a set of signals."""

    __slots__ = ("kernel", "signals", "history", "_watch")

    def __init__(self, kernel, signals=None):
        self.kernel = kernel
        self.signals = list(signals) if signals else list(kernel.signals)
        self.history = {sig: [(0, sig.value)] for sig in self.signals}
        #: Hot-path view: (signal, its history list) pairs, so
        #: ``on_cycle`` does no dict lookups per traced signal.
        self._watch = [(sig, self.history[sig]) for sig in self.signals]
        kernel.tracers.append(self)

    def on_cycle(self, now, step):
        # Called once per simulation cycle; the event test is an
        # inlined ``Signal.had_event`` (attribute compare).
        for sig, changes in self._watch:
            if sig.event_delta == step:
                changes.append((now, sig.value))

    # -- rendering -------------------------------------------------------------

    def changes(self, sig):
        """The recorded (time_fs, value) change list of one signal."""
        return list(self.history[sig])

    def value_at(self, sig, time_fs):
        """The signal's value as of ``time_fs`` (last change before)."""
        value = None
        for t, v in self.history[sig]:
            if t > time_fs:
                break
            value = v
        return value

    def ascii_wave(self, until_fs, step_fs, image=None):
        """A textual waveform table, one row per signal."""
        times = list(range(0, until_fs + 1, step_fs))
        lines = []
        header = "time(fs)".ljust(16) + " ".join(
            str(t).rjust(8) for t in times)
        lines.append(header)
        for sig in self.signals:
            render = image or sig.image or repr
            cells = [
                str(render(self.value_at(sig, t))).rjust(8)
                for t in times
            ]
            lines.append(sig.name.ljust(16) + " ".join(cells))
        return "\n".join(lines)

    def vcd(self, timescale="1 fs"):
        """A VCD document of the recorded changes."""
        out = [
            "$date repro trace $end",
            "$version repro.sim.tracing $end",
            "$timescale %s $end" % timescale,
            "$scope module top $end",
        ]
        codes = {}
        for i, sig in enumerate(self.signals):
            code = _vcd_code(i)
            codes[sig] = code
            width = (len(sig.value)
                     if isinstance(sig.value, VArray) else 32)
            safe = _vcd_ref(sig.name)
            out.append("$var wire %d %s %s $end" % (width, code, safe))
        out.append("$upscope $end")
        out.append("$enddefinitions $end")

        events = []
        for sig in self.signals:
            for t, v in self.history[sig]:
                events.append((t, sig, v))
        events.sort(key=lambda e: e[0])
        last_t = None
        for t, sig, v in events:
            if t != last_t:
                out.append("#%d" % t)
                last_t = t
            out.append(_vcd_value(v, codes[sig]))
        return "\n".join(out) + "\n"


def _vcd_ref(name):
    """Sanitize a signal name into a legal VCD reference.

    VCD reference names must be printable ASCII without whitespace.
    VHDL extended identifiers (``\\bus a\\``) may contain spaces,
    backslashes, and — via Latin-1 — non-ASCII characters, none of
    which survive a ``$var`` declaration; wave viewers choke on them.
    The hierarchy prefix ``:`` becomes ``.``, extended-identifier
    backslash delimiters are stripped, whitespace becomes ``_``, and
    any remaining character outside printable ASCII is hex-escaped so
    distinct names stay distinct.
    """
    segments = []
    for segment in name.lstrip(":").split(":"):
        if (len(segment) >= 2 and segment.startswith("\\")
                and segment.endswith("\\")):
            segment = segment[1:-1]  # extended-identifier delimiters
        out = []
        for ch in segment:
            if ch.isspace() or ch == "\\":
                out.append("_")
            elif "!" <= ch <= "~":
                out.append(ch)
            else:
                out.append("x%02X" % ord(ch))
        segments.append("".join(out))
    return ".".join(segments) or "unnamed"


def _vcd_code(i):
    """Short printable identifier codes, VCD style."""
    alphabet = "".join(chr(c) for c in range(33, 127))
    code = ""
    i += 1
    while i:
        i, rem = divmod(i - 1, len(alphabet))
        code = alphabet[rem] + code
    return code


def _vcd_value(value, code):
    if isinstance(value, VArray):
        bits = "".join(str(b) for b in value.elems)
        return "b%s %s" % (bits or "0", code)
    if isinstance(value, int):
        return "b%s %s" % (format(value & (2**32 - 1), "b"), code)
    return "b0 %s" % code


def format_fs(fs):
    for unit, scale in reversed(TIME_UNITS):
        if fs and fs % scale == 0:
            return "%d %s" % (fs // scale, unit)
    return "%d fs" % fs
