"""Signals, drivers, projected output waveforms, and resolution.

The paper (§5.1, citing Luckham et al. [13]) stresses that "due to the
preemptive nature of signal assignments in VHDL, the effect of a VHDL
signal assignment is not determinable at the time of the execution of
the assignment": each process drives a signal through its own *driver*
holding a projected output waveform of future transactions, and
assignment edits that projection.

Preemption (VHDL'87 semantics, simplified pulse rejection):

- *transport* delay: new transactions delete previously projected
  transactions at or after the first new time;
- *inertial* delay: new transactions delete the entire projection
  first (pulses shorter than the delay vanish).

When a signal has several drivers it must be *resolved*: the bus
resolution function receives the list of driver values and produces the
signal value.
"""

from .runtime import RuntimeError_


class Transaction:
    """One projected transaction: value to take effect at a time."""

    __slots__ = ("time", "value")

    def __init__(self, time, value):
        self.time = time
        self.value = value

    def __repr__(self):
        return "(%d fs -> %r)" % (self.time, self.value)


class Driver:
    """One process's projected output waveform for one signal."""

    __slots__ = ("process", "signal", "value", "waveform")

    def __init__(self, process, signal, initial):
        self.process = process
        self.signal = signal
        self.value = initial
        self.waveform = []  # Transactions sorted by time

    def schedule(self, now, waveform_elems, transport):
        """Apply an assignment: ``waveform_elems`` is a sequence of
        (value, delay_fs) pairs, already ordered by delay."""
        if not waveform_elems:
            return []
        new = [
            Transaction(now + max(delay, 0), value)
            for value, delay in waveform_elems
        ]
        first = new[0].time
        if transport:
            self.waveform = [t for t in self.waveform if t.time < first]
        else:
            self.waveform = []
        self.waveform.extend(new)
        return [t.time for t in new]

    def advance(self, now):
        """Take due transactions; returns the number that fired (the
        signal becomes *active* when any did — truthiness preserved)."""
        waveform = self.waveform
        fired = 0
        for t in waveform:
            if t.time > now:
                break
            fired += 1
        if fired:
            self.value = waveform[fired - 1].value
            del waveform[:fired]
        return fired

    def next_time(self):
        return self.waveform[0].time if self.waveform else None


class Signal:
    """A signal object with drivers, current/last value, and events."""

    __slots__ = (
        "name",
        "value",
        "last_value",
        "resolution",
        "drivers",
        "event_delta",
        "active_delta",
        "last_event_time",
        "image",
        "kernel",
        "events",
        "transactions",
        "decl_span",
        "waiters",
        "index",
    )

    def __init__(self, name, init, resolution=None, image=None):
        self.name = name
        self.value = init
        self.last_value = init
        self.resolution = resolution
        self.drivers = {}  # process -> Driver
        self.event_delta = -1  # kernel step stamp of the last event
        self.active_delta = -1
        self.last_event_time = None
        self.image = image or repr
        self.kernel = None
        self.events = 0  # lifetime value changes (telemetry)
        self.transactions = 0  # lifetime fired transactions
        #: :class:`repro.diag.SourceSpan` of the declaring VHDL
        #: ``signal``/``port`` declaration, or None for kernel-level
        #: signals created outside elaboration.
        self.decl_span = None
        #: The fanout index: processes *currently waiting* on this
        #: signal.  Maintained by the kernel — entered when a process
        #: suspends on a wait naming this signal, left when it resumes
        #: — so an event only visits genuinely sensitive processes.
        self.waiters = set()
        #: Registration order in the owning kernel (determinism key
        #: for the pending-update set); -1 outside any kernel.
        self.index = -1

    def driver_for(self, process):
        """The driver of ``process``, created on first assignment."""
        driver = self.drivers.get(process)
        if driver is None:
            driver = Driver(process, self, self.value)
            self.drivers[process] = driver
        return driver

    def compute_value(self):
        """Resolve driver values into the signal value."""
        if not self.drivers:
            return self.value
        values = [d.value for d in self.drivers.values()]
        if self.resolution is not None:
            return self.resolution(values)
        if len(values) > 1:
            message = (
                "signal %r has %d drivers but no resolution function"
                % (self.name, len(values))
            )
            if self.decl_span is not None \
                    and self.decl_span.is_anchored:
                # Cite the declaration site — the same span the
                # compile-time RPL002 lint reports for this defect.
                message += " (declared at %s)" % self.decl_span
            exc = RuntimeError_(message)
            exc.span = self.decl_span
            raise exc
        return values[0]

    def update(self, now, step):
        """Advance drivers to ``now``; record event/active stamps.

        Returns True when the signal had an event (value change).
        """
        fired = 0
        for driver in self.drivers.values():
            fired += driver.advance(now)
        if not fired:
            return False
        self.active_delta = step
        self.transactions += fired
        new_value = self.compute_value()
        if new_value != self.value:
            self.last_value = self.value
            self.value = new_value
            self.event_delta = step
            self.last_event_time = now
            self.events += 1
            return True
        return False

    def next_time(self):
        """Earliest projected transaction time over all drivers.

        Hot: this is the lazy-deletion validity check the calendar
        runs on every pop, so it avoids intermediate lists and the
        double ``Driver.next_time`` call of the naive version.
        """
        best = None
        for d in self.drivers.values():
            waveform = d.waveform
            if waveform:
                t = waveform[0].time
                if best is None or t < best:
                    best = t
        return best

    def had_event(self, step):
        """'EVENT during the current simulation cycle."""
        return self.event_delta == step

    def is_active(self, step):
        """'ACTIVE during the current simulation cycle."""
        return self.active_delta == step

    def __repr__(self):
        return "<Signal %s=%s>" % (self.name, self.image(self.value))
