"""The compiled backend: per-design specialized simulation.

:class:`CompiledKernel` closes the source paper's compile-to-code
story: where the generated C of the paper's pipeline was specialized
per design and compiled by the host compiler, this kernel takes the
elaborator's records plus the PR-9 ``DesignGraph``/levelization and
``exec()``\\ s a module rendered by :mod:`repro.sim.codegen`:

- compiled processes are plain functions dispatched directly (no
  generator resumption, no ``RT`` attribute chains), reached through
  **static fanout tables** instead of per-suspension waiter churn;
- **slot-managed** signals (single compiled driver, unresolved,
  single-element inertial waveforms, off the cyclic quarantine) have
  no :class:`~repro.sim.signals.Driver` at all — current values live
  in a flat list indexed by ``Signal.index``, zero-delay assignments
  land in a **due-now buffer** that bypasses the heapq event calendar,
  and delayed ones in per-time buckets;
- everything else — including every process the specializer rejected
  and every signal on the levelization quarantine — runs the untouched
  generic path, interleaved in registration order.

Semantics are **byte-identical** to the activity kernel: the compiled
scheduler executes the same simulation cycles, the same delta cycles,
the same resume order, and maintains every ``Signal`` stamp exactly as
:meth:`Signal.update` does, so traces, VCD output, and the ``sim_*``
metric families match the event backend bit for bit (pinned by
``tests/sim/test_compiled_backend.py`` and the fuzz oracle's third
leg).  Only the ``sim_calendar_*`` cost telemetry may differ — it
describes the scheduler, not the simulated design.

Compiled code objects are cached by design fingerprint (sources +
elaborated topology, **never** elaboration-time values; generic-folded
constants are re-captured from process closures at bind time), so
re-elaborating the same design skips codegen entirely.
"""

import heapq
import time as _time
from collections import OrderedDict

from .codegen import _MISSING, build_program, capture, design_fingerprint
from .kernel import Kernel, SimulationError, _process_order
from .process import WaitRequest
from .runtime import ops
from .vhdlio import AssertionFailure

#: Compiled :class:`~repro.sim.codegen.Program` objects by design
#: fingerprint.  Bounded so long fuzz sweeps cannot grow it without
#: limit; eviction is least-recently-used.
_PROGRAM_CACHE = OrderedDict()
_PROGRAM_CACHE_CAP = 256


def _noop(now, step):
    """Init stand-in for wait-first processes: the generic generator
    executes nothing before its first suspension."""


def _fire_slot(sig, v, now, step):
    """Slot firing: exactly :meth:`Signal.update`'s stamp protocol,
    minus the driver machinery a slot no longer has."""
    sig.active_delta = step
    sig.transactions += 1
    if v != sig.value:
        sig.last_value = sig.value
        sig.value = v
        sig.event_delta = step
        sig.last_event_time = now
        sig.events += 1
        return True
    return False


class CompiledKernel(Kernel):
    """Event kernel executing per-design specialized code.

    Construct like :class:`Kernel`, elaborate the design against it,
    then call :meth:`compile_design` with the elaborator's records
    *before* the first cycle.  Without that call it degrades to the
    plain activity kernel (every structure below stays empty).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.program = None
        self.codegen_seconds = 0.0  # specialization wall-clock
        self.compiled_procs = 0  # processes running as plain functions
        self.slot_signals = 0  # signals with slot (NT, NV) storage
        self.levelized_evals = 0  # slot firings (calendar bypassed)
        self._c_resume = {}  # Process.index -> resume fn
        self._c_pure = {}  # subset: resume fns with no rt access
        self._c_init = {}  # Process.index -> init fn (resume or noop)
        self._fast_dispatch = None  # Signal.index -> (order, proc, fn)
        self._static_waiters = {}  # Signal.index -> set of Processes
        self._t_cell = [0, 0]  # [now, step] cell for condition fns
        self._vals = []  # V: current values by Signal.index
        self._nt = []  # NT: slot next-transaction time (-1 = none)
        self._nv = []  # NV: slot next value
        self._due = []  # due-now slot indices (this timestep)
        self._slot_heap = []  # future slot times (distinct)
        self._slot_buckets = {}  # time -> [slot indices]

    # -- specialization ----------------------------------------------------

    def compile_design(self, records, graph=None):
        """Specialize this elaborated design; returns the Program.

        ``graph`` is an optional pre-built
        :class:`~repro.analysis.netlist.DesignGraph` (the ``--analyze``
        pre-flight builds one; threading it through here avoids a
        second netlist extraction).
        """
        if self._initialized:
            raise SimulationError(
                "compile_design must run before the first cycle")
        t0 = _time.perf_counter()
        if graph is None:
            from ..analysis.netlist import build_netlist

            graph = build_netlist(records)
        from ..analysis.dataflow import levelize

        _levels, _order, cyclic = levelize(graph)
        fingerprint = design_fingerprint(records, self)
        program = _PROGRAM_CACHE.get(fingerprint)
        if program is None:
            program = build_program(self, records, graph, cyclic)
            _PROGRAM_CACHE[fingerprint] = program
            while len(_PROGRAM_CACHE) > _PROGRAM_CACHE_CAP:
                _PROGRAM_CACHE.popitem(last=False)
        else:
            _PROGRAM_CACHE.move_to_end(fingerprint)
        self._bind(program)
        self.codegen_seconds += _time.perf_counter() - t0
        return program

    def _bind(self, program):
        """Instantiate a (possibly cached) Program against *this*
        elaboration: re-capture environment values from the process
        closures (generics change values, never source), exec the
        module, install permanent waits and static fanout."""
        self.program = program
        n = len(self.signals)
        values = [sig.value for sig in self.signals]
        nt = [-1] * n
        nv = [None] * n
        due = []
        buckets = {}
        slot_heap = []
        namespace = {
            "V": values, "NV": nv, "NT": nt, "SIG": self.signals,
            "T": self._t_cell, "_DUE": due, "_B": buckets,
            "_H": slot_heap, "_hpush": heapq.heappush,
            "rt": self.rt, "ops": ops,
        }
        by_index = {proc.index: proc for proc in self.processes}
        for plan in program.plans.values():
            proc = by_index.get(plan.proc_index)
            if proc is None or proc.fn is None:
                raise SimulationError(
                    "compiled program does not match this elaboration")
            for mangled, orig in plan.env.items():
                value = capture(proc.fn, orig)
                if value is _MISSING:
                    raise SimulationError(
                        "cannot re-capture %r for process %r"
                        % (orig, proc.name))
                namespace[mangled] = value
        exec(program.code, namespace)
        cmap = {}
        pure_map = {}
        init_map = {}
        static = self._static_waiters
        for plan in program.plans.values():
            proc = by_index[plan.proc_index]
            fn = namespace[plan.resume]
            cmap[plan.proc_index] = fn
            if plan.pure:
                pure_map[plan.proc_index] = fn
            init_map[plan.proc_index] = (
                fn if plan.init_runs_body else _noop)
            cond = namespace[plan.cond] if plan.cond else None
            wait_sigs = [self.signals[i] for i in plan.wait_indices]
            # The permanent wait: compiled processes always loop back
            # to the same suspension, so it is installed once and the
            # fanout registration becomes a static table.
            proc.wait = WaitRequest(wait_sigs, cond, None)
            for i in plan.wait_indices:
                static.setdefault(i, set()).add(proc)
        self._c_resume = cmap
        self._c_pure = pure_map
        self._c_init = init_map
        # The per-signal dispatch table: when EVERY process compiled
        # pure with no condition and a single-signal permanent wait,
        # a fired slot maps straight to its (order, proc, fn) rows —
        # phase 3 becomes merge-by-order + call, with no candidate
        # set, no wait/cond/done re-checks (pure processes cannot
        # terminate, re-wait, or grow dynamic waiters).
        fast = None
        if all(p.index in cmap for p in self.processes):
            rows = {}
            for plan in program.plans.values():
                if not plan.pure or plan.cond is not None \
                        or len(plan.wait_indices) != 1:
                    rows = None
                    break
                proc = by_index[plan.proc_index]
                rows.setdefault(plan.wait_indices[0], []).append(
                    (proc.index, proc, namespace[plan.resume]))
            if rows is not None:
                for lst in rows.values():
                    lst.sort()
                fast = rows
        self._fast_dispatch = fast
        self._vals = values
        self._nt = nt
        self._nv = nv
        self._due = due
        self._slot_buckets = buckets
        self._slot_heap = slot_heap
        self.compiled_procs = len(program.plans)
        self.slot_signals = len(program.slot_indices)

    # -- scheduling --------------------------------------------------------

    def _slot_peek(self):
        """Earliest pending slot time (lazy deletion, like the
        calendar: a heap time is live while some bucketed slot still
        has its next-transaction time there)."""
        heap = self._slot_heap
        buckets = self._slot_buckets
        nt = self._nt
        while heap:
            t = heap[0]
            bucket = buckets.get(t)
            if bucket is not None and any(nt[i] == t for i in bucket):
                return t if t >= self.now else self.now
            heapq.heappop(heap)
            if bucket is not None:
                del buckets[t]
        return None

    def _peek_time(self):
        due = self._due
        if due:
            nt = self._nt
            now = self.now
            if any(nt[i] == now for i in due):
                return now
            # Every due-now entry was preempted by a later delayed
            # assignment; drop them (their times live in the buckets).
            del due[:]
        tc = Kernel._peek_time(self)
        ts = self._slot_peek()
        if tc is None:
            return ts
        if ts is None:
            return tc
        return tc if tc <= ts else ts

    def _pop_slots(self, tn):
        """Slot half of phase 1: due-now buffer plus due buckets →
        list of firing slot indices (each marked consumed)."""
        fired = []
        nt = self._nt
        due = self._due
        if due:
            for i in due:
                if nt[i] == tn:
                    nt[i] = -1
                    fired.append(i)
            del due[:]
        heap = self._slot_heap
        buckets = self._slot_buckets
        while heap and heap[0] <= tn:
            t = heapq.heappop(heap)
            bucket = buckets.pop(t, None)
            if bucket:
                for i in bucket:
                    if nt[i] == t:
                        nt[i] = -1
                        fired.append(i)
        return fired

    # -- execution ---------------------------------------------------------

    def initialize(self):
        """Initialization phase: compiled processes whose generic
        form runs its body before the first wait run it here; pure
        wait-first ones count the resume without executing (exactly
        what resuming the generator to its first yield did)."""
        if self._initialized:
            return
        cmap = self._c_resume
        if not cmap:
            Kernel.initialize(self)
            return
        self._initialized = True
        if self._traced and self._trace_ctx is None:
            from ..trace.context import current_context

            self._trace_ctx = current_context()
        self.step = 0
        cell = self._t_cell
        cell[0] = self.now
        cell[1] = 0
        init_map = self._c_init
        for proc in list(self.processes):
            fn = init_map.get(proc.index)
            if fn is None:
                self._execute(proc)
            else:
                self._run_compiled(proc, fn, self.now, 0)

    def _run_compiled(self, proc, fn, now, step):
        """Dispatch one compiled process: the exact bookkeeping of
        :meth:`Kernel._execute` around a plain function call."""
        self.current_process = proc
        proc.resumes += 1
        self._m_resumes.inc()
        rec = False
        if self._traced:
            self._trace_resumes = n = self._trace_resumes + 1
            rec = (n - 1) % self.trace_sample == 0
        ts_us = _time.time() * 1e6 if rec else 0.0
        t0 = _time.perf_counter() if (self._timed or rec) else 0.0
        try:
            fn(now, step)
        except AssertionFailure:
            proc.done = True
            raise
        finally:
            if self._timed or rec:
                dt = _time.perf_counter() - t0
                if self._timed:
                    proc.exec_seconds += dt
                if rec:
                    self._trace_span("process_resume", ts_us, dt * 1e6,
                                     process=proc.name)
            self.current_process = None

    def _cycle(self, tn):
        cmap = self._c_resume
        if not cmap:
            Kernel._cycle(self, tn)
            return
        self.now = now = tn
        self.step = step = self.step + 1
        cell = self._t_cell
        cell[0] = now
        cell[1] = step
        self.cycles += 1
        self._m_cycles.inc()

        pending, expired = self._pop_due(tn)
        slot_due = self._pop_slots(tn)

        # The fast lane: every process compiled pure with a
        # single-signal permanent wait (so no dynamic waiters, no
        # conditions, no terminations are possible) and nothing but
        # slots fired.  Phase 2 stamps the signals and gathers
        # pre-sorted (order, proc, fn) rows straight from the
        # per-signal dispatch table; phase 3 is merge-by-order + call.
        fast = self._fast_dispatch
        if fast is not None and slot_due and not pending \
                and not expired and not (self._timed or self._traced):
            self.levelized_evals += len(slot_due)
            values = self._vals
            nv = self._nv
            signals = self.signals
            fast_get = fast.get
            fired = []
            extend = fired.extend
            fanout = 0
            slot_due.sort()
            for idx in slot_due:
                sig = signals[idx]
                sig.active_delta = step
                sig.transactions += 1
                v = nv[idx]
                if v != sig.value:
                    sig.last_value = sig.value
                    sig.value = v
                    sig.event_delta = step
                    sig.last_event_time = now
                    sig.events += 1
                    values[idx] = v
                    rows = fast_get(idx)
                    if rows:
                        fanout += len(rows)
                        extend(rows)
            if fanout:
                self.fanout_visits += fanout
            for tracer in self.tracers:
                tracer.on_cycle(now, step)
            fired.sort()
            inc = self._m_resumes.inc
            for _order, proc, fn in fired:
                proc.resumes += 1
                inc()
                fn(now, step)
            return

        # Phase 2, merged: calendar-managed updates and slot firings
        # interleave in Signal.index order; both reach waiting
        # processes through the dynamic fanout index (generic
        # processes) and the static tables (compiled ones).
        event_procs = set()
        if slot_due and not pending:
            # Hot path — only slots fired (a fully specialized
            # design): :func:`_fire_slot` is inlined.
            self.levelized_evals += len(slot_due)
            values = self._vals
            nv = self._nv
            signals = self.signals
            static_get = self._static_waiters.get
            collect = event_procs.update
            fanout = 0
            slot_due.sort()
            for idx in slot_due:
                sig = signals[idx]
                sig.active_delta = step
                sig.transactions += 1
                v = nv[idx]
                if v != sig.value:
                    sig.last_value = sig.value
                    sig.value = v
                    sig.event_delta = step
                    sig.last_event_time = now
                    sig.events += 1
                    values[idx] = v
                    waiters = sig.waiters
                    if waiters:
                        fanout += len(waiters)
                        collect(waiters)
                    sw = static_get(idx)
                    if sw:
                        fanout += len(sw)
                        collect(sw)
            if fanout:
                self.fanout_visits += fanout
        elif pending or slot_due:
            values = self._vals
            nv = self._nv
            static = self._static_waiters
            fanout = 0
            items = [(sig.index, sig, False) for sig in pending]
            if slot_due:
                self.levelized_evals += len(slot_due)
                signals = self.signals
                items.extend((i, signals[i], True) for i in slot_due)
            items.sort()
            for idx, sig, is_slot in items:
                if is_slot:
                    changed = _fire_slot(sig, nv[idx], now, step)
                else:
                    changed = sig.update(now, step)
                if changed:
                    values[idx] = sig.value
                    waiters = sig.waiters
                    if waiters:
                        fanout += len(waiters)
                        event_procs.update(waiters)
                    sw = static.get(idx)
                    if sw:
                        fanout += len(sw)
                        event_procs.update(sw)
            if fanout:
                self.fanout_visits += fanout

        for tracer in self.tracers:
            tracer.on_cycle(now, step)

        # Phase 3: identical selection and order to the generic
        # kernel; compiled processes keep their permanent wait and
        # static fanout registration.  Selection and dispatch fuse
        # into one pass: process execution cannot change *current*
        # signal values (assignments only schedule), so a later
        # candidate's condition reads the same state either way.
        if event_procs and not expired:
            hot = not (self._timed or self._traced)
            m_resumes_inc = self._m_resumes.inc
            pure_get = self._c_pure.get
            cmap_get = cmap.get
            for proc in sorted(event_procs, key=_process_order):
                if proc.done:
                    continue
                w = proc.wait
                if w is None:
                    continue
                cond = w.condition
                if cond is not None and not cond():
                    continue
                if hot:
                    fn = pure_get(proc.index)
                    if fn is not None:
                        # Pure resume: only slot storage and ``ops``
                        # arithmetic — nothing it can reach reads
                        # ``current_process`` or raises an assertion.
                        proc.resumes += 1
                        m_resumes_inc()
                        fn(now, step)
                        continue
                fn = cmap_get(proc.index)
                if fn is None:
                    for sig in w.signals:
                        sig.waiters.discard(proc)
                    proc.wait = None
                    proc.timeout_at = None
                    self._execute(proc)
                else:
                    self._run_compiled(proc, fn, now, step)
        elif expired:
            resumed = []
            for proc in sorted(expired | event_procs,
                               key=_process_order):
                if proc.done:
                    continue
                w = proc.wait
                if w is None:
                    continue
                if proc in expired:
                    resumed.append(proc)
                    continue
                cond = w.condition
                if cond is None or cond():
                    resumed.append(proc)
            cmap_get = cmap.get
            for proc in resumed:
                if proc.index in cmap:
                    continue
                w = proc.wait
                if w is not None:
                    for sig in w.signals:
                        sig.waiters.discard(proc)
                proc.wait = None
                proc.timeout_at = None
            for proc in resumed:
                fn = cmap_get(proc.index)
                if fn is None:
                    self._execute(proc)
                else:
                    self._run_compiled(proc, fn, now, step)

    def _note_truncation(self, until, next_time):
        """Parent accounting plus the slot projections a stopped run
        abandons (every pending slot time is beyond ``until``: it was
        at or after the next-activity time that triggered the stop)."""
        pending = sum(
            len(driver.waveform)
            for sig in self.signals
            for driver in sig.drivers.values()
        )
        pending += sum(
            1 for proc in self.processes
            if not proc.done and proc.wait is not None
            and proc.timeout_at is not None and proc.timeout_at > until
        )
        pending += sum(1 for t in self._nt if t != -1)
        if not pending:
            return
        self.truncated_transactions += pending
        self._m_truncated.set(self.truncated_transactions)
        from .kernel import _KERNEL_ORIGIN
        from .tracing import format_fs

        self.logger.report(
            "note",
            "simulation truncated at %s: %d pending transaction(s)/"
            "timeout(s) beyond the stop time (next activity at %s)"
            % (format_fs(until), pending, format_fs(next_time)),
            until, _KERNEL_ORIGIN, fail=False)
