"""Runtime support: values and the predefined VHDL operations.

"The runtime support functions perform all the predefined VHDL
operations."  Scalar runtime values are plain ints (enumeration
position, integer value, femtoseconds for TIME) or floats (REAL);
composites are :class:`VArray` and :class:`VRecord`.  The :data:`ops`
namespace is what generated code calls (``ops.add``, ``ops.concat``,
...); it is deliberately flat and stable because it is a *code
generation target*.
"""


class RuntimeError_(Exception):
    """A runtime check failed (range, index, resolution, assertion)."""


class VArray:
    """An array value: direction, bounds, and element list.

    Bounds travel with the value because VHDL objects of unconstrained
    array types take their constraint from their initial value or
    actual (§3.1's composite formals).  Immutable by convention — all
    ops build new arrays.
    """

    __slots__ = ("left", "direction", "right", "elems")

    def __init__(self, left, direction, right, elems):
        self.left = left
        self.direction = direction
        self.right = right
        self.elems = list(elems)

    @classmethod
    def from_list(cls, elems, left=0, direction="to"):
        n = len(elems)
        if direction == "to":
            right = left + n - 1
        else:
            right = left - n + 1
        return cls(left, direction, right, elems)

    def __len__(self):
        return len(self.elems)

    def offset(self, index):
        """Element position for VHDL index ``index`` (with check)."""
        if self.direction == "to":
            off = index - self.left
        else:
            off = self.left - index
        if not 0 <= off < len(self.elems):
            raise RuntimeError_(
                "index %r out of range %r %s %r"
                % (index, self.left, self.direction, self.right)
            )
        return off

    def __eq__(self, other):
        if isinstance(other, VArray):
            return self.elems == other.elems
        return NotImplemented

    def __hash__(self):
        return hash(tuple(self.elems))

    def __repr__(self):
        return "VArray(%r %s %r: %r)" % (
            self.left,
            self.direction,
            self.right,
            self.elems,
        )


class VRecord:
    """A record value: ordered field name -> value mapping."""

    __slots__ = ("fields",)

    def __init__(self, fields):
        self.fields = dict(fields)

    def __eq__(self, other):
        if isinstance(other, VRecord):
            return self.fields == other.fields
        return NotImplemented

    def __repr__(self):
        return "VRecord(%r)" % (self.fields,)


def _as_key(value):
    if isinstance(value, VArray):
        return tuple(value.elems)
    return value


class _Ops:
    """The predefined-operation namespace generated code targets."""

    # -- numeric ---------------------------------------------------------

    @staticmethod
    def add(a, b):
        return a + b

    @staticmethod
    def sub(a, b):
        return a - b

    @staticmethod
    def mul(a, b):
        return a * b

    @staticmethod
    def div(a, b):
        if b == 0:
            raise RuntimeError_("division by zero")
        if isinstance(a, float) or isinstance(b, float):
            return a / b
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q

    @staticmethod
    def mod(a, b):
        # VHDL mod takes the sign of b, exactly like Python's %.
        if b == 0:
            raise RuntimeError_("mod by zero")
        return a % b

    @staticmethod
    def rem(a, b):
        if b == 0:
            raise RuntimeError_("rem by zero")
        return a - b * int(_Ops.div(a, b))

    @staticmethod
    def neg(a):
        return -a

    @staticmethod
    def pos(a):
        return a

    @staticmethod
    def abs_(a):
        return abs(a)

    @staticmethod
    def pow_(a, b):
        if isinstance(a, int) and b < 0:
            raise RuntimeError_("negative exponent for integer **")
        return a**b

    # -- relational (arrays compare lexicographically) ----------------------

    @staticmethod
    def eq(a, b):
        return 1 if _as_key(a) == _as_key(b) else 0

    @staticmethod
    def ne(a, b):
        return 1 if _as_key(a) != _as_key(b) else 0

    @staticmethod
    def lt(a, b):
        return 1 if _as_key(a) < _as_key(b) else 0

    @staticmethod
    def le(a, b):
        return 1 if _as_key(a) <= _as_key(b) else 0

    @staticmethod
    def gt(a, b):
        return 1 if _as_key(a) > _as_key(b) else 0

    @staticmethod
    def ge(a, b):
        return 1 if _as_key(a) >= _as_key(b) else 0

    # -- logical (bit/boolean are 0/1; arrays apply elementwise) -----------

    @staticmethod
    def _logical(a, b, fn):
        if isinstance(a, VArray) or isinstance(b, VArray):
            if not (isinstance(a, VArray) and isinstance(b, VArray)):
                raise RuntimeError_("logical op on array and scalar")
            if len(a) != len(b):
                raise RuntimeError_(
                    "logical op on arrays of different lengths "
                    "(%d and %d)" % (len(a), len(b))
                )
            return VArray(
                a.left,
                a.direction,
                a.right,
                [fn(x, y) for x, y in zip(a.elems, b.elems)],
            )
        return fn(a, b)

    @staticmethod
    def and_(a, b):
        return _Ops._logical(a, b, lambda x, y: x & y)

    @staticmethod
    def or_(a, b):
        return _Ops._logical(a, b, lambda x, y: x | y)

    @staticmethod
    def xor(a, b):
        return _Ops._logical(a, b, lambda x, y: x ^ y)

    @staticmethod
    def nand(a, b):
        return _Ops._logical(a, b, lambda x, y: 1 - (x & y))

    @staticmethod
    def nor(a, b):
        return _Ops._logical(a, b, lambda x, y: 1 - (x | y))

    @staticmethod
    def not_(a):
        if isinstance(a, VArray):
            return VArray(
                a.left, a.direction, a.right, [1 - x for x in a.elems]
            )
        return 1 - a

    # -- arrays ------------------------------------------------------------

    @staticmethod
    def concat(a, b):
        """``&``: result index range starts at the left operand's left
        (VHDL'87 rule when the left operand is non-null)."""
        xs = a.elems if isinstance(a, VArray) else [a]
        ys = b.elems if isinstance(b, VArray) else [b]
        if isinstance(a, VArray) and len(a):
            return VArray.from_list(xs + ys, a.left, a.direction)
        if isinstance(b, VArray):
            return VArray.from_list(xs + ys, b.left, b.direction)
        return VArray.from_list(xs + ys)

    @staticmethod
    def index(arr, i):
        if not isinstance(arr, VArray):
            raise RuntimeError_("indexing a non-array value")
        return arr.elems[arr.offset(i)]

    @staticmethod
    def slice_(arr, left, direction, right):
        if not isinstance(arr, VArray):
            raise RuntimeError_("slicing a non-array value")
        if direction != arr.direction:
            raise RuntimeError_(
                "slice direction %s differs from array direction %s"
                % (direction, arr.direction)
            )
        if direction == "to":
            n = right - left + 1
        else:
            n = left - right + 1
        if n <= 0:
            return VArray(left, direction, right, [])
        lo = arr.offset(left)
        return VArray(left, direction, right, arr.elems[lo : lo + n])

    @staticmethod
    def array_update(arr, i, value):
        """A copy of ``arr`` with element ``i`` replaced (for indexed
        variable assignment targets)."""
        off = arr.offset(i)
        elems = list(arr.elems)
        elems[off] = value
        return VArray(arr.left, arr.direction, arr.right, elems)

    @staticmethod
    def slice_update(arr, left, direction, right, value):
        """A copy of ``arr`` with a slice replaced."""
        new = ops.slice_(arr, arr.left, arr.direction, arr.right)
        for k, i in enumerate(
            range(left, right + 1)
            if direction == "to"
            else range(left, right - 1, -1)
        ):
            new.elems[new.offset(i)] = value.elems[k]
        return new

    @staticmethod
    def rebound(arr, left, direction, right):
        """Renumber an array value to a target subtype's bounds (the
        implicit subtype conversion of VHDL assignment)."""
        if not isinstance(arr, VArray):
            raise RuntimeError_("array value expected")
        if direction == "to":
            n = right - left + 1
        else:
            n = left - right + 1
        if len(arr.elems) != max(n, 0):
            raise RuntimeError_(
                "array value of length %d assigned to a target of "
                "length %d" % (len(arr.elems), max(n, 0)))
        return VArray(left, direction, right, arr.elems)

    @staticmethod
    def fill(left, direction, right, value):
        """An array of the given bounds filled with ``value``."""
        if direction == "to":
            n = right - left + 1
        else:
            n = left - right + 1
        return VArray(left, direction, right, [value] * max(n, 0))

    @staticmethod
    def array_from(positional, left, direction, right=None, others=None):
        """Build an array value from aggregate pieces."""
        elems = list(positional)
        if right is None:
            if direction == "to":
                right = left + len(elems) - 1
            else:
                right = left - len(elems) + 1
        n = (right - left + 1) if direction == "to" else (left - right + 1)
        n = max(n, 0)
        if others is not None:
            while len(elems) < n:
                elems.append(others)
        if len(elems) != n:
            raise RuntimeError_(
                "aggregate has %d elements for a range of length %d"
                % (len(elems), n)
            )
        return VArray(left, direction, right, elems)

    @staticmethod
    def string_to_array(text, enum_positions, left=1, direction="to"):
        """A string/bit-string literal as an array of positions."""
        return VArray.from_list(
            [enum_positions[ch] for ch in text], left, direction
        )

    @staticmethod
    def range_of(arr):
        """(left, direction, right) of an array value — 'RANGE."""
        return (arr.left, arr.direction, arr.right)

    @staticmethod
    def reverse_range_of(arr):
        d = "downto" if arr.direction == "to" else "to"
        return (arr.right, d, arr.left)

    @staticmethod
    def length(arr):
        return len(arr)

    # -- records ------------------------------------------------------------

    @staticmethod
    def field(rec, name):
        try:
            return rec.fields[name]
        except (AttributeError, KeyError):
            raise RuntimeError_("no record field %r" % name) from None

    @staticmethod
    def record_from(pairs):
        return VRecord(pairs)

    @staticmethod
    def record_update(rec, name, value):
        fields = dict(rec.fields)
        fields[name] = value
        return VRecord(fields)

    # -- checks and conversions ----------------------------------------------

    @staticmethod
    def check_range(value, low, high, what="value"):
        if not low <= value <= high:
            raise RuntimeError_(
                "%s %r out of range %r to %r" % (what, value, low, high)
            )
        return value

    @staticmethod
    def to_integer(x):
        return int(round(x)) if isinstance(x, float) else int(x)

    @staticmethod
    def to_float(x):
        return float(x)

    @staticmethod
    def iter_range(left, direction, right):
        """Loop iteration for ``for i in left {to|downto} right``."""
        if direction == "to":
            return range(left, right + 1)
        return range(left, right - 1, -1)

    # -- scalar attribute support ------------------------------------------------

    @staticmethod
    def succ(value, high):
        if value >= high:
            raise RuntimeError_("'SUCC past the end of the type")
        return value + 1

    @staticmethod
    def pred(value, low):
        if value <= low:
            raise RuntimeError_("'PRED past the start of the type")
        return value - 1


ops = _Ops()
