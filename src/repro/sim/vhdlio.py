"""VHDL I/O: assertion reporting and simple text output.

The virtual machine's third module.  Assertion violations are reported
with their severity, simulation time, and originating process;
``severity failure`` raises and stops the simulation, the weaker
levels log.  A TEXTIO-flavored line writer covers the subset's output
needs (models printing traces).
"""

SEVERITIES = ("note", "warning", "error", "failure")


class AssertionFailure(Exception):
    """An assertion with severity FAILURE fired."""


def format_time(fs):
    """Render femtoseconds in the largest even unit, like TIME'IMAGE."""
    from . import TIME_UNITS

    for unit, scale in reversed(TIME_UNITS):
        if fs and fs % scale == 0:
            return "%d %s" % (fs // scale, unit)
    return "%d fs" % fs


class SeverityLogger:
    """Collects assertion reports; raises on FAILURE."""

    def __init__(self, sink=None, fail_on="failure"):
        self.records = []
        self.sink = sink  # callable(str) or None
        self.counts = {s: 0 for s in SEVERITIES}
        self.fail_on = SEVERITIES.index(fail_on)

    def report(self, severity, message, now=0, process=None,
               fail=True):
        """Record one report.  ``fail=False`` suppresses the
        :class:`AssertionFailure` promotion — used for kernel-internal
        bookkeeping notes (e.g. truncation) that must never stop the
        simulation regardless of ``fail_on``."""
        severity = severity.lower()
        if severity not in SEVERITIES:
            severity = "error"
        self.counts[severity] += 1
        where = process.name if process is not None else "<elaboration>"
        line = "%s: assertion %s at %s (%s): %s" % (
            where,
            severity,
            format_time(now),
            severity.upper(),
            message,
        )
        self.records.append((severity, now, where, message))
        if self.sink is not None:
            self.sink(line)
        if fail and SEVERITIES.index(severity) >= self.fail_on:
            raise AssertionFailure(line)

    def errors(self):
        return self.counts["error"] + self.counts["failure"]


class TextBuffer:
    """A minimal TEXTIO-style line sink (WRITE/WRITELINE shape)."""

    def __init__(self, sink=None):
        self.lines = []
        self._current = []
        self.sink = sink

    def write(self, value, image=str):
        self._current.append(image(value))

    def writeline(self):
        line = "".join(self._current)
        self._current = []
        self.lines.append(line)
        if self.sink is not None:
            self.sink(line)

    def text(self):
        return "\n".join(self.lines)
