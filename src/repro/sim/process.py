"""Processes and wait conditions.

A VHDL process compiles to a Python generator; suspending is a
``yield`` of a :class:`WaitRequest`.  The kernel resumes a process when
one of its awaited signals has an event and the condition holds, or
when its timeout expires — the simulation-cycle synchronization the
paper lists among VHDL's hardware-specific features.
"""


class WaitRequest:
    """One ``wait [on ...] [until ...] [for ...]`` suspension."""

    __slots__ = ("signals", "condition", "timeout")

    def __init__(self, signals=None, condition=None, timeout=None):
        self.signals = list(signals) if signals else []
        self.condition = condition  # nullary callable or None
        self.timeout = timeout  # delay in fs or None

    def __repr__(self):
        parts = []
        if self.signals:
            parts.append("on %s" % ",".join(s.name for s in self.signals))
        if self.condition is not None:
            parts.append("until <cond>")
        if self.timeout is not None:
            parts.append("for %d fs" % self.timeout)
        return "<wait %s>" % " ".join(parts or ["forever"])


class Process:
    """A running process: generator plus current wait state.

    ``sensitivity`` is the statically declared sensitivity list (or
    None for wait-driven processes) — kept so telemetry and tracers
    can attribute wakeups.  ``resumes`` counts kernel resumptions and
    ``exec_seconds`` accumulates wall-clock execution time (only
    advanced when the kernel's metrics registry is enabled)."""

    __slots__ = (
        "name",
        "generator",
        "fn",
        "wait",
        "timeout_at",
        "done",
        "kernel",
        "sensitivity",
        "resumes",
        "exec_seconds",
        "decl_line",
        "index",
    )

    def __init__(self, name, generator, sensitivity=None,
                 decl_line=None):
        self.name = name
        self.generator = generator
        #: The nullary generator function the generator came from, or
        #: None.  The compiled backend reads its closure to recover
        #: the elaboration-time bindings (signals, folded constants)
        #: the generated model captured.
        self.fn = None
        self.wait = None
        self.timeout_at = None
        self.done = False
        self.kernel = None
        self.sensitivity = (
            list(sensitivity) if sensitivity is not None else None)
        self.resumes = 0
        self.exec_seconds = 0.0
        self.decl_line = decl_line  # declaring source line or None
        #: Registration order in the owning kernel; the calendar
        #: scheduler resumes in this order (determinism), matching the
        #: reference scan's sweep order.  -1 outside any kernel.
        self.index = -1

    def should_resume(self, step, now):
        """Resume test against the current cycle's events.

        Only the :class:`~repro.sim.kernel.ScanKernel` reference
        scheduler sweeps with this predicate; the calendar kernel
        reaches waiting processes through the signal fanout index and
        the timeout calendar instead."""
        if self.done or self.wait is None:
            return False
        w = self.wait
        if self.timeout_at is not None and now >= self.timeout_at:
            return True
        if w.signals and any(s.had_event(step) for s in w.signals):
            if w.condition is None:
                return True
            return bool(w.condition())
        return False

    def __repr__(self):
        state = "done" if self.done else ("waiting" if self.wait else "ready")
        return "<Process %s [%s]>" % (self.name, state)
