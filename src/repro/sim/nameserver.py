"""The Name Server: "the means of identifying by name each object in
the simulated system" (§2.1).

Every signal, process, and instance registered during elaboration gets
a hierarchical path name (``:top:u1:count``); the server answers
lookups by exact path, by suffix, and by glob pattern, and can dump the
design hierarchy — the services an interactive simulation environment
(the VantageSpreadsheet of the paper) needs from its kernel.
"""

import fnmatch

SEPARATOR = ":"


class NameServer:
    """Hierarchical registry of simulated objects."""

    def __init__(self):
        self._objects = {}  # path -> (kind, object)
        self._children = {}  # path -> [child paths]

    def register(self, path, kind, obj):
        """Register ``obj`` under ``path`` (e.g. ':top:u1:count')."""
        if path in self._objects:
            raise KeyError("path %r already registered" % path)
        self._objects[path] = (kind, obj)
        parent = path.rpartition(SEPARATOR)[0]
        self._children.setdefault(parent, []).append(path)
        return path

    def lookup(self, path):
        """The object at an exact path, or None."""
        entry = self._objects.get(path)
        return entry[1] if entry else None

    def kind_of(self, path):
        entry = self._objects.get(path)
        return entry[0] if entry else None

    def find(self, pattern):
        """Paths matching a glob pattern (``:top:*:count``)."""
        return sorted(
            p for p in self._objects if fnmatch.fnmatch(p, pattern)
        )

    def by_suffix(self, name):
        """Paths whose final component is ``name``."""
        suffix = SEPARATOR + name
        return sorted(
            p for p in self._objects
            if p == name or p.endswith(suffix)
        )

    def children(self, path):
        return sorted(self._children.get(path, []))

    def signals(self):
        """All registered signals as (path, Signal)."""
        return sorted(
            (p, o) for p, (k, o) in self._objects.items() if k == "signal"
        )

    def tree(self, root=""):
        """An indented dump of the hierarchy under ``root``."""
        lines = []

        def walk(path, depth):
            for child in self.children(path):
                kind, _ = self._objects[child]
                name = child.rpartition(SEPARATOR)[2]
                lines.append("%s%s [%s]" % ("  " * depth, name, kind))
                walk(child, depth + 1)

        walk(root, 0)
        return "\n".join(lines)

    def __len__(self):
        return len(self._objects)
