"""The target virtual machine (§2.1).

"The virtual machine consists of four modules: (1) Simulation Kernel,
(2) Runtime Support, (3) VHDL I/O, (4) Name Server."

- :mod:`repro.sim.kernel` — the simulation kernel: simulation-cycle
  semantics, delta cycles, activity-driven process scheduling (event
  calendar + signal fanout index; :class:`~repro.sim.kernel.ScanKernel`
  keeps the full-scan reference scheduler for differential testing).
- :mod:`repro.sim.compiled` / :mod:`repro.sim.codegen` — the compiled
  backend: per-design specialized code (flat signal storage, direct
  process dispatch, calendar-bypassing slot updates), byte-identical
  to the event kernel.
- :mod:`repro.sim.signals` — signals, drivers, projected output
  waveforms, preemption, bus resolution.
- :mod:`repro.sim.process` — processes and wait conditions.
- :mod:`repro.sim.runtime` — runtime support: all the predefined VHDL
  operations over runtime values, plus the per-process runtime facade
  (``rt``) generated code calls.
- :mod:`repro.sim.vhdlio` — VHDL I/O (assertion reporting and a
  TEXTIO-flavored write path).
- :mod:`repro.sim.nameserver` — "the means of identifying by name each
  object in the simulated system".
"""

from .kernel import Kernel, ScanKernel, SimulationError
from .compiled import CompiledKernel
from .signals import Signal
from .runtime import VArray, VRecord, ops
from .nameserver import NameServer

__all__ = [
    "CompiledKernel",
    "Kernel",
    "NameServer",
    "ScanKernel",
    "Signal",
    "SimulationError",
    "VArray",
    "VRecord",
    "ops",
]

#: femtoseconds per time unit, primary unit first — the runtime's
#: representation of type TIME.
TIME_UNITS = (
    ("fs", 1),
    ("ps", 10**3),
    ("ns", 10**6),
    ("us", 10**9),
    ("ms", 10**12),
    ("sec", 10**15),
    ("min", 60 * 10**15),
    ("hr", 3600 * 10**15),
)
