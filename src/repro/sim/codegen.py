"""Per-design specialization: flow-graph code for the compiled backend.

The source paper's pipeline ends in generated C compiled by the host
compiler; this module is the reproduction's equivalent of that last
mile.  Given the elaborator's records and the PR-9
:class:`~repro.analysis.netlist.DesignGraph`, it re-parses each
generated model's ``py_source``, classifies every process, and renders
one specialized Python module per design:

- **canonical processes** — a single ``yield rt.wait(...)`` as the
  first or last statement of the ``while True`` loop, no persistent
  locals — become plain functions called directly by the
  :class:`~repro.sim.compiled.CompiledKernel` dispatch loop, with
  ``rt.read(sig)`` rewritten to a flat-list subscript ``V[i]``
  (current values indexed by ``Signal.index``) and signal attributes
  (``'EVENT``/``'ACTIVE``/``'LAST_VALUE``) to direct stamp compares;
- **slot-managed signals** — driven by exactly one canonical process,
  unresolved, off the cyclic quarantine, and only ever assigned
  single-element inertial (or zero-delay transport) waveforms — drop
  their ``Driver`` objects entirely: the projection collapses to a
  ``(next_time NT[i], next_value NV[i])`` slot pair, zero-delay
  assignments append to a due-now buffer that bypasses the heapq
  event calendar, and delayed assignments go to per-time buckets;
- everything else — multiple waits, wait timeouts, persistent VHDL
  variables, resolved/multi-driver targets, transport delays, helper
  calls that may assign, cyclic-quarantine membership — **falls back**
  to the untouched generic generator/`RT`/calendar path, interleaved
  with compiled processes in registration-index order so semantics
  stay byte-identical to the activity kernel.

The rendered module is pure: it depends only on the design's
``py_source`` texts and signal/process indices, never on
elaboration-time values (generic-folded constants are captured from
each process function's closure at *bind* time), so the compiled code
object is cached by design fingerprint across elaborations.
"""

import ast
import copy
import hashlib
import types

from .signals import Signal

#: Rejection-reason keys reported in :attr:`Program.stats`.
REASONS = (
    "shape", "wait", "locals", "names", "construct", "cyclic",
)


class Reject(Exception):
    """This process cannot be specialized; keep it generic."""

    def __init__(self, reason):
        super().__init__(reason)
        self.reason = reason


class ProcPlan:
    """How one compiled process appears in the generated module."""

    __slots__ = ("proc_index", "resume", "cond", "init_runs_body",
                 "wait_indices", "env", "pure")

    def __init__(self, proc_index, resume, cond, init_runs_body,
                 wait_indices, env, pure=False):
        self.proc_index = proc_index
        self.resume = resume  # generated resume-function name
        self.cond = cond  # generated condition-function name or None
        self.init_runs_body = init_runs_body
        self.wait_indices = list(wait_indices)
        self.env = dict(env)  # mangled name -> original free name
        #: ``pure`` resume functions touch only slot storage and
        #: ``ops`` arithmetic — no ``rt`` access, no captured helper
        #: calls — so the kernel may dispatch them without the
        #: ``current_process`` / AssertionFailure bookkeeping (nothing
        #: they can reach reads either).
        self.pure = pure


class Program:
    """One design's specialized module: source, code, bind metadata."""

    __slots__ = ("fingerprint", "source", "code", "plans",
                 "slot_indices", "stats")

    def __init__(self, fingerprint, source, code, plans, slot_indices,
                 stats):
        self.fingerprint = fingerprint
        self.source = source
        self.code = code
        self.plans = plans  # Process.index -> ProcPlan
        self.slot_indices = frozenset(slot_indices)
        self.stats = dict(stats)


def design_fingerprint(records, kernel):
    """Cache key: the py_sources plus the elaborated topology.

    Generic *values* are excluded on purpose — they are captured from
    process closures at bind time, so two elaborations of the same
    entity with different generics share one compiled module.
    """
    h = hashlib.sha256()
    for record in records:
        h.update(record.path.encode())
        h.update(b"\0")
        h.update(record.kind.encode())
        h.update(b"\0")
        h.update(getattr(record.node, "py_source", "").encode())
        h.update(b"\0")
    h.update(("#%d/%d" % (len(kernel.signals),
                          len(kernel.processes))).encode())
    return h.hexdigest()


# -- environment capture -------------------------------------------------------

_MISSING = object()


def capture(fn, name):
    """The runtime value ``name`` has inside ``fn`` (closure, then
    module globals), or ``_MISSING``."""
    code = fn.__code__
    if name in code.co_freevars and fn.__closure__ is not None:
        cell = fn.__closure__[code.co_freevars.index(name)]
        try:
            return cell.cell_contents
        except ValueError:
            return _MISSING
    return fn.__globals__.get(name, _MISSING)


def _helper_may_assign(value, seen=None):
    """Could calling this captured object schedule a transaction?

    Captured helper functions (VHDL subprograms, guard closures) are
    opaque to the netlist's per-process facts, so a helper whose code
    mentions ``assign`` makes static drive information incomplete.
    Scans the code object and its nested consts, transitively through
    function-valued free variables.
    """
    if not isinstance(value, types.FunctionType):
        return False
    if seen is None:
        seen = set()
    if value in seen:
        return False
    seen.add(value)
    stack = [value.__code__]
    while stack:
        code = stack.pop()
        if "assign" in code.co_names or "assign" in code.co_freevars:
            return True
        stack.extend(c for c in code.co_consts
                     if isinstance(c, types.CodeType))
    if value.__closure__ is not None:
        for cell in value.__closure__:
            try:
                inner = cell.cell_contents
            except ValueError:
                continue
            if _helper_may_assign(inner, seen):
                return True
    return False


# -- process analysis ----------------------------------------------------------


class SiteInfo:
    """One static ``rt.assign`` site found in a canonical process."""

    __slots__ = ("signal", "n_elems", "transport", "zero_literal")

    def __init__(self, signal, n_elems, transport, zero_literal):
        self.signal = signal
        self.n_elems = n_elems
        self.transport = transport
        self.zero_literal = zero_literal


class Analysis:
    """A canonical process, decomposed and environment-resolved."""

    __slots__ = ("proc", "funcdef", "body", "init_runs_body",
                 "wait_signals", "cond_lambda", "sites",
                 "helper_risk")

    def __init__(self, proc, funcdef, body, init_runs_body,
                 wait_signals, cond_lambda, sites, helper_risk):
        self.proc = proc
        self.funcdef = funcdef
        self.body = body
        self.init_runs_body = init_runs_body
        self.wait_signals = wait_signals
        self.cond_lambda = cond_lambda
        self.sites = sites
        self.helper_risk = helper_risk


def _is_const(node, value):
    return isinstance(node, ast.Constant) and node.value is value


def _rt_call(node, attr=None):
    """Is ``node`` a ``rt.<attr>(...)`` call?  Returns the attr."""
    if not isinstance(node, ast.Call):
        return None
    fn = node.func
    if (isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name)
            and fn.value.id == "rt"):
        if attr is None or fn.attr == attr:
            return fn.attr
    return None


def _signal_of(env_fn, name, kernel):
    value = capture(env_fn, name)
    if isinstance(value, Signal) and value.kernel is kernel:
        return value
    return None


def analyze_process(proc, funcdef, kernel):
    """Classify one process; returns :class:`Analysis` or raises
    :class:`Reject`."""
    fn = proc.fn
    if fn is None:
        raise Reject("shape")
    body = funcdef.body
    # No statements before the loop: leading statements are VHDL
    # process *variables* — persistent generator-frame state the
    # plain-function rendering cannot carry.
    if len(body) != 1 or not isinstance(body[0], ast.While):
        raise Reject("shape")
    loop = body[0]
    if not _is_const(loop.test, True):
        raise Reject("shape")
    stmts = list(loop.body)
    if not stmts:
        raise Reject("shape")

    yields = [n for n in ast.walk(loop) if isinstance(n, ast.Yield)]
    if len(yields) != 1:
        raise Reject("wait")

    def _is_wait_stmt(stmt):
        return (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Yield)
                and _rt_call(stmt.value.value, "wait") is not None)

    if _is_wait_stmt(stmts[0]):
        wait_stmt, rest, init_runs_body = stmts[0], stmts[1:], False
    elif _is_wait_stmt(stmts[-1]):
        wait_stmt, rest, init_runs_body = stmts[-1], stmts[:-1], True
    else:
        raise Reject("wait")

    wait_call = wait_stmt.value.value
    args = list(wait_call.args)
    if wait_call.keywords or len(args) != 3:
        raise Reject("wait")
    sig_list, cond, timeout = args
    if not _is_const(timeout, None):
        raise Reject("wait")  # timed waits stay on the calendar
    if not isinstance(sig_list, ast.List):
        raise Reject("wait")
    wait_signals = []
    for elt in sig_list.elts:
        if not isinstance(elt, ast.Name):
            raise Reject("wait")
        sig = _signal_of(fn, elt.id, kernel)
        if sig is None:
            raise Reject("wait")
        wait_signals.append(sig)
    if _is_const(cond, None):
        cond_lambda = None
    elif isinstance(cond, ast.Lambda) and not cond.args.args \
            and not cond.args.posonlyargs and not cond.args.kwonlyargs:
        cond_lambda = cond
    else:
        raise Reject("wait")

    # Collect every static assign site; a target that does not resolve
    # to a signal of this kernel, or a non-literal waveform, defeats
    # the analysis.
    sites = []
    helper_risk = False
    for node in rest:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                attr = _rt_call(sub)
                if attr == "assign":
                    sites.append(_site_of(sub, fn, kernel))
                elif attr is None and not _ops_call(sub):
                    # A call into something that is neither rt nor
                    # ops: if the callee may assign, static drive
                    # facts are incomplete for the whole design.
                    helper_risk = helper_risk or _call_risk(sub, fn)
    return Analysis(proc, funcdef, rest, init_runs_body, wait_signals,
                    cond_lambda, sites, helper_risk)


def _ops_call(node):
    fn = node.func
    return (isinstance(fn, ast.Attribute)
            and isinstance(fn.value, ast.Name) and fn.value.id == "ops")


def _call_risk(node, env_fn):
    """Does this non-rt/ops call reach code that may assign?"""
    fn = node.func
    if isinstance(fn, ast.Name):
        value = capture(env_fn, fn.id)
        if value is _MISSING:
            return True  # unknown callee: assume the worst
        return _helper_may_assign(value)
    return True


def _site_of(call, env_fn, kernel):
    args = list(call.args)
    if len(args) < 2 or not isinstance(args[0], ast.Name):
        raise Reject("names")
    sig = _signal_of(env_fn, args[0].id, kernel)
    if sig is None:
        raise Reject("names")
    waveform = args[1]
    if not isinstance(waveform, ast.Tuple) or not waveform.elts:
        raise Reject("names")
    for elem in waveform.elts:
        if not isinstance(elem, ast.Tuple) or len(elem.elts) != 2:
            raise Reject("names")
    transport = False
    for kw in call.keywords:
        if kw.arg == "transport":
            if not isinstance(kw.value, ast.Constant):
                raise Reject("names")
            transport = bool(kw.value.value)
        else:
            raise Reject("names")
    if len(args) > 2:
        if len(args) != 3 or not isinstance(args[2], ast.Constant):
            raise Reject("names")
        transport = bool(args[2].value)
    first_delay = waveform.elts[0].elts[1]
    return SiteInfo(sig, len(waveform.elts), transport,
                    _is_const_zero(first_delay))


def _is_const_zero(node):
    return isinstance(node, ast.Constant) and node.value == 0


# -- expression / statement rewriting ------------------------------------------

#: Expression node types the rewriter knows are side-effect free.
_ALLOWED = (
    ast.Expression, ast.Constant, ast.Tuple, ast.List, ast.Dict,
    ast.BinOp, ast.UnaryOp, ast.BoolOp, ast.Compare, ast.IfExp,
    ast.Call, ast.Attribute, ast.Name, ast.Subscript, ast.Slice,
    ast.keyword, ast.Load, ast.Store,
    ast.And, ast.Or, ast.Not, ast.Invert, ast.UAdd, ast.USub,
    ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod,
    ast.Pow, ast.LShift, ast.RShift, ast.BitAnd, ast.BitOr,
    ast.BitXor, ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE,
    ast.Is, ast.IsNot, ast.In, ast.NotIn, ast.JoinedStr,
    ast.FormattedValue,
)


def _expr_src(src):
    return ast.parse(src, mode="eval").body


class _Rewriter(ast.NodeTransformer):
    """Rewrites one expression tree into specialized form."""

    def __init__(self, binder, defined):
        self.binder = binder
        self.defined = defined

    # -- names ---------------------------------------------------------

    def visit_Name(self, node):
        if isinstance(node.ctx, ast.Store):
            return node  # statement level already recorded the local
        name = node.id
        if name in self.defined:
            return node
        return self.binder.name_load(name)

    def visit_Attribute(self, node):
        if (isinstance(node.value, ast.Name)
                and node.value.id == "rt" and node.attr == "now"
                and "rt" not in self.defined):
            self.binder.check_rt()
            self.binder.uses_now = True
            return ast.Name(id="now", ctx=ast.Load())
        return self.generic_visit(node)

    def visit_Call(self, node):
        attr = None
        if (isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id not in self.defined):
            base = node.func.value.id
            if base == "rt":
                attr = node.func.attr
        if attr is not None:
            binder = self.binder
            binder.check_rt()
            if attr == "read":
                sig = self._sig_arg(node)
                return _expr_src("V[%d]" % binder.index(sig))
            if attr == "event":
                sig = self._sig_arg(node)
                binder.uses_step = True
                return _expr_src(
                    "1 if SIG[%d].event_delta == step else 0"
                    % binder.index(sig))
            if attr == "active":
                sig = self._sig_arg(node)
                binder.uses_step = True
                return _expr_src(
                    "1 if SIG[%d].active_delta == step else 0"
                    % binder.index(sig))
            if attr == "last_value":
                sig = self._sig_arg(node)
                return _expr_src("SIG[%d].last_value"
                                 % binder.index(sig))
            if attr in ("assert_", "check"):
                return ast.Call(
                    func=node.func,
                    args=[self.visit(a) for a in node.args],
                    keywords=[ast.keyword(arg=k.arg,
                                          value=self.visit(k.value))
                              for k in node.keywords])
            # assign in value position, nested wait, anything else
            raise Reject("construct")
        return self.generic_visit(node)

    def _sig_arg(self, node):
        if len(node.args) != 1 or node.keywords \
                or not isinstance(node.args[0], ast.Name):
            raise Reject("names")
        sig = self.binder.signal(node.args[0].id)
        if sig is None:
            raise Reject("names")
        return sig

    # -- rejection wall ------------------------------------------------

    def generic_visit(self, node):
        if not isinstance(node, _ALLOWED):
            raise Reject("construct")
        return super().generic_visit(node)


class _Binder:
    """Per-process name resolution + environment mangling."""

    def __init__(self, proc, pid, kernel, ops_obj):
        self.proc = proc
        self.pid = pid
        self.kernel = kernel
        self.ops = ops_obj
        self.env = {}  # mangled -> original name
        self.uses_now = False
        self.uses_step = False

    def signal(self, name):
        return _signal_of(self.proc.fn, name, self.kernel)

    def check_rt(self):
        if capture(self.proc.fn, "rt") is not self.kernel.rt:
            raise Reject("names")

    def name_load(self, name):
        value = capture(self.proc.fn, name)
        if value is _MISSING:
            raise Reject("names")
        if isinstance(value, Signal):
            raise Reject("names")  # bare signal outside rt.*/wait
        if name == "rt":
            self.check_rt()
            return ast.Name(id="rt", ctx=ast.Load())
        if name == "ops" and value is self.ops:
            return ast.Name(id="ops", ctx=ast.Load())
        mangled = "_e%d_%s" % (self.pid, name)
        self.env[mangled] = name
        return ast.Name(id=mangled, ctx=ast.Load())

    def index(self, sig):
        return sig.index


def _rewrite_stmts(stmts, binder, slot_indices, defined, depth=0):
    """Transform a statement list; raises :class:`Reject` on any
    construct the specializer does not model."""
    out = []
    for stmt in stmts:
        if isinstance(stmt, ast.Expr):
            call = stmt.value
            if _rt_call(call, "assign") is not None \
                    and "rt" not in defined:
                out.extend(_rewrite_assign(call, binder, slot_indices,
                                           defined))
                continue
            tx = _Rewriter(binder, defined)
            out.append(ast.Expr(value=tx.visit(call)))
        elif isinstance(stmt, ast.Assign):
            if len(stmt.targets) != 1 \
                    or not isinstance(stmt.targets[0], ast.Name):
                raise Reject("locals")
            tx = _Rewriter(binder, defined)
            value = tx.visit(stmt.value)
            defined.add(stmt.targets[0].id)
            out.append(ast.Assign(targets=stmt.targets, value=value))
        elif isinstance(stmt, ast.AugAssign):
            if not isinstance(stmt.target, ast.Name) \
                    or stmt.target.id not in defined:
                raise Reject("locals")
            tx = _Rewriter(binder, defined)
            out.append(ast.AugAssign(target=stmt.target, op=stmt.op,
                                     value=tx.visit(stmt.value)))
        elif isinstance(stmt, ast.If):
            tx = _Rewriter(binder, defined)
            test = tx.visit(stmt.test)
            body = _rewrite_stmts(stmt.body, binder, slot_indices,
                                  set(defined), depth)
            orelse = _rewrite_stmts(stmt.orelse, binder, slot_indices,
                                    set(defined), depth)
            out.append(ast.If(test=test, body=body or [ast.Pass()],
                              orelse=orelse))
        elif isinstance(stmt, ast.For):
            if not isinstance(stmt.target, ast.Name) or stmt.orelse:
                raise Reject("locals")
            tx = _Rewriter(binder, defined)
            it = tx.visit(stmt.iter)
            inner = set(defined)
            inner.add(stmt.target.id)
            body = _rewrite_stmts(stmt.body, binder, slot_indices,
                                  inner, depth + 1)
            out.append(ast.For(target=stmt.target, iter=it,
                               body=body or [ast.Pass()], orelse=[]))
        elif isinstance(stmt, ast.While):
            if stmt.orelse:
                raise Reject("construct")
            tx = _Rewriter(binder, defined)
            test = tx.visit(stmt.test)
            body = _rewrite_stmts(stmt.body, binder, slot_indices,
                                  set(defined), depth + 1)
            out.append(ast.While(test=test, body=body or [ast.Pass()],
                                 orelse=[]))
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if depth == 0:
                raise Reject("construct")  # would skip the wait
            out.append(stmt)
        elif isinstance(stmt, ast.Pass):
            out.append(stmt)
        else:
            raise Reject("construct")
    return out


def _rewrite_assign(call, binder, slot_indices, defined):
    """One ``rt.assign`` statement → slot write or generic fallback."""
    binder.check_rt()
    site = _site_of(call, binder.proc.fn, binder.kernel)
    idx = site.signal.index
    tx = _Rewriter(binder, defined)
    waveform = call.args[1]
    if idx in slot_indices:
        binder.uses_now = True
        elem = waveform.elts[0]
        value = tx.visit(elem.elts[0])
        if _is_const_zero(elem.elts[1]):
            # Zero delay, inertial (or transport — identical when
            # nothing can precede ``now``): overwrite the slot and
            # mark it due this timestep, once.
            assign = ast.parse(
                "NV[%d] = 0\n"
                "if NT[%d] != now:\n"
                "    NT[%d] = now\n"
                "    _DUE.append(%d)\n" % (idx, idx, idx, idx)).body
            assign[0].value = value
            return assign
        delay = elem.elts[1]
        if isinstance(delay, ast.Constant) \
                and isinstance(delay.value, int) and delay.value > 0:
            # Literal positive delay (the overwhelmingly common
            # ``after <time literal>`` form): the whole ``_sched``
            # body inlines with the target time folded.
            assign = ast.parse(
                "NV[%d] = 0\n"
                "_t = now + %d\n"
                "if NT[%d] != _t:\n"
                "    NT[%d] = _t\n"
                "    _b = _B.get(_t)\n"
                "    if _b is None:\n"
                "        _B[_t] = [%d]\n"
                "        _hpush(_H, _t)\n"
                "    else:\n"
                "        _b.append(%d)\n"
                % (idx, delay.value, idx, idx, idx, idx)).body
            assign[0].value = value
            return assign
        sched = _expr_src("_sched(%d, 0, 0, now)" % idx)
        sched.args[1] = value
        sched.args[2] = tx.visit(delay)
        return [ast.Expr(value=sched)]
    # Calendar-managed target: full generic semantics through rt,
    # with the inner expressions still specialized.
    elems = []
    for elem in waveform.elts:
        elems.append(ast.Tuple(
            elts=[tx.visit(elem.elts[0]), tx.visit(elem.elts[1])],
            ctx=ast.Load()))
    new_call = _expr_src("rt.assign(SIG[%d], None, transport=%s)"
                         % (idx, bool(site.transport)))
    new_call.args[1] = ast.Tuple(elts=elems, ctx=ast.Load())
    return [ast.Expr(value=new_call)]


# -- module rendering ----------------------------------------------------------

_SCHED_SRC = '''\
def _sched(i, v, d, now):
    """Delayed single-slot assignment (inertial wipe semantics)."""
    NV[i] = v
    t = now + d if d > 0 else now
    if t <= now:
        if NT[i] != now:
            NT[i] = now
            _DUE.append(i)
    else:
        NT[i] = t
        b = _B.get(t)
        if b is None:
            _B[t] = [i]
            _hpush(_H, t)
        else:
            b.append(i)
'''


def _def(name, args, body):
    return ast.FunctionDef(
        name=name,
        args=ast.arguments(
            posonlyargs=[], args=[ast.arg(arg=a) for a in args],
            kwonlyargs=[], kw_defaults=[], defaults=[]),
        body=body or [ast.Pass()],
        decorator_list=[])


def build_program(kernel, records, graph, cyclic):
    """Analyze, classify, and render one design's specialized module.

    ``cyclic`` is the levelization quarantine (NetSignals).  Returns a
    :class:`Program`; processes and signals that cannot be specialized
    simply stay generic — the result is always safe to bind.
    """
    stats = {"procs": len(kernel.processes), "compiled": 0,
             "slots": 0, "generic": 0}
    for reason in REASONS:
        stats.setdefault("reject_%s" % reason, 0)

    proc_defs = _collect_funcdefs(records)
    cyclic_sigs = {ns.signal for ns in cyclic}

    # Pass A: canonical-shape analysis.
    analyses = {}
    helper_risk = False
    for proc in kernel.processes:
        funcdef = proc_defs.get(proc)
        if funcdef is None:
            stats["reject_shape"] += 1
            continue
        try:
            analysis = analyze_process(proc, funcdef, kernel)
        except Reject as rej:
            stats["reject_%s" % rej.reason] += 1
            continue
        if any(s in cyclic_sigs for s in analysis.wait_signals) or \
                any(site.signal in cyclic_sigs
                    for site in analysis.sites):
            # Quarantined cone: stay on the calendar.
            stats["reject_cyclic"] += 1
            continue
        helper_risk = helper_risk or analysis.helper_risk
        analyses[proc] = analysis

    # Pass B: slot classification needs whole-design drive facts.
    slot_indices = _classify_slots(kernel, graph, analyses,
                                   cyclic_sigs, helper_risk)

    # Pass C: rewrite.  A rewrite-stage rejection demotes the process
    # (and un-slots its targets, conservatively re-running until the
    # fixpoint — in practice one extra pass at most).
    while True:
        plans, defs, demoted = _render_all(kernel, analyses,
                                           slot_indices, stats)
        if not demoted:
            break
        for proc in demoted:
            del analyses[proc]
        slot_indices = _classify_slots(kernel, graph, analyses,
                                       cyclic_sigs, helper_risk)
        stats["compiled"] = 0

    stats["compiled"] = len(plans)
    stats["slots"] = len(slot_indices)
    stats["generic"] = len(kernel.processes) - len(plans)

    fingerprint = design_fingerprint(records, kernel)
    header = ("# Specialized flow-graph code (repro.sim.codegen)\n"
              "# design fingerprint: %s\n" % fingerprint)
    module = ast.Module(body=defs, type_ignores=[])
    ast.fix_missing_locations(module)
    source = header + _SCHED_SRC + "\n" + ast.unparse(module) + "\n"
    code = compile(source, "<repro-compiled:%s>" % fingerprint[:12],
                   "exec")
    return Program(fingerprint, source, code, plans, slot_indices,
                   stats)


def _collect_funcdefs(records):
    """Map each kernel process to its generated-function AST."""
    module_cache = {}
    proc_defs = {}
    for record in records:
        if not record.processes:
            continue
        py = getattr(record.node, "py_source", "")
        if not py:
            continue
        key = id(record.node)
        defs = module_cache.get(key)
        if defs is None:
            try:
                tree = ast.parse(py)
            except SyntaxError:
                module_cache[key] = defs = {}
            else:
                defs = {}
                for node in ast.walk(tree):
                    if isinstance(node, ast.FunctionDef):
                        defs.setdefault(node.name, node)
                module_cache[key] = defs
        for proc in record.processes.values():
            fn = proc.fn
            if fn is None:
                continue
            funcdef = defs.get(fn.__code__.co_name)
            if funcdef is not None:
                proc_defs[proc] = funcdef
    return proc_defs


def _classify_slots(kernel, graph, analyses, cyclic_sigs,
                    helper_risk):
    """Signals whose Driver collapses to a (NT, NV) slot pair."""
    if helper_risk:
        return frozenset()
    known = {np.process for np in graph.processes}
    for proc in kernel.processes:
        if proc not in known and proc not in analyses:
            # A process the netlist never saw and the analyzer could
            # not parse: its drives are unknown; no slot is safe.
            return frozenset()

    drivers = {}  # Signal -> set of kernel processes
    for np in graph.processes:
        for drive in np.drives:
            drivers.setdefault(drive.target.signal,
                               set()).add(np.process)
    sites_by_sig = {}
    for proc, analysis in analyses.items():
        for site in analysis.sites:
            drivers.setdefault(site.signal, set()).add(proc)
            sites_by_sig.setdefault(site.signal, []).append(site)

    slots = set()
    for sig, procs in drivers.items():
        if sig in cyclic_sigs or sig.resolution is not None:
            continue
        if len(procs) != 1:
            continue
        (proc,) = procs
        if proc not in analyses:
            continue
        sites = sites_by_sig.get(sig)
        if not sites:
            continue  # netlist-only drive with no parsed site
        ok = all(
            site.n_elems == 1
            and (not site.transport or site.zero_literal)
            for site in sites)
        if ok:
            slots.add(sig.index)
    return frozenset(slots)


def _render_all(kernel, analyses, slot_indices, stats):
    """Render every analyzed process; returns (plans, defs, demoted)."""
    from .runtime import ops as ops_obj

    plans = {}
    defs = []
    demoted = []
    for proc in sorted(analyses, key=lambda p: p.index):
        analysis = analyses[proc]
        pid = proc.index
        binder = _Binder(proc, pid, kernel, ops_obj)
        try:
            # Deep-copy before rewriting: multiple instances of one
            # architecture share the parsed AST, and the rewriter
            # mutates nodes in place — each instance must specialize
            # against its *own* bound signals.
            body = _rewrite_stmts(copy.deepcopy(analysis.body), binder,
                                  slot_indices, set())
            cond_name = None
            cond_defs = []
            if analysis.cond_lambda is not None:
                cbinder_uses = (binder.uses_now, binder.uses_step)
                binder.uses_now = binder.uses_step = False
                cond_expr = _Rewriter(binder, set()).visit(
                    copy.deepcopy(analysis.cond_lambda.body))
                prologue = []
                if binder.uses_now:
                    prologue += ast.parse("now = T[0]").body
                if binder.uses_step:
                    prologue += ast.parse("step = T[1]").body
                cond_name = "_c%d" % pid
                cond_defs = [_def(cond_name, (),
                                  prologue
                                  + [ast.Return(value=cond_expr)])]
                binder.uses_now, binder.uses_step = cbinder_uses
        except Reject as rej:
            stats["reject_%s" % rej.reason] += 1
            demoted.append(proc)
            continue
        resume_name = "_p%d" % pid
        defs.append(_def(resume_name, ("now", "step"), body))
        defs.extend(cond_defs)
        plans[pid] = ProcPlan(
            pid, resume_name, cond_name, analysis.init_runs_body,
            [s.index for s in analysis.wait_signals], binder.env,
            pure=_body_is_pure(body))
    return plans, defs, demoted


def _body_is_pure(body):
    """True when a rendered resume body cannot observe the kernel's
    per-dispatch bookkeeping: no ``rt`` reference (``rt.assign`` /
    ``rt.assert_`` read ``current_process``) and no call to anything
    but the scheduling helpers and ``ops`` arithmetic (a captured
    helper could reach ``rt`` through its closure)."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and node.id == "rt":
                return False
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and \
                        func.id in ("_sched", "_hpush"):
                    continue
                if isinstance(func, ast.Attribute) and \
                        isinstance(func.value, ast.Name) and \
                        func.value.id in ("ops", "_DUE", "_B", "_b"):
                    continue  # arithmetic + slot-schedule plumbing
                return False
    return True
