"""The simulation kernel: simulation-cycle semantics and delta cycles.

One simulation cycle (IEEE 1076-1987 §12, the semantics the paper's
kernel implements):

1. advance time to the next activity (or stay put for a delta cycle);
2. update every active signal from its drivers' projected waveforms,
   determining the cycle's *events*;
3. resume every process whose wait is satisfied by those events or
   whose timeout expired;
4. execute the resumed processes until each suspends again — their
   assignments project new transactions, possibly at the current time,
   which makes the next cycle a delta cycle.

Scheduling is **activity-driven** (the §5.1 point that preemptive
signal assignment pushes the scheduling burden onto the kernel):

- an **event calendar** — a ``heapq`` of ``(time, seq, kind, payload)``
  entries fed by every signal assignment and wait timeout — replaces
  the full scan over all signals and processes that previously ran
  *twice* per cycle.  Preemption (inertial or transport) never edits
  the heap; entries are **lazily deleted**: at pop time an entry is
  live only while its signal still has a projected transaction due
  then (``Signal.next_time()``) or its process's timeout is still set
  for then (``Process.timeout_at``), so preempted transactions and
  already-satisfied waits cannot produce phantom cycles or phantom
  timesteps.
- phase 2 updates only the cycle's **pending-update set** — the
  signals whose calendar entries came due — instead of scanning every
  signal for due transactions.
- phase 3 consults the **fanout index**: each signal keeps the set of
  processes currently waiting on it (registered at suspension,
  unregistered at resumption), so only processes sensitive to this
  cycle's actual events — plus expired timeouts — are visited.

Per-cycle cost is therefore O(active · log heap), not O(design); the
reference full-scan scheduler survives as :class:`ScanKernel` for
differential testing and `benchmarks/bench_kernel_scaling.py`.
"""

import heapq
import time as _time

from ..metrics import NULL_REGISTRY
from ..trace.context import current_context
from .process import Process, WaitRequest
from .runtime import RuntimeError_, ops
from .signals import Signal
from .vhdlio import AssertionFailure, SeverityLogger

#: Bucket bounds of the deltas-per-timestep histogram: an explicit
#: zero bucket (timesteps with no delta at all), then log 1-2-5.
DELTA_BUCKETS = (0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)

#: Calendar entry kinds (third tuple slot).  The strictly increasing
#: sequence number in slot two makes every entry unique, so heap
#: comparisons never reach the payload object.
_SIGNAL = 0
_TIMEOUT = 1


class SimulationError(Exception):
    """Kernel-level failure (unbounded delta loop, bad yield, ...)."""


class _KernelOrigin:
    """Report origin for kernel-internal notes (not a real process)."""

    name = "<kernel>"


_KERNEL_ORIGIN = _KernelOrigin()


class Kernel:
    """An event-driven simulator instance (activity-driven calendar)."""

    def __init__(self, max_deltas=10000, logger=None, metrics=None,
                 trace=None, trace_sample=1):
        self.now = 0
        self.step = 0  # simulation-cycle stamp, for 'EVENT / 'ACTIVE
        self.signals = []
        self.processes = []
        self.max_deltas = max_deltas
        self.current_process = None
        self.logger = logger or SeverityLogger()
        self.rt = RT(self)
        self._initialized = False
        self.cycles = 0  # executed simulation cycles (bench metric)
        self.delta_cycles = 0  # cycles that did not advance time
        self.truncated_transactions = 0  # abandoned by run(until=...)
        self.tracers = []  # repro.sim.tracing.Tracer instances
        # -- the event calendar -------------------------------------
        self._calendar = []  # heap of (time, seq, kind, payload)
        self._seq = 0  # entry tie-breaker; also total pushes
        self.stale_pops = 0  # entries discarded by lazy deletion
        self.fanout_visits = 0  # waiter visits through the index
        self.calendar_peak = 0  # high-water heap size
        # -- telemetry (repro.metrics). The registry defaults to the
        # null registry: handles below become shared no-op metrics and
        # the ``_timed`` flag turns off the perf_counter pairs, so the
        # disabled path costs one empty method call per cycle.
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._timed = bool(getattr(self.metrics, "enabled", False))
        m = self.metrics
        self._m_cycles = m.counter(
            "sim_cycles_total", "executed simulation cycles")
        self._m_deltas = m.counter(
            "sim_delta_cycles_total",
            "simulation cycles that did not advance time")
        self._m_delta_hist = m.histogram(
            "sim_deltas_per_timestep",
            "delta cycles executed per distinct timestep",
            buckets=DELTA_BUCKETS)
        self._m_resumes = m.counter(
            "sim_process_resumes_total", "process resumptions")
        self._m_truncated = m.gauge(
            "sim_truncated_transactions",
            "projected transactions abandoned because run(until=...) "
            "stopped before their time")
        # -- causal tracing (repro.trace).  ``trace`` is a
        # ``repro.diag.trace.Tracer`` (or None); every
        # ``trace_sample``-th timestep and process resume becomes a
        # span, parented into the ambient span context captured at
        # initialize/run.  Gated exactly like ``_timed``: with
        # trace=None the whole feature costs one local bool test per
        # cycle and one attribute test per resume.
        self.trace = trace
        self.trace_sample = max(1, int(trace_sample or 1))
        self._traced = trace is not None
        self._trace_ctx = None
        self._trace_resumes = 0

    # -- construction ------------------------------------------------------

    def signal(self, name, init, resolution=None, image=None):
        sig = Signal(name, init, resolution, image)
        sig.kernel = self
        sig.index = len(self.signals)  # registration order (determinism)
        self.signals.append(sig)
        return sig

    def process(self, name, generator_fn, sensitivity=None, line=None):
        """Register a process.

        ``generator_fn`` is a nullary callable returning the process
        generator.  ``sensitivity`` — the statically known sensitivity
        signals — is stored on the :class:`Process` so the metrics
        report and tracers can attribute wakeups to their sources (the
        generated code still ends its loop with the equivalent wait).
        ``line`` is the declaring source line (diagnostics).
        """
        proc = Process(name, generator_fn(), sensitivity=sensitivity,
                       decl_line=line)
        proc.fn = generator_fn
        proc.kernel = self
        proc.index = len(self.processes)  # registration order
        self.processes.append(proc)
        return proc

    # -- scheduling ----------------------------------------------------------

    def note_time(self, t):
        """Kept for API symmetry; the calendar is fed by signal
        assignments (:meth:`RT.assign`) and wait timeouts
        (:meth:`_execute`), and every entry is re-validated against
        ``sig.next_time()`` / ``proc.timeout_at`` at pop time, so
        preempted transactions can never produce phantom cycles."""

    def _push(self, t, kind, payload):
        """Add one calendar entry (a conservative activity hint)."""
        self._seq = seq = self._seq + 1
        heap = self._calendar
        heapq.heappush(heap, (t, seq, kind, payload))
        if len(heap) > self.calendar_peak:
            self.calendar_peak = len(heap)

    def _peek_time(self):
        """Earliest pending activity time, or None when quiescent.

        Pops stale calendar entries (lazy deletion) until the top of
        the heap is live: a signal entry is live while the signal still
        has a projected transaction due at-or-before the entry's time;
        a timeout entry while the process is still waiting with that
        deadline.  Never earlier than ``now``.
        """
        heap = self._calendar
        pop = heapq.heappop
        stale = 0
        tn = None
        while heap:
            t, _seq, kind, payload = heap[0]
            if kind == _SIGNAL:
                nt = payload.next_time()
                if nt is not None and nt <= t:
                    tn = t
                    break
            else:
                if (not payload.done and payload.wait is not None
                        and payload.timeout_at is not None
                        and payload.timeout_at <= t):
                    tn = t
                    break
            pop(heap)
            stale += 1
        if stale:
            self.stale_pops += stale
        if tn is not None and tn < self.now:
            tn = self.now
        return tn

    def _pop_due(self, tn):
        """Phase 1: drain this timestep's calendar entries into the
        pending-update signal set and the expired-timeout process set,
        discarding entries stale-ified by preemption or earlier
        resumption."""
        heap = self._calendar
        pop = heapq.heappop
        pending = set()  # signals with a due transaction
        expired = set()  # processes whose timeout expired
        stale = 0
        while heap and heap[0][0] <= tn:
            _t, _seq, kind, payload = pop(heap)
            if kind == _SIGNAL:
                nt = payload.next_time()
                if nt is not None and nt <= tn:
                    pending.add(payload)
                else:
                    stale += 1
            else:
                if (not payload.done and payload.wait is not None
                        and payload.timeout_at is not None
                        and payload.timeout_at <= tn):
                    expired.add(payload)
                else:
                    stale += 1
        if stale:
            self.stale_pops += stale
        return pending, expired

    # -- execution -----------------------------------------------------------

    def initialize(self):
        """The initialization phase: run every process once."""
        if self._initialized:
            return
        self._initialized = True
        if self._traced and self._trace_ctx is None:
            self._trace_ctx = current_context()
        self.step = 0
        for proc in list(self.processes):
            self._execute(proc)

    def _trace_span(self, name, ts_us, dur_us, **args):
        """Record one kernel span under the captured run context."""
        ctx = self._trace_ctx
        self.trace.complete(
            name, ts_us, dur_us, cat="sim",
            ctx=ctx.child() if ctx is not None else None, **args)

    def _execute(self, proc):
        """Run one process until it suspends (or finishes)."""
        self.current_process = proc
        proc.resumes += 1
        self._m_resumes.inc()
        rec = False
        if self._traced:
            self._trace_resumes = n = self._trace_resumes + 1
            rec = (n - 1) % self.trace_sample == 0
        ts_us = _time.time() * 1e6 if rec else 0.0
        t0 = _time.perf_counter() if (self._timed or rec) else 0.0
        try:
            request = next(proc.generator)
        except StopIteration:
            proc.done = True
            proc.wait = None
            return
        except AssertionFailure:
            proc.done = True
            raise
        finally:
            if self._timed or rec:
                dt = _time.perf_counter() - t0
                if self._timed:
                    proc.exec_seconds += dt
                if rec:
                    self._trace_span("process_resume", ts_us, dt * 1e6,
                                     process=proc.name)
            self.current_process = None
        if not isinstance(request, WaitRequest):
            raise SimulationError(
                "process %r yielded %r instead of a wait request"
                % (proc.name, request)
            )
        proc.wait = request
        signals = request.signals
        if signals:
            # Enter the fanout index: phase 3 will find this process
            # through the signals it awaits, not by sweeping.
            for sig in signals:
                sig.waiters.add(proc)
        timeout = request.timeout
        if timeout is not None:
            t = self.now + (timeout if timeout > 0 else 0)
            proc.timeout_at = t
            self._push(t, _TIMEOUT, proc)
        else:
            proc.timeout_at = None

    def _cycle(self, tn):
        """Execute one simulation cycle at (already validated) ``tn``."""
        self.now = now = tn
        self.step = step = self.step + 1
        self.cycles += 1
        self._m_cycles.inc()

        pending, expired = self._pop_due(tn)

        # Phase 2: update only the pending signals; collect the
        # processes their events reach through the fanout index.
        event_procs = set()
        if pending:
            fanout = 0
            update_candidates = event_procs.update
            for sig in sorted(pending, key=_signal_order):
                if sig.update(now, step):
                    waiters = sig.waiters
                    if waiters:
                        fanout += len(waiters)
                        update_candidates(waiters)
            if fanout:
                self.fanout_visits += fanout

        for tracer in self.tracers:
            tracer.on_cycle(now, step)

        # Phase 3: resume expired timeouts unconditionally and event
        # receivers whose condition holds — in registration order,
        # exactly as the reference scan does.
        resumed = []
        if expired or event_procs:
            for proc in sorted(expired | event_procs, key=_process_order):
                if proc.done:
                    continue
                w = proc.wait
                if w is None:
                    continue
                if proc in expired:
                    resumed.append(proc)
                    continue
                cond = w.condition
                if cond is None or cond():
                    resumed.append(proc)
            for proc in resumed:
                # Leave the fanout index before clearing the wait.
                w = proc.wait
                if w is not None:
                    for sig in w.signals:
                        sig.waiters.discard(proc)
                proc.wait = None
                proc.timeout_at = None
            for proc in resumed:
                self._execute(proc)

    def cycle(self):
        """Execute one simulation cycle; returns False when quiescent."""
        self.initialize()
        tn = self._peek_time()
        if tn is None:
            return False
        self._cycle(tn)
        return True

    def run(self, until=None, max_cycles=None):
        """Run simulation cycles until quiescent, ``until`` fs passes,
        or ``max_cycles`` cycles execute.  Returns the final time."""
        self.initialize()
        deltas = 0
        last_time = self.now
        executed = 0
        # Hoist hot attribute lookups out of the loop.
        peek = self._peek_time
        one_cycle = self._cycle
        max_deltas = self.max_deltas
        m_deltas_inc = self._m_deltas.inc
        traced = self._traced
        if traced:
            sample = self.trace_sample
            if self._trace_ctx is None:
                self._trace_ctx = current_context()
            base_ctx = self._trace_ctx
        while True:
            tn = peek()
            if tn is None:
                break
            if until is not None and tn > until:
                self._note_truncation(until, tn)
                self.now = until
                break
            if traced and executed % sample == 0:
                # Record this timestep as a span; resume spans emitted
                # inside it nest under it (the swap of _trace_ctx).
                step_ctx = (base_ctx.child()
                            if base_ctx is not None else None)
                self._trace_ctx = step_ctx
                ts_us = _time.time() * 1e6
                t0 = _time.perf_counter()
                one_cycle(tn)
                dur_us = (_time.perf_counter() - t0) * 1e6
                self._trace_ctx = base_ctx
                self.trace.complete(
                    "timestep", ts_us, dur_us, cat="sim", ctx=step_ctx,
                    t_fs=tn, step=self.step)
            else:
                one_cycle(tn)
            executed += 1
            if max_cycles is not None and executed >= max_cycles:
                break
            now = self.now
            if now == last_time:
                deltas += 1
                self.delta_cycles += 1
                m_deltas_inc()
                if deltas > max_deltas:
                    raise SimulationError(
                        "more than %d delta cycles at %d fs — "
                        "unbounded zero-delay loop" % (max_deltas, now)
                    )
            else:
                self._m_delta_hist.observe(deltas)
                deltas = 0
                last_time = now
        if executed:
            # Flush the last timestep's delta count — but only when at
            # least one cycle actually executed: a quiescent run must
            # not record a spurious zero observation.
            self._m_delta_hist.observe(deltas)
        return self.now

    def _note_truncation(self, until, next_time):
        """``run(until=...)`` stops before the next activity: count the
        projected transactions it abandons instead of dropping them
        silently, and leave a note-severity record behind."""
        pending = sum(
            len(driver.waveform)
            for sig in self.signals
            for driver in sig.drivers.values()
        )
        pending += sum(
            1 for proc in self.processes
            if not proc.done and proc.wait is not None
            and proc.timeout_at is not None and proc.timeout_at > until
        )
        if not pending:
            return
        self.truncated_transactions += pending
        self._m_truncated.set(self.truncated_transactions)
        from .tracing import format_fs

        self.logger.report(
            "note",
            "simulation truncated at %s: %d pending transaction(s)/"
            "timeout(s) beyond the stop time (next activity at %s)"
            % (format_fs(until), pending, format_fs(next_time)),
            until, _KERNEL_ORIGIN, fail=False)


def _signal_order(sig):
    """Deterministic phase-2 update order: registration order."""
    return sig.index


def _process_order(proc):
    """Deterministic phase-3 resume order: registration order."""
    return proc.index


class ScanKernel(Kernel):
    """The pre-calendar reference scheduler: O(design) full scans.

    Every cycle scans *all* signals and *all* processes — once to find
    the next activity time, again to update due signals, and a third
    time (``Process.should_resume``) to pick resumptions.  Kept for

    - **differential testing**: any workload must produce identical
      cycle/delta counts, waveforms, VCD output, and ``sim_*``
      telemetry on both schedulers (``tests/sim/test_calendar.py``);
    - **benchmarking**: ``benchmarks/bench_kernel_scaling.py`` and the
      ``kernel_scaling`` bench-check scenario measure the calendar
      kernel's speedup against this baseline on sparse workloads.
    """

    def _push(self, t, kind, payload):
        """The scan scheduler derives activity times by scanning; it
        keeps no calendar (matching the original kernel's cost
        profile exactly)."""

    def _peek_time(self):
        best = None
        for sig in self.signals:
            t = sig.next_time()
            if t is not None and (best is None or t < best):
                best = t
        for proc in self.processes:
            if proc.done or proc.wait is None:
                continue
            t = proc.timeout_at
            if t is not None and (best is None or t < best):
                best = t
        if best is not None and best < self.now:
            best = self.now
        return best

    def _cycle(self, tn):
        self.now = tn
        self.step += 1
        self.cycles += 1
        self._m_cycles.inc()

        for sig in self.signals:
            nxt = sig.next_time()
            if nxt is not None and nxt <= self.now:
                sig.update(self.now, self.step)

        for tracer in self.tracers:
            tracer.on_cycle(self.now, self.step)

        resumed = [
            p for p in self.processes if p.should_resume(self.step, self.now)
        ]
        for proc in resumed:
            w = proc.wait
            if w is not None:
                # The shared ``_execute`` maintains the fanout index;
                # keep it consistent even though this scheduler never
                # reads it.
                for sig in w.signals:
                    sig.waiters.discard(proc)
            proc.wait = None
            proc.timeout_at = None
        for proc in resumed:
            self._execute(proc)


class RT:
    """The per-kernel runtime facade generated code calls.

    One instance per kernel; the executing process is tracked by the
    kernel so driver lookup is implicit, exactly as the paper's
    generated C relied on kernel state.
    """

    __slots__ = ("kernel", "ops")

    def __init__(self, kernel):
        self.kernel = kernel
        self.ops = ops

    # -- signals ----------------------------------------------------------------

    def read(self, sig):
        return sig.value

    def assign(self, sig, waveform, transport=False):
        """Signal assignment: waveform is ((value, delay_fs), ...)."""
        kernel = self.kernel
        proc = kernel.current_process
        if proc is None:
            raise SimulationError(
                "signal assignment to %r outside any process" % sig.name
            )
        driver = sig.driver_for(proc)
        times = driver.schedule(kernel.now, waveform, transport)
        if times:
            # Feed the event calendar: one entry per projected
            # transaction.  Entries made stale by later preemption are
            # dropped lazily at pop time.
            push = kernel._push
            for t in times:
                push(t, _SIGNAL, sig)

    def event(self, sig):
        return 1 if sig.had_event(self.kernel.step) else 0

    def active(self, sig):
        return 1 if sig.is_active(self.kernel.step) else 0

    def last_value(self, sig):
        return sig.last_value

    # -- waiting --------------------------------------------------------------------

    def wait(self, signals=None, condition=None, timeout=None):
        """Build the wait request a process yields."""
        return WaitRequest(signals, condition, timeout)

    # -- misc -------------------------------------------------------------------------

    @property
    def now(self):
        return self.kernel.now

    def assert_(self, condition, message, severity="error"):
        if not condition:
            self.kernel.logger.report(
                severity, message, self.kernel.now,
                self.kernel.current_process,
            )

    def check(self, value, low, high, what="value"):
        return ops.check_range(value, low, high, what)
