"""The simulation kernel: simulation-cycle semantics and delta cycles.

One simulation cycle (IEEE 1076-1987 §12, the semantics the paper's
kernel implements):

1. advance time to the next activity (or stay put for a delta cycle);
2. update every active signal from its drivers' projected waveforms,
   determining the cycle's *events*;
3. resume every process whose wait is satisfied by those events or
   whose timeout expired;
4. execute the resumed processes until each suspends again — their
   assignments project new transactions, possibly at the current time,
   which makes the next cycle a delta cycle.
"""

import time as _time

from ..metrics import NULL_REGISTRY
from .process import Process, WaitRequest
from .runtime import RuntimeError_, ops
from .signals import Signal
from .vhdlio import AssertionFailure, SeverityLogger

#: Bucket bounds of the deltas-per-timestep histogram: an explicit
#: zero bucket (timesteps with no delta at all), then log 1-2-5.
DELTA_BUCKETS = (0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)


class SimulationError(Exception):
    """Kernel-level failure (unbounded delta loop, bad yield, ...)."""


class _KernelOrigin:
    """Report origin for kernel-internal notes (not a real process)."""

    name = "<kernel>"


_KERNEL_ORIGIN = _KernelOrigin()


class Kernel:
    """An event-driven simulator instance."""

    def __init__(self, max_deltas=10000, logger=None, metrics=None):
        self.now = 0
        self.step = 0  # simulation-cycle stamp, for 'EVENT / 'ACTIVE
        self.signals = []
        self.processes = []
        self.max_deltas = max_deltas
        self.current_process = None
        self.logger = logger or SeverityLogger()
        self.rt = RT(self)
        self._initialized = False
        self.cycles = 0  # executed simulation cycles (bench metric)
        self.delta_cycles = 0  # cycles that did not advance time
        self.truncated_transactions = 0  # abandoned by run(until=...)
        self.tracers = []  # repro.sim.tracing.Tracer instances
        # -- telemetry (repro.metrics). The registry defaults to the
        # null registry: handles below become shared no-op metrics and
        # the ``_timed`` flag turns off the perf_counter pairs, so the
        # disabled path costs one empty method call per cycle.
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._timed = bool(getattr(self.metrics, "enabled", False))
        m = self.metrics
        self._m_cycles = m.counter(
            "sim_cycles_total", "executed simulation cycles")
        self._m_deltas = m.counter(
            "sim_delta_cycles_total",
            "simulation cycles that did not advance time")
        self._m_delta_hist = m.histogram(
            "sim_deltas_per_timestep",
            "delta cycles executed per distinct timestep",
            buckets=DELTA_BUCKETS)
        self._m_resumes = m.counter(
            "sim_process_resumes_total", "process resumptions")
        self._m_truncated = m.gauge(
            "sim_truncated_transactions",
            "projected transactions abandoned because run(until=...) "
            "stopped before their time")

    # -- construction ------------------------------------------------------

    def signal(self, name, init, resolution=None, image=None):
        sig = Signal(name, init, resolution, image)
        sig.kernel = self
        self.signals.append(sig)
        return sig

    def process(self, name, generator_fn, sensitivity=None, line=None):
        """Register a process.

        ``generator_fn`` is a nullary callable returning the process
        generator.  ``sensitivity`` — the statically known sensitivity
        signals — is stored on the :class:`Process` so the metrics
        report and tracers can attribute wakeups to their sources (the
        generated code still ends its loop with the equivalent wait).
        ``line`` is the declaring source line (diagnostics).
        """
        proc = Process(name, generator_fn(), sensitivity=sensitivity,
                       decl_line=line)
        proc.kernel = self
        self.processes.append(proc)
        return proc

    # -- scheduling ----------------------------------------------------------

    def note_time(self, t):
        """Kept for API symmetry; activity times are derived from the
        projected waveforms and wait timeouts, so preempted
        transactions can never produce phantom cycles."""

    def _next_time(self):
        best = None
        for sig in self.signals:
            t = sig.next_time()
            if t is not None and (best is None or t < best):
                best = t
        for proc in self.processes:
            if proc.done or proc.wait is None:
                continue
            t = proc.timeout_at
            if t is not None and (best is None or t < best):
                best = t
        if best is not None and best < self.now:
            best = self.now
        return best

    # -- execution -----------------------------------------------------------

    def initialize(self):
        """The initialization phase: run every process once."""
        if self._initialized:
            return
        self._initialized = True
        self.step = 0
        for proc in list(self.processes):
            self._execute(proc)

    def _execute(self, proc):
        """Run one process until it suspends (or finishes)."""
        self.current_process = proc
        proc.resumes += 1
        self._m_resumes.inc()
        t0 = _time.perf_counter() if self._timed else 0.0
        try:
            request = next(proc.generator)
        except StopIteration:
            proc.done = True
            proc.wait = None
            return
        except AssertionFailure:
            proc.done = True
            raise
        finally:
            if self._timed:
                proc.exec_seconds += _time.perf_counter() - t0
            self.current_process = None
        if not isinstance(request, WaitRequest):
            raise SimulationError(
                "process %r yielded %r instead of a wait request"
                % (proc.name, request)
            )
        proc.wait = request
        if request.timeout is not None:
            proc.timeout_at = self.now + max(request.timeout, 0)
        else:
            proc.timeout_at = None

    def cycle(self):
        """Execute one simulation cycle; returns False when quiescent."""
        self.initialize()
        tn = self._next_time()
        if tn is None:
            return False
        self.now = tn
        self.step += 1
        self.cycles += 1
        self._m_cycles.inc()

        for sig in self.signals:
            nxt = sig.next_time()
            if nxt is not None and nxt <= self.now:
                sig.update(self.now, self.step)

        for tracer in self.tracers:
            tracer.on_cycle(self.now, self.step)

        resumed = [
            p for p in self.processes if p.should_resume(self.step, self.now)
        ]
        for proc in resumed:
            proc.wait = None
            proc.timeout_at = None
        for proc in resumed:
            self._execute(proc)
        return True

    def run(self, until=None, max_cycles=None):
        """Run simulation cycles until quiescent, ``until`` fs passes,
        or ``max_cycles`` cycles execute.  Returns the final time."""
        self.initialize()
        deltas = 0
        last_time = self.now
        executed = 0
        while True:
            tn = self._next_time()
            if tn is None:
                break
            if until is not None and tn > until:
                self._note_truncation(until, tn)
                self.now = until
                break
            if not self.cycle():
                break
            executed += 1
            if max_cycles is not None and executed >= max_cycles:
                break
            if self.now == last_time:
                deltas += 1
                self.delta_cycles += 1
                self._m_deltas.inc()
                if deltas > self.max_deltas:
                    raise SimulationError(
                        "more than %d delta cycles at %d fs — "
                        "unbounded zero-delay loop" % (self.max_deltas, self.now)
                    )
            else:
                self._m_delta_hist.observe(deltas)
                deltas = 0
                last_time = self.now
        self._m_delta_hist.observe(deltas)
        return self.now

    def _note_truncation(self, until, next_time):
        """``run(until=...)`` stops before the next activity: count the
        projected transactions it abandons instead of dropping them
        silently, and leave a note-severity record behind."""
        pending = sum(
            len(driver.waveform)
            for sig in self.signals
            for driver in sig.drivers.values()
        )
        pending += sum(
            1 for proc in self.processes
            if not proc.done and proc.wait is not None
            and proc.timeout_at is not None and proc.timeout_at > until
        )
        if not pending:
            return
        self.truncated_transactions += pending
        self._m_truncated.set(self.truncated_transactions)
        from .tracing import format_fs

        self.logger.report(
            "note",
            "simulation truncated at %s: %d pending transaction(s)/"
            "timeout(s) beyond the stop time (next activity at %s)"
            % (format_fs(until), pending, format_fs(next_time)),
            until, _KERNEL_ORIGIN, fail=False)


class RT:
    """The per-kernel runtime facade generated code calls.

    One instance per kernel; the executing process is tracked by the
    kernel so driver lookup is implicit, exactly as the paper's
    generated C relied on kernel state.
    """

    def __init__(self, kernel):
        self.kernel = kernel
        self.ops = ops

    # -- signals ----------------------------------------------------------------

    def read(self, sig):
        return sig.value

    def assign(self, sig, waveform, transport=False):
        """Signal assignment: waveform is ((value, delay_fs), ...)."""
        proc = self.kernel.current_process
        if proc is None:
            raise SimulationError(
                "signal assignment to %r outside any process" % sig.name
            )
        driver = sig.driver_for(proc)
        driver.schedule(self.kernel.now, waveform, transport)

    def event(self, sig):
        return 1 if sig.had_event(self.kernel.step) else 0

    def active(self, sig):
        return 1 if sig.is_active(self.kernel.step) else 0

    def last_value(self, sig):
        return sig.last_value

    # -- waiting --------------------------------------------------------------------

    def wait(self, signals=None, condition=None, timeout=None):
        """Build the wait request a process yields."""
        return WaitRequest(signals, condition, timeout)

    # -- misc -------------------------------------------------------------------------

    @property
    def now(self):
        return self.kernel.now

    def assert_(self, condition, message, severity="error"):
        if not condition:
            self.kernel.logger.report(
                severity, message, self.kernel.now,
                self.kernel.current_process,
            )

    def check(self, value, low, high, what="value"):
        return ops.check_range(value, low, high, what)
