"""Reproduction of Farrow & Stanculescu, "A VHDL Compiler Based on
Attribute Grammar Methodology" (PLDI 1989).

The package is organized as the paper's system was:

- :mod:`repro.ag` — an attribute-grammar translator-writing system (the
  role Linguist(TM) played): LALR(1) parser generation, attribute classes
  with implicit semantic rules, dependency analysis, ordered-AG visit
  sequences, and cascaded evaluation.
- :mod:`repro.applicative` — persistent (applicative) data structures used
  for the symbol table, after Myers.
- :mod:`repro.vif` — the VHDL Intermediate Format: a declarative schema
  notation (itself processed by an AG), a code generator for access
  functions, serialization with foreign-reference resolution, and a
  human-readable dump.
- :mod:`repro.vhdl` — the VHDL compiler proper, written as two attribute
  grammars (a principal AG and an expression AG connected by cascaded
  evaluation over LEF token lists).
- :mod:`repro.sim` — the target virtual machine: simulation kernel,
  runtime support, VHDL I/O, and name server.
- :mod:`repro.diag` — structured diagnostics (spans, SARIF), phase
  tracing (Chrome trace events), and AG evaluation observability.
"""

__version__ = "1.0.0"

__all__ = ["ag", "applicative", "vif", "vhdl", "sim", "diag", "build"]
