"""Whole-design dataflow analysis over the flattened netlist.

Four elaborated-design rules (RPE) run on the
:class:`~repro.analysis.netlist.DesignGraph`, plus the levelization
pass whose output — the ``repro-levels/1`` artifact — is the
precomputed evaluation order a compiled/levelized backend consumes
(ROADMAP items 1 and 5; the CVC compiler's flatten-then-levelize
strategy).

``RPE001`` *combinational loop* — a strongly connected component of
the zero-delay dataflow graph: every signal on the cycle is driven,
without an ``'EVENT`` guard and without an ``after`` delay, by a
process that re-fires on events of another cycle signal.  The delta
cycle never converges (the kernel spins until ``max_cycles``).
Clocked feedback ('EVENT-guarded drives) and time-paced feedback
(``after`` delays, ``wait for`` pacing) are legitimate and exempt by
construction.

``RPE002`` *static drive race* — one elaborated signal with drivers
in two or more processes, found across instance boundaries.  Without
a resolution function this is the exact defect
:meth:`repro.sim.signals.Signal.compute_value` raises on at run time
— the diagnostic cites the same declaration span.  With a resolution
function it is reported as a note: legitimate bus behaviour whose
same-instant writes are ordered by the resolution function alone.

``RPE003`` *cross-clock transfer* — a signal registered in one clock
domain and read as data in a process clocked by a different signal,
with no re-registration stage in between: a real design would
metastabilize.  A single-flop synchronizer (a process whose only
data read is the foreign signal and whose only effect is one
re-registration) is recognized and exempts downstream reads.

``RPE004`` *dead cone / static constant* — after generics folded and
hierarchy flattened, a cone of logic no live observer can see (dead),
or a signal read but never driven (statically constant).  Reported as
notes: they are optimization facts, not correctness hazards.
"""

from ..diag.diagnostic import ERROR, NOTE, WARNING
from .rules import Rule, register

#: Levelization artifact format marker.
LEVELS_SCHEMA = "repro-levels/1"


# -- Tarjan SCC ----------------------------------------------------------------


def tarjan_scc(nodes, successors):
    """Iterative Tarjan: strongly connected components of a digraph.

    ``nodes`` is an ordered iterable; ``successors(node)`` yields the
    outgoing neighbours.  Returns components in reverse topological
    order (standard Tarjan emission order), each a list of nodes.
    """
    index = {}
    lowlink = {}
    on_stack = set()
    stack = []
    components = []
    counter = [0]

    for root in nodes:
        if root in index:
            continue
        work = [(root, iter(successors(root)))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(successors(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member is node:
                        break
                components.append(component)
    return components


# -- combinational-loop detection ----------------------------------------------


def _comb_adjacency(graph):
    """``signal -> {successor signals}`` over the zero-delay edges,
    plus ``signal -> [procs]`` recording which process closes each
    edge (for diagnostics)."""
    adjacency = {}
    via = {}
    for src, dst, proc in graph.comb_edges():
        adjacency.setdefault(src, set()).add(dst)
        via.setdefault((src, dst), []).append(proc)
    return adjacency, via


def combinational_loops(graph):
    """The comb-graph SCCs that are actual cycles.

    Returns ``[(signals, procs)]``: cycle signals in graph order and
    the processes whose drives close the cycle, both deterministic.
    """
    adjacency, via = _comb_adjacency(graph)
    nodes = [s for s in graph.signals if s in adjacency
             or any(s in dsts for dsts in adjacency.values())]
    components = tarjan_scc(
        nodes, lambda n: sorted(adjacency.get(n, ()),
                                key=lambda s: s.index))
    loops = []
    for component in components:
        members = sorted(component, key=lambda s: s.index)
        if len(members) == 1:
            node = members[0]
            if node not in adjacency.get(node, ()):
                continue
        member_set = set(members)
        procs = []
        for (src, dst), closing in sorted(
                via.items(),
                key=lambda kv: (kv[0][0].index, kv[0][1].index)):
            if src in member_set and dst in member_set:
                for proc in closing:
                    if proc not in procs:
                        procs.append(proc)
        loops.append((members, procs))
    loops.sort(key=lambda pair: pair[0][0].index)
    return loops


def cyclic_signals(graph):
    """Every signal on some combinational loop."""
    tainted = set()
    for members, _procs in combinational_loops(graph):
        tainted.update(members)
    return tainted


# -- levelization --------------------------------------------------------------


def levelize(graph):
    """Assign evaluation levels to the acyclic combinational cones.

    Level 0 holds every signal that is *not* zero-delay driven
    (clocked registers, delayed signals, constants, ports): the cone
    inputs.  A combinational process evaluates at
    ``1 + max(level of its inputs)`` and its targets live at that
    level, so replaying processes in level order settles the whole
    comb fabric in one deterministic sweep — no event calendar needed.

    Returns ``(levels, eval_order, cyclic)`` where ``levels`` maps
    NetSignal to int, ``eval_order`` is the process order, and
    ``cyclic`` is the list of loop-tainted signals excluded from both,
    deterministically sorted by ``Signal.index`` — the compiled
    backend's calendar-fallback set must be byte-stable across runs,
    and the ``repro-levels/1`` artifact emits it in this order.
    """
    cyclic = cyclic_signals(graph)
    comb_procs = [p for p in graph.processes if p.combinational]

    # A signal is a cone interior node when a comb process zero-delay
    # drives it; everything else seeds level 0.
    interior = set()
    for proc in comb_procs:
        for drive in proc.drives:
            if not drive.guarded and drive.zero_delay:
                interior.add(drive.target)

    levels = {}
    for signal in graph.signals:
        if signal in cyclic:
            continue
        if signal not in interior:
            levels[signal] = 0

    pending = [p for p in comb_procs
               if not (set(p.comb_inputs()) & cyclic)
               and not any(d.target in cyclic for d in p.drives)]
    eval_order = []
    # Kahn-style relaxation; the pending list is small and each pass
    # settles at least one process, so this is O(n^2) worst case on
    # pathological chains and linear on realistic fabrics.
    progress = True
    while pending and progress:
        progress = False
        still = []
        for proc in pending:
            deps = [s for s in proc.comb_inputs() if s in interior]
            if any(s not in levels for s in deps):
                still.append(proc)
                continue
            level = 1 + max(
                (levels[s] for s in proc.comb_inputs()
                 if s in levels), default=0)
            for drive in proc.drives:
                if drive.guarded or not drive.zero_delay:
                    continue
                levels[drive.target] = max(
                    levels.get(drive.target, 0), level)
            eval_order.append(proc)
            progress = True
        pending = still
    # Anything left depends (transitively) on a loop: taint it too.
    for proc in pending:
        for drive in proc.drives:
            if not drive.guarded and drive.zero_delay:
                cyclic.add(drive.target)
                levels.pop(drive.target, None)
    eval_order.sort(key=lambda p: (
        max([levels.get(s, 0) for s in p.comb_inputs()] or [0]),
        p.index))
    return levels, eval_order, sorted(cyclic, key=lambda s: s.index)


def levels_artifact(graph):
    """The ``repro-levels/1`` JSON artifact for a design graph."""
    levels, eval_order, cyclic = levelize(graph)
    by_level = {}
    for signal, level in levels.items():
        by_level.setdefault(level, []).append(signal.path)
    return {
        "schema": LEVELS_SCHEMA,
        "top": graph.top_path,
        "signals": len(graph.signals),
        "processes": len(graph.processes),
        "levels": [
            {"level": level, "signals": sorted(by_level[level])}
            for level in sorted(by_level)
        ],
        "eval_order": [proc.path for proc in eval_order],
        # Quarantine in Signal.index order (levelize sorts), not
        # lexicographic: c10 must not precede c2.
        "cyclic": [s.path for s in cyclic],
    }


# -- elaborated-design rules (RPE) ---------------------------------------------


class DesignRule(Rule):
    scope = "design"

    def check(self, graph, ctx):
        raise NotImplementedError


@register
class CombinationalLoop(DesignRule):
    id = "RPE001"
    severity = ERROR
    summary = ("combinational loop: zero-delay unclocked drives form "
               "a cycle the delta cycle can never settle")

    #: Signals shown in the message / processes cited as related
    #: spans before eliding — a 2000-cell ring is one SCC, and a
    #: 40 kB diagnostic helps nobody.
    shown = 8

    def check(self, graph, ctx):
        for signals, procs in combinational_loops(graph):
            head = signals[:self.shown]
            cycle = " -> ".join(s.path for s in head)
            if len(signals) > self.shown:
                cycle += " -> ... (%d more)" \
                    % (len(signals) - self.shown)
            cycle += " -> %s" % signals[0].path
            yield self.diag(
                "combinational loop through %d signal(s): %s"
                % (len(signals), cycle),
                span=signals[0].decl_span,
                notes=["every drive on the cycle is zero-delay and "
                       "outside any 'EVENT guard; simulation would "
                       "iterate deltas until the cycle cap"],
                related=[
                    ("cycle closed by process %r" % proc.label,
                     proc.decl_span)
                    for proc in procs[:self.shown]
                    if proc.decl_span is not None
                ])


@register
class StaticDriveRace(DesignRule):
    id = "RPE002"
    severity = ERROR
    summary = ("signal is driven by multiple processes across the "
               "elaborated design (unresolved: the kernel's runtime "
               "multi-driver error; resolved: bus semantics)")

    def check(self, graph, ctx):
        for signal in graph.signals:
            drivers = []
            for drive in signal.drivers:
                if drive.proc not in drivers:
                    drivers.append(drive.proc)
            if len(drivers) < 2:
                continue
            related = [
                ("driven by process %r" % proc.label, proc.decl_span)
                for proc in drivers if proc.decl_span is not None
            ]
            if signal.resolved:
                # Legitimate bus: same rule id, note severity.
                diag = self.diag(
                    "resolved signal %r has %d drivers; same-instant "
                    "writes are ordered only by its resolution "
                    "function" % (signal.path, len(drivers)),
                    span=signal.decl_span, related=related)
                diag.severity = NOTE
                yield diag
                continue
            yield self.diag(
                "signal %r is driven by %d processes but has no "
                "resolution function; the first simultaneous write "
                "raises the kernel's multi-driver error"
                % (signal.path, len(drivers)),
                span=signal.decl_span, related=related)


@register
class CrossClockTransfer(DesignRule):
    id = "RPE003"
    severity = WARNING
    summary = ("signal registered in one clock domain is read as "
               "data in another without a synchronizer stage")

    def check(self, graph, ctx):
        domain_of = {}
        for proc in graph.processes:
            if proc.is_clocked:
                domain_of[proc] = frozenset(
                    s.index for s in proc.clocks)
        for signal in sorted(graph.signals, key=lambda s: s.index):
            source_domains = set()
            source_procs = []
            for drive in signal.drivers:
                domain = domain_of.get(drive.proc)
                if domain and drive.guarded:
                    source_domains.update(domain)
                    if drive.proc not in source_procs:
                        source_procs.append(drive.proc)
            if not source_domains:
                continue
            for reader in signal.readers:
                domain = domain_of.get(reader)
                if not domain or domain & source_domains:
                    continue
                if signal in reader.clocks:
                    continue  # used as a clock, not as data
                if signal not in (reader.reads_plain
                                  | reader.reads_guarded):
                    continue  # sensitivity/wait only
                if self._is_sync_stage(reader, signal):
                    continue
                yield self.diag(
                    "signal %r is registered in clock domain {%s} but "
                    "read as data by process %r clocked by {%s} with "
                    "no synchronizer stage"
                    % (signal.path,
                       ", ".join(sorted(
                           c.path for p in source_procs
                           for c in p.clocks)),
                       reader.label,
                       ", ".join(sorted(
                           c.path for c in reader.clocks))),
                    span=signal.decl_span,
                    related=[
                        ("read here", reader.decl_span),
                    ] + [
                        ("registered by process %r" % p.label,
                         p.decl_span)
                        for p in source_procs
                        if p.decl_span is not None
                    ])

    @staticmethod
    def _is_sync_stage(reader, signal):
        """A single-flop re-registration: the process's only data
        read is the foreign signal and it re-registers into exactly
        one target — the first stage of a synchronizer."""
        data_reads = (reader.reads_plain | reader.reads_guarded) \
            - reader.clocks
        if data_reads != {signal}:
            return False
        targets = {d.target for d in reader.drives}
        return len(targets) == 1


@register
class DeadCone(DesignRule):
    id = "RPE004"
    severity = NOTE
    summary = ("dead cone or statically-constant signal after "
               "elaboration (no live observer / no driver)")

    def check(self, graph, ctx):
        live_signals, live_procs = self._liveness(graph)
        for signal in graph.signals:
            if signal.is_top_port:
                continue
            if signal not in live_signals:
                yield self.diag(
                    "signal %r is part of a dead cone: no live "
                    "process or top-level port ever observes it"
                    % signal.path,
                    span=signal.decl_span)
            elif not signal.drivers and signal.readers:
                yield self.diag(
                    "signal %r is read but never driven: statically "
                    "constant at its initial value after elaboration"
                    % signal.path,
                    span=signal.decl_span)

    @staticmethod
    def _liveness(graph):
        """Backward liveness fixpoint.

        Seeds: top-level ports (externally observable) and observer
        processes (no drives — their asserts/reports are effects).
        A process is live when any drive target is live; a signal is
        live when a live process reads, waits on, or senses it.
        """
        live_signals = set()
        live_procs = set()
        worklist = []
        for proc in graph.processes:
            if not proc.drives:
                live_procs.add(proc)
                worklist.append(proc)
        for signal in graph.signals:
            if signal.is_top_port:
                live_signals.add(signal)
        changed = True
        while changed:
            changed = False
            for proc in graph.processes:
                if proc in live_procs:
                    continue
                if any(d.target in live_signals for d in proc.drives):
                    live_procs.add(proc)
                    changed = True
            for proc in live_procs:
                for signal in (proc.reads_plain | proc.reads_guarded
                               | proc.attr_uses | proc.sensitivity
                               | proc.wait_signals):
                    if signal not in live_signals:
                        live_signals.add(signal)
                        changed = True
        return live_signals, live_procs
