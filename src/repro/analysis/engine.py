"""The lint engine: rule selection, unit iteration, and baselines.

:class:`LintEngine` glues the fact extractor to the rule registry and
produces plain :class:`repro.diag.Diagnostic` lists, so every
existing consumer — the caret renderer, the JSON-lines stream, the
SARIF writer, ``-Werror`` promotion in :class:`DiagnosticEngine` —
works on lint findings unchanged.

Selection follows the familiar *prefix* convention: ``--select RPL``
enables every design rule, ``--ignore RPL003`` drops one.  A finding
suppressed by the *baseline* file (schema ``repro-lint-baseline/1``)
is matched on ``(rule, file, message)`` — deliberately not on line
numbers, so unrelated edits above a known finding do not churn the
baseline.
"""

import json
import os

from ..metrics import NULL_REGISTRY
from .facts import extract_unit_facts
from .rules import REGISTRY, LintContext

# Registering the elaborated-design rules (RPE) is a side effect of
# importing the module; the engine is the one guaranteed chokepoint
# every consumer passes through.
from . import dataflow  # noqa: F401  (registers RPE rules)

#: Baseline file format marker.
BASELINE_SCHEMA = "repro-lint-baseline/1"


class LintEngine:
    """Runs enabled rules over units and compiled attribute grammars.

    ``select`` / ``ignore`` are iterables of rule-id prefixes
    (``"RPL"``, ``"RPA002"``); an empty/None ``select`` means *all
    registered rules*.  ``library`` (a
    :class:`repro.vhdl.library.LibraryManager`) lets RPL002/RPL005
    resolve component port modes through default bindings; without it
    those rules degrade conservatively.
    """

    def __init__(self, library=None, work=None, select=None,
                 ignore=None, metrics=None):
        self.context = LintContext(library, work)
        self.select = tuple(select or ())
        self.ignore = tuple(ignore or ())
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_findings = self.metrics.counter(
            "lint_findings_total", "lint findings by rule")
        self._m_units = self.metrics.counter(
            "lint_units_total", "units analyzed by the linter")

    # -- selection ---------------------------------------------------------

    def enabled(self, rule_id):
        if any(rule_id.startswith(p) for p in self.ignore):
            return False
        if not self.select:
            return True
        return any(rule_id.startswith(p) for p in self.select)

    def _rules(self, scope):
        return [r for r in REGISTRY.values()
                if r.scope == scope and self.enabled(r.id)]

    # -- linting -----------------------------------------------------------

    def lint_unit(self, node, kind=None):
        """Lint one VIF unit node; returns a list of Diagnostics."""
        facts = extract_unit_facts(node, kind=kind)
        self._m_units.inc()
        found = []
        for rule in self._rules("unit"):
            for diag in rule.check(facts, self.context):
                self._m_findings.labels(rule=rule.id).inc()
                found.append(diag)
        return found

    def lint_units(self, nodes):
        found = []
        for node in nodes:
            found.extend(self.lint_unit(node))
        return found

    def lint_library(self, library=None, lib=None):
        """Lint every unit registered in a library (default: the one
        the engine was built with), in compile order."""
        library = library or self.context.library
        if library is None:
            return []
        lib = lib or library.work
        found = []
        seen = set()
        order = [key for key in getattr(library, "compile_order", ())]
        order += [key for key in library._units if key not in order]
        for key in order:
            if key in seen or key[0] != lib:
                continue
            seen.add(key)
            node = library.find_unit(*key) or library._units.get(key)
            if node is not None:
                found.extend(self.lint_unit(node))
        return found

    def lint_design(self, graph):
        """Run the elaborated-design rules (scope ``design``) over a
        :class:`repro.analysis.netlist.DesignGraph`."""
        found = []
        for rule in self._rules("design"):
            for diag in rule.check(graph, self.context):
                self._m_findings.labels(rule=rule.id).inc()
                found.append(diag)
        return found

    def lint_ag(self, compiled, entry_inherited=(), goals=()):
        """Lint one :class:`repro.ag.spec.CompiledAG`.

        ``entry_inherited`` names the start-symbol inherited
        attributes the evaluation entry supplies (RPA001 exemptions);
        ``goals`` names the root attributes read externally (RPA002
        exemptions — empty means *all* root attributes are outputs).
        """
        self.context.entry_inherited = tuple(entry_inherited)
        self.context.goals = tuple(goals)
        found = []
        for rule in self._rules("ag"):
            for diag in rule.check(compiled, self.context):
                self._m_findings.labels(rule=rule.id).inc()
                found.append(diag)
        return found


# -- baselines ------------------------------------------------------------------
#
# Keys are (rule, file, message) — deliberately not line numbers, so
# unrelated edits above a known finding do not churn the baseline.
# On disk the file component is stored *relative to the baseline
# file's own directory* (for a baseline at the repo root: the
# repo-relative path), so a committed baseline survives checkout
# moves and CI workspace paths.  Old baselines with absolute paths
# still load; they match only on the machine that wrote them, so the
# loader counts them for a deprecation note.


def _finding_key(diag):
    file = diag.span.file if diag.span is not None else None
    return (diag.code, file or "", diag.message)


def _match_key(diag):
    """The absolute-path key findings are matched on."""
    rule, file, message = _finding_key(diag)
    return (rule, os.path.abspath(file) if file else "", message)


class Baseline(set):
    """Loaded baseline keys plus load-time metadata.

    Behaves as the plain set of ``(rule, abs-file, message)`` keys
    older callers expect; ``deprecated_absolute`` counts entries that
    were stored with absolute paths by a pre-portability writer.
    """

    def __init__(self, keys=(), deprecated_absolute=0):
        set.__init__(self, keys)
        self.deprecated_absolute = deprecated_absolute


def write_baseline(path, diagnostics):
    """Write the accepted-findings baseline for ``diagnostics``.

    File keys are stored relative to the baseline's directory when
    the finding lies under it; files outside that tree keep their
    path as reported (portability is impossible for them anyway).
    """
    base = os.path.dirname(os.path.abspath(path)) or os.sep
    findings = set()
    for diag in diagnostics:
        rule, file, message = _finding_key(diag)
        if file:
            rel = os.path.relpath(os.path.abspath(file), base)
            if not rel.startswith(".."):
                file = rel
        findings.add((rule, file, message))
    findings = sorted(findings)
    payload = {
        "schema": BASELINE_SCHEMA,
        "findings": [
            {"rule": rule, "file": file, "message": message}
            for rule, file, message in findings
        ],
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(findings)


def load_baseline(path):
    """Load a baseline into a :class:`Baseline` of match keys.

    Relative file entries are re-anchored to the baseline file's
    directory; absolute entries (the pre-portability format) are kept
    as-is and counted in ``deprecated_absolute``.  Raises
    ``ValueError`` on an unknown schema so a stale or foreign file
    fails loudly instead of silently suppressing everything.
    """
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            "baseline %r has schema %r, expected %r"
            % (path, payload.get("schema"), BASELINE_SCHEMA))
    base = os.path.dirname(os.path.abspath(path)) or os.sep
    keys = set()
    deprecated = 0
    for f in payload.get("findings", ()):
        file = f.get("file", "")
        if file and os.path.isabs(file):
            deprecated += 1
        elif file:
            file = os.path.normpath(os.path.join(base, file))
        keys.add((f.get("rule", ""), file, f.get("message", "")))
    return Baseline(keys, deprecated_absolute=deprecated)


def apply_baseline(diagnostics, baseline):
    """Split findings into (new, suppressed-by-baseline)."""
    if not baseline:
        return list(diagnostics), []
    new, suppressed = [], []
    for diag in diagnostics:
        if _match_key(diag) in baseline \
                or _finding_key(diag) in baseline:
            suppressed.append(diag)
        else:
            new.append(diag)
    return new, suppressed
