"""The lint rule registry: design rules (RPL) and AG-spec rules (RPA).

Every rule has a stable identifier, a default severity, and a
one-line summary.  Registration feeds the summary into
:data:`repro.diag.diagnostic.CODE_DESCRIPTIONS`, so the SARIF
renderer's rules catalog picks up per-rule metadata with no extra
wiring — the same path the compiler's own LEX/PARSE/SEM codes use.

Design-rule rationale (each maps to a hazard the paper's semantics
make precise):

``RPL001`` *incomplete sensitivity* — a process reads a signal its
sensitivity list omits; simulation (§5.1 cycle semantics) will not
resume it on that signal's events, so simulated and synthesized
behaviour diverge.  Reads guarded by an ``'EVENT`` test (the clocked
idiom) and reads of self-driven feedback signals are exempt.

``RPL002`` *unresolved multi-driver* — two drivers, no resolution
function: the exact defect :meth:`repro.sim.signals.Signal.
compute_value` turns into a runtime error mid-simulation.  The lint
fires at compile time and cites the same declaration span.

``RPL003`` *unused signal* — declared, never read, driven, waited on,
or connected; dead weight in the elaborated design.

``RPL004`` *process never suspends* — an infinite loop with no
``wait`` can never yield to the kernel; one resumption would hang the
simulation-cycle loop forever.

``RPL005`` *port mode violation* — driving an ``in`` port, or making
an ``out`` port a wakeup source (sensitivity/wait), contradicts the
declared interface direction.

``RPL006`` *unreachable code* — statements after a wait-less infinite
loop can never execute.

AG-spec rules lint a :class:`repro.ag.spec.CompiledAG` — the
methodology half of the paper: ``RPA001`` declared-but-never-computed
attributes, ``RPA002`` computed-but-never-read attributes, ``RPA003``
the absolutely-noncircular test surfaced as a diagnostic instead of
an exception.
"""

from ..diag import Diagnostic, SourceSpan
from ..diag.diagnostic import CODE_DESCRIPTIONS, ERROR, WARNING

#: rule id -> Rule instance, in registration order.
REGISTRY = {}

#: Modes that make an instance port connection a *driver* of the
#: connected actual signal.
_DRIVING_MODES = ("out", "inout", "buffer")


def register(cls):
    """Class decorator: instantiate, index, and catalog a rule."""
    rule = cls()
    if rule.id in REGISTRY:
        raise ValueError("duplicate lint rule id %r" % rule.id)
    REGISTRY[rule.id] = rule
    CODE_DESCRIPTIONS.setdefault(rule.id, rule.summary)
    return cls


def all_rules():
    return list(REGISTRY.values())


class Rule:
    """Base class: one check with a stable id.

    ``scope`` is ``"unit"`` (checks :class:`UnitFacts`) or ``"ag"``
    (checks a :class:`CompiledAG`).  ``check`` yields
    :class:`repro.diag.Diagnostic` instances.
    """

    id = None
    severity = WARNING
    summary = ""
    scope = "unit"

    def check(self, facts, ctx):
        raise NotImplementedError

    def diag(self, message, span=None, notes=(), related=()):
        return Diagnostic(self.id, self.severity, message, span=span,
                          notes=notes, related=related)


class LintContext:
    """Shared services rules may need.

    ``port_mode(component, formal)`` resolves the mode of a bound
    component's port through the library's default binding (the same
    entity-name rule elaboration uses), returning ``None`` when no
    binding is known — rules must treat unknown modes conservatively.
    """

    def __init__(self, library=None, work=None):
        self.library = library
        self.work = work or (library.work if library is not None
                             else "work")
        self._port_cache = {}
        self._external_uses = None

    def span(self, facts, line):
        if line is None and facts.file is None:
            return None
        return SourceSpan(file=facts.file, line=line)

    def port_mode(self, component, formal):
        ports = self._component_ports(component)
        if ports is None:
            return None
        return ports.get(formal)

    def external_uses(self):
        """Generated binding names each library unit uses without
        declaring them — references to *another* unit's objects.

        Package-level signals keep one globally-unique binding name
        (``pkg_<package>_s_<name>``) in every importer, so a name in
        this set marks the declaring unit's object as used even when
        every use (a port-map actual, a process read) lives in a
        different unit.  Purely local bindings (``s_x``) never land
        here: the unit that uses them also declares them.
        """
        if self._external_uses is not None:
            return self._external_uses
        refs = set()
        if self.library is not None:
            from .facts import extract_unit_facts
            for key in list(getattr(self.library, "_units", ())):
                node = self.library.find_unit(*key) \
                    or self.library._units.get(key)
                if node is None:
                    continue
                facts = extract_unit_facts(node)
                used = set()
                for proc in facts.processes:
                    used |= proc.uses
                for inst in facts.instances:
                    used.update(inst.connections.values())
                refs |= used - set(facts.objects)
        self._external_uses = refs
        return refs

    def _component_ports(self, component):
        if component in self._port_cache:
            return self._port_cache[component]
        ports = None
        if self.library is not None:
            entity = self.library.find_unit(self.work, component) \
                or self.library._units.get((self.work, component))
            if entity is not None and hasattr(entity, "ports"):
                ports = {
                    p.name: (p.mode or "in")
                    for p in entity.ports
                }
        self._port_cache[component] = ports
        return ports


# -- design rules (RPL) --------------------------------------------------------


@register
class IncompleteSensitivity(Rule):
    id = "RPL001"
    severity = WARNING
    summary = ("process reads a signal missing from its sensitivity "
               "list (simulation will not resume on its events)")

    def check(self, facts, ctx):
        for proc in facts.processes:
            if proc.sensitivity is None:
                continue  # wait-driven: no list to be incomplete
            sens = set(proc.sensitivity)
            missing = []
            for py in sorted(proc.plain_reads):
                obj = facts.object_named(py)
                if obj is None:
                    continue  # variable/constant: no events
                if py in sens or py in proc.drives:
                    continue
                missing.append(obj)
            if not missing:
                continue
            names = ", ".join(repr(o.name) for o in missing)
            yield self.diag(
                "process %r reads %s but its sensitivity list omits "
                "%s" % (proc.label, names,
                        "it" if len(missing) == 1 else "them"),
                span=ctx.span(facts, proc.line),
                related=[
                    ("%r declared here" % o.name,
                     ctx.span(facts, o.line))
                    for o in missing if o.line is not None
                ])


@register
class UnresolvedMultipleDrivers(Rule):
    id = "RPL002"
    severity = ERROR
    summary = ("signal has multiple drivers but no resolution "
               "function (fails at simulation time otherwise)")

    def check(self, facts, ctx):
        drivers = {}  # py -> [description, span]
        for proc in facts.processes:
            for py in sorted(proc.drives):
                drivers.setdefault(py, []).append(
                    ("driven by process %r" % proc.label,
                     ctx.span(facts, proc.line)))
        for inst in facts.instances:
            for formal in sorted(inst.connections):
                mode = ctx.port_mode(inst.component, formal)
                if mode in _DRIVING_MODES:
                    drivers.setdefault(
                        inst.connections[formal], []).append(
                        ("driven by port %r of instance %r"
                         % (formal, inst.label), None))
        for py in sorted(drivers):
            sources = drivers[py]
            obj = facts.object_named(py)
            if obj is None or obj.resolved or len(sources) < 2:
                continue
            yield self.diag(
                "signal %r has %d drivers but no resolution function"
                % (obj.name, len(sources)),
                span=ctx.span(facts, obj.line),
                related=[(m, s) for m, s in sources
                         if s is not None])


@register
class UnusedSignal(Rule):
    id = "RPL003"
    severity = WARNING
    summary = ("signal is declared but never read, driven, waited "
               "on, or connected")

    def check(self, facts, ctx):
        used = set()
        for proc in facts.processes:
            used |= proc.uses
        for inst in facts.instances:
            used.update(inst.connections.values())
        external = None
        for py in sorted(facts.objects):
            obj = facts.objects[py]
            if obj.kind != "signal" or py in used:
                continue
            # Cross-unit uses: a package-level signal may be read (or
            # wired into an instance port map) only by *other* units;
            # its globally-unique binding name makes those visible.
            if external is None:
                external = ctx.external_uses()
            if py in external:
                continue
            yield self.diag(
                "signal %r is never used" % obj.name,
                span=ctx.span(facts, obj.line))


@register
class ProcessNeverSuspends(Rule):
    id = "RPL004"
    severity = ERROR
    summary = ("process contains an infinite loop with no wait "
               "statement (simulation would hang)")

    def check(self, facts, ctx):
        for proc in facts.processes:
            if not proc.waitless_loops:
                continue
            yield self.diag(
                "process %r contains %s with no wait statement — it "
                "can never suspend, so one resumption hangs the "
                "simulation cycle"
                % (proc.label,
                   "an infinite loop" if proc.waitless_loops == 1
                   else "%d infinite loops" % proc.waitless_loops),
                span=ctx.span(facts, proc.line))


@register
class PortModeViolation(Rule):
    id = "RPL005"
    severity = ERROR
    summary = ("use of a port contradicts its declared mode "
               "(driving an 'in' port / waiting on an 'out' port)")

    def check(self, facts, ctx):
        for proc in facts.processes:
            for py in sorted(proc.drives):
                obj = facts.object_named(py)
                if obj is not None and obj.kind == "port" \
                        and obj.mode == "in":
                    yield self.diag(
                        "process %r drives port %r of mode 'in'"
                        % (proc.label, obj.name),
                        span=ctx.span(facts, proc.line),
                        related=[("port %r declared here" % obj.name,
                                  ctx.span(facts, obj.line))])
            wakeups = set(proc.sensitivity or ())
            for w in proc.waits:
                wakeups.update(w.signals)
            for py in sorted(wakeups):
                obj = facts.object_named(py)
                if obj is not None and obj.kind == "port" \
                        and obj.mode == "out":
                    yield self.diag(
                        "process %r waits on port %r of mode 'out' "
                        "(out ports are not readable wakeup sources)"
                        % (proc.label, obj.name),
                        span=ctx.span(facts, proc.line),
                        related=[("port %r declared here" % obj.name,
                                  ctx.span(facts, obj.line))])


@register
class UnreachableAfterWaitlessLoop(Rule):
    id = "RPL006"
    severity = WARNING
    summary = ("statements after a wait-less infinite loop can "
               "never execute")

    def check(self, facts, ctx):
        for proc in facts.processes:
            if not proc.unreachable_stmts:
                continue
            yield self.diag(
                "process %r has %d unreachable statement(s) after a "
                "wait-less infinite loop"
                % (proc.label, proc.unreachable_stmts),
                span=ctx.span(facts, proc.line))


# -- attribute-grammar rules (RPA) ---------------------------------------------


class AGRule(Rule):
    scope = "ag"

    def check(self, compiled, ctx):
        raise NotImplementedError


@register
class AttrDeclaredNeverComputed(AGRule):
    id = "RPA001"
    severity = WARNING
    summary = ("attribute is declared but no semantic rule computes "
               "it and no evaluation entry supplies it")

    def check(self, compiled, ctx):
        grammar = compiled.grammar
        computed = set()  # (symbol name, attr)
        for prod in grammar.productions:
            symbols = prod.symbols
            for (pos, attr) in compiled.rules_of(prod):
                computed.add((symbols[pos].name, attr))
        entry = set(getattr(ctx, "entry_inherited", ()) or ())
        start = grammar.start.name if grammar.start is not None else None
        for sym in grammar.nonterminals:
            for attr in sorted(compiled.attr_table.of(sym)):
                if (sym.name, attr) in computed:
                    continue
                if sym.name == start and attr in entry:
                    continue
                yield self.diag(
                    "attribute %s.%s is declared but never computed"
                    % (sym.name, attr)
                    + (" (add it to the evaluation entry's inherited "
                       "set if it is supplied externally)"
                       if sym.name == start else ""))


@register
class AttrComputedNeverRead(AGRule):
    id = "RPA002"
    severity = WARNING
    summary = ("attribute is computed but no semantic rule or goal "
               "ever reads it")

    def check(self, compiled, ctx):
        grammar = compiled.grammar
        read = set()  # (symbol name, attr)
        for prod in grammar.productions:
            for rule in compiled.rules_of(prod).values():
                for dep in rule.deps:
                    if not dep.symbol.is_terminal:
                        read.add((dep.symbol.name, dep.attr))
        goals = set(getattr(ctx, "goals", ()) or ())
        start = grammar.start.name if grammar.start is not None else None
        for sym in grammar.nonterminals:
            for attr in sorted(compiled.attr_table.of(sym)):
                if (sym.name, attr) in read:
                    continue
                if sym.name == start and (not goals or attr in goals):
                    continue  # root attributes are the outputs
                yield self.diag(
                    "attribute %s.%s is computed but never read"
                    % (sym.name, attr))


@register
class AGCircularity(AGRule):
    id = "RPA003"
    severity = ERROR
    summary = ("attribute grammar fails the absolutely-noncircular "
               "dependency test")

    def check(self, compiled, ctx):
        from ..ag.dependency import DependencyAnalysis
        from ..ag.errors import CircularityError

        try:
            DependencyAnalysis(compiled).check_noncircular()
        except CircularityError as exc:
            notes = [
                "on the cycle: position %s attribute %s" % (pos, attr)
                for pos, attr in getattr(exc, "cycle", ()) or ()
            ]
            yield self.diag(str(exc), notes=notes)
