"""repro.analysis — static design analysis over compiled designs.

Two analysis layers share one rule registry, one diagnostic surface,
and one baseline format:

* the *linter* sits between compilation and elaboration: it reads
  the facts the attribute-grammar front end already computed
  (declaration tables, generated models) and checks per-unit design
  rules (RPL) and attribute-grammar rules (RPA);
* the *dataflow analyzer* sits between elaboration and simulation:
  it flattens the elaborated design into a signal/process graph
  (:func:`build_netlist`), resolves reads and drives through
  instance port maps, and checks whole-design rules (RPE —
  combinational loops, static drive races, cross-clock transfers,
  dead cones) plus the levelization pass whose ``repro-levels/1``
  artifact is the evaluation order a compiled backend consumes.

Findings are ordinary :mod:`repro.diag` diagnostics, so rendering
(caret text, JSON lines, SARIF 2.1.0 with a populated rules
catalog), ``-Werror`` promotion, and metrics counting all come for
free.

Entry points:

* :class:`LintEngine` — the library API (``repro lint``,
  ``repro analyze`` and the build driver's ``--lint`` all call it);
* :data:`REGISTRY` / :func:`register` — the pluggable rule registry;
* :func:`extract_unit_facts` — the rule-agnostic dataflow extractor;
* :func:`build_netlist` / :class:`DesignGraph` — the flattened
  elaborated-design graph;
* :func:`levels_artifact` / :func:`levelize` — the levelization pass;
* baselines: :func:`load_baseline` / :func:`write_baseline` /
  :func:`apply_baseline` (schema ``repro-lint-baseline/1``).
"""

from .dataflow import (
    LEVELS_SCHEMA,
    combinational_loops,
    levelize,
    levels_artifact,
    tarjan_scc,
)
from .engine import (
    BASELINE_SCHEMA,
    LintEngine,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .facts import (
    DriveFact,
    InstanceFact,
    ObjectFact,
    ProcessFact,
    UnitFacts,
    WaitFact,
    extract_unit_facts,
)
from .netlist import DesignGraph, NetProcess, NetSignal, build_netlist
from .rules import REGISTRY, LintContext, Rule, all_rules, register

__all__ = [
    "BASELINE_SCHEMA",
    "DesignGraph",
    "DriveFact",
    "InstanceFact",
    "LEVELS_SCHEMA",
    "LintContext",
    "LintEngine",
    "NetProcess",
    "NetSignal",
    "ObjectFact",
    "ProcessFact",
    "REGISTRY",
    "Rule",
    "UnitFacts",
    "WaitFact",
    "all_rules",
    "apply_baseline",
    "build_netlist",
    "combinational_loops",
    "extract_unit_facts",
    "levelize",
    "levels_artifact",
    "load_baseline",
    "register",
    "tarjan_scc",
    "write_baseline",
]
