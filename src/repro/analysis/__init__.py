"""repro.analysis — static design linting over compiled VIF units.

The linter sits between compilation and elaboration: it reads the
facts the attribute-grammar front end already computed (declaration
tables, generated models) and checks design rules whose violations
otherwise surface only at simulation time — or never.  Findings are
ordinary :mod:`repro.diag` diagnostics, so rendering (caret text,
JSON lines, SARIF 2.1.0 with a populated rules catalog), ``-Werror``
promotion, and metrics counting all come for free.

Entry points:

* :class:`LintEngine` — the library API (``repro lint`` and the
  build driver's ``--lint`` both call it);
* :data:`REGISTRY` / :func:`register` — the pluggable rule registry;
* :func:`extract_unit_facts` — the rule-agnostic dataflow extractor;
* baselines: :func:`load_baseline` / :func:`write_baseline` /
  :func:`apply_baseline` (schema ``repro-lint-baseline/1``).
"""

from .engine import (
    BASELINE_SCHEMA,
    LintEngine,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .facts import (
    InstanceFact,
    ObjectFact,
    ProcessFact,
    UnitFacts,
    WaitFact,
    extract_unit_facts,
)
from .rules import REGISTRY, LintContext, Rule, all_rules, register

__all__ = [
    "BASELINE_SCHEMA",
    "InstanceFact",
    "LintContext",
    "LintEngine",
    "ObjectFact",
    "ProcessFact",
    "REGISTRY",
    "Rule",
    "UnitFacts",
    "WaitFact",
    "all_rules",
    "apply_baseline",
    "extract_unit_facts",
    "load_baseline",
    "register",
    "write_baseline",
]
