"""Flattened whole-design dataflow graph over an elaborated design.

The per-unit linter (:mod:`repro.analysis.rules`) sees one compiled
unit at a time, so a loop closed through two instance port maps, a
race between drivers living in different instances, or logic that
dies only after a generic folds to a constant are all invisible to
it.  This module builds the missing view: it correlates the
*elaboration trace* (:class:`repro.vhdl.elaborate.DesignRecord`, one
per elaborated architecture/package) with the *static facts* of the
same units (:func:`repro.analysis.facts.extract_unit_facts`) to
produce a flattened signal/process graph whose nodes are the
elaborated :class:`~repro.sim.signals.Signal` and
:class:`~repro.sim.process.Process` objects themselves.

Port maps need no special resolution pass: ``ctx.port`` returns the
*parent's actual* signal when the instantiation bound one, so a
child's recorded port and the parent's recorded local are literally
the same object, and reads/drives expressed against either collapse
onto one graph node — the CVC-style "flatten first, then analyze"
strategy (PAPERS.md).
"""

from ..diag import SourceSpan
from .facts import extract_unit_facts


class NetSignal:
    """One elaborated signal node in the flattened graph."""

    __slots__ = ("signal", "index", "readers", "drivers", "is_top_port")

    def __init__(self, signal, index):
        self.signal = signal
        self.index = index
        self.readers = []      # NetProcess that read/wait/sense it
        self.drivers = []      # NetDrive sites targeting it
        #: Port of the top-level entity left unbound by any port map:
        #: externally observable, so never dead and never constant.
        self.is_top_port = False

    @property
    def path(self):
        return self.signal.name

    @property
    def resolved(self):
        return getattr(self.signal, "resolution", None) is not None

    @property
    def decl_span(self):
        return getattr(self.signal, "decl_span", None)

    def __repr__(self):
        return "<NetSignal %s>" % self.path


class NetDrive:
    """One static drive site: (process, target, guard/delay class)."""

    __slots__ = ("proc", "target", "guarded", "zero_delay")

    def __init__(self, proc, target, guarded, zero_delay):
        self.proc = proc
        self.target = target
        self.guarded = guarded
        self.zero_delay = zero_delay

    def __repr__(self):
        return "<NetDrive %s -> %s>" % (self.proc.path,
                                        self.target.path)


class NetProcess:
    """One elaborated process node with resolved dataflow sets."""

    __slots__ = ("process", "fact", "file", "index", "reads_plain",
                 "reads_guarded", "attr_uses", "sensitivity",
                 "wait_signals", "clocks", "drives", "wait_driven",
                 "time_paced")

    def __init__(self, process, fact, file, index):
        self.process = process
        self.fact = fact
        self.file = file
        self.index = index
        self.reads_plain = set()    # NetSignal
        self.reads_guarded = set()
        self.attr_uses = set()
        self.sensitivity = set()
        self.wait_signals = set()
        self.clocks = set()         # 'EVENT-tested signals
        self.drives = []            # NetDrive, in source order
        #: no declared sensitivity list (explicit waits)
        self.wait_driven = fact.sensitivity is None
        #: reaches a timeout wait / a bare ``wait;`` — the process is
        #: paced by simulated time, not (only) by signal events, so
        #: its zero-delay drives cannot close a delta-cycle loop.
        self.time_paced = False

    @property
    def path(self):
        return self.process.name

    @property
    def label(self):
        return self.fact.label

    @property
    def decl_span(self):
        span = getattr(self.process, "decl_span", None)
        if span is not None:
            return span
        line = getattr(self.process, "decl_line", None) or \
            self.fact.line
        if line is None and self.file is None:
            return None
        return SourceSpan(file=self.file, line=line)

    @property
    def is_clocked(self):
        """Every drive guarded and at least one 'EVENT clock test."""
        return bool(self.clocks) and bool(self.drives) and \
            all(d.guarded for d in self.drives)

    @property
    def combinational(self):
        """Can an input event reach a zero-delay drive in one delta?

        True for sensitivity-list processes and for wait-driven
        processes that only ever block on signal events; a process
        that reaches a timeout or a terminal ``wait;`` is paced by
        time and exempt (stimulus/clock-generator idiom).
        """
        if self.time_paced:
            return False
        return any(not d.guarded and d.zero_delay for d in self.drives)

    def comb_inputs(self):
        """Signals whose events can re-fire this process immediately."""
        return self.reads_plain | self.sensitivity | self.wait_signals

    def __repr__(self):
        return "<NetProcess %s>" % self.path


class DesignGraph:
    """The flattened design: signal and process nodes plus edges."""

    def __init__(self, top_path=None):
        self.top_path = top_path
        self.signals = []      # NetSignal, in elaboration order
        self.processes = []    # NetProcess, in elaboration order
        self._by_id = {}       # id(Signal) -> NetSignal

    # -- construction ------------------------------------------------------

    def intern(self, signal):
        node = self._by_id.get(id(signal))
        if node is None:
            node = NetSignal(signal, len(self.signals))
            self._by_id[id(signal)] = node
            self.signals.append(node)
        return node

    def lookup(self, signal):
        return self._by_id.get(id(signal))

    # -- views -------------------------------------------------------------

    def comb_edges(self):
        """``(src, dst, proc)`` triples: a delta-cycle dataflow edge
        from every combinational input to every unguarded zero-delay
        drive target of the same process."""
        edges = []
        for proc in self.processes:
            if not proc.combinational:
                continue
            inputs = proc.comb_inputs()
            for drive in proc.drives:
                if drive.guarded or not drive.zero_delay:
                    continue
                for src in inputs:
                    edges.append((src, drive.target, proc))
        return edges

    def stats(self):
        return {
            "signals": len(self.signals),
            "processes": len(self.processes),
            "drives": sum(len(p.drives) for p in self.processes),
            "comb_edges": len(self.comb_edges()),
        }

    def __repr__(self):
        return "<DesignGraph %s: %d signals, %d processes>" % (
            self.top_path or "?", len(self.signals),
            len(self.processes))


def _facts_for(node, cache):
    key = id(node)
    facts = cache.get(key)
    if facts is None:
        facts = extract_unit_facts(node)
        cache[key] = facts
    return facts


def build_netlist(records, top_path=None):
    """Build a :class:`DesignGraph` from elaboration records.

    ``records`` is ``Elaborator.records`` (or ``Simulation.records``)
    — the per-instance elaboration trace.  Extraction is total:
    records whose units carry no generated model contribute nothing.
    """
    records = list(records)
    if top_path is None:
        for record in records:
            if record.kind == "architecture":
                top_path = record.path
                break
    graph = DesignGraph(top_path=top_path)
    facts_cache = {}

    # Package-level bindings: a package signal's generated binding
    # name (``pkg_<pkg>_s_<name>``) is globally unique and identical
    # in every unit that imports it, so one flat map resolves the
    # cross-unit references local object tables miss.
    package_bindings = {}
    for record in records:
        if record.kind != "package":
            continue
        facts = _facts_for(record.node, facts_cache)
        for py, obj in facts.objects.items():
            sig = record.signals.get(obj.name)
            if sig is not None:
                package_bindings[py] = graph.intern(sig)

    top_record = None
    for record in records:
        facts = _facts_for(record.node, facts_cache)

        local = {}
        for py, obj in facts.objects.items():
            sig = record.signals.get(obj.name)
            if sig is not None:
                local[py] = graph.intern(sig)

        if record.kind == "architecture" and top_record is None:
            top_record = record
            for py, obj in facts.objects.items():
                if obj.kind == "port" and py in local:
                    local[py].is_top_port = True

        def resolve(py):
            node = local.get(py)
            if node is None:
                node = package_bindings.get(py)
            return node

        def resolve_set(names):
            out = set()
            for py in names:
                node = resolve(py)
                if node is not None:
                    out.add(node)
            return out

        for fact in facts.processes:
            process = record.processes.get(fact.label)
            if process is None:
                continue
            net = NetProcess(process, fact, facts.file,
                             len(graph.processes))
            graph.processes.append(net)
            net.reads_plain = resolve_set(fact.plain_reads)
            net.reads_guarded = resolve_set(fact.guarded_reads)
            net.attr_uses = resolve_set(fact.attr_uses)
            net.sensitivity = resolve_set(fact.sensitivity or ())
            net.clocks = resolve_set(fact.event_guards)
            for wait in fact.waits:
                net.wait_signals |= resolve_set(wait.signals)
                if wait.has_timeout or wait.forever:
                    net.time_paced = True
            for site in fact.drive_sites:
                target = resolve(site.target)
                if target is None:
                    continue
                drive = NetDrive(net, target, site.guarded,
                                 site.zero_delay)
                net.drives.append(drive)
                target.drivers.append(drive)
            for node in (net.reads_plain | net.reads_guarded
                         | net.attr_uses | net.sensitivity
                         | net.wait_signals):
                node.readers.append(net)

    return graph
