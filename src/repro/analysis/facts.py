"""Dataflow fact extraction over compiled VIF units.

The linter runs *post-compile, pre-elaboration*: its input is the
generated Python model (``py_source``) each unit carries in the VIF
payload, plus the declaration tables (``decls`` / ``ports`` /
``instances``) the attribute grammar produced.  The generated code is
a small, regular dialect — every signal access goes through the
``rt`` runtime facade and every declaration through ``ctx`` — so a
plain :mod:`ast` walk recovers precise per-process dataflow facts:

* which signals a process *reads* (and whether the read is guarded by
  an ``'EVENT`` test — the clocked-process idiom whose data reads do
  not belong in the sensitivity list);
* which signals it *drives* (``rt.assign`` targets);
* its declared *sensitivity* set and its *wait topology* (the
  ``rt.wait`` suspensions it can reach, including wait-less infinite
  loops that can never suspend);
* the object table itself: signals, ports with modes, resolution
  presence, and the declaring source line each ``ctx.signal`` /
  ``ctx.port`` call was stamped with.

These facts are rule-agnostic; :mod:`repro.analysis.rules` consumes
them.  Extraction is total: units without generated code (entities,
pre-span payloads) produce empty fact sets rather than errors.
"""

import ast


class ObjectFact:
    """One declared signal or port in a unit's generated model."""

    __slots__ = ("name", "py", "kind", "mode", "line", "resolved")

    def __init__(self, name, py, kind, mode="", line=None,
                 resolved=False):
        self.name = name          # VHDL name ('count')
        self.py = py              # generated binding ('s_count')
        self.kind = kind          # 'signal' | 'port'
        self.mode = mode          # '' | 'in' | 'out' | 'inout' | 'buffer'
        self.line = line          # declaring source line or None
        self.resolved = resolved  # has a resolution function

    def __repr__(self):
        return "<ObjectFact %s %s%s>" % (
            self.kind, self.name, " mode=%s" % self.mode if self.mode
            else "")


class DriveFact:
    """One ``rt.assign`` site inside a process.

    The waveform literal's delay elements are classified statically:
    a site is *zero-delay* only when every element is the constant
    ``0`` — the delta-cycle assignments whose chains form
    combinational logic.  Non-constant delays are conservatively
    treated as non-zero (a computed ``after`` cannot close a
    combinational loop through the event calendar at delta time).
    """

    __slots__ = ("target", "guarded", "zero_delay")

    def __init__(self, target, guarded, zero_delay):
        self.target = target      # py name ('s_q')
        self.guarded = guarded    # under an 'EVENT test
        self.zero_delay = zero_delay

    def __repr__(self):
        return "<DriveFact %s%s%s>" % (
            self.target, " guarded" if self.guarded else "",
            " delta" if self.zero_delay else "")


class WaitFact:
    """One reachable ``rt.wait`` suspension inside a process."""

    __slots__ = ("signals", "has_condition", "has_timeout")

    def __init__(self, signals, has_condition, has_timeout):
        self.signals = list(signals)  # py names ('s_clk')
        self.has_condition = has_condition
        self.has_timeout = has_timeout

    @property
    def forever(self):
        """A bare ``wait;`` — suspends and never resumes."""
        return (not self.signals and not self.has_condition
                and not self.has_timeout)


class ProcessFact:
    """Dataflow facts for one process statement."""

    __slots__ = ("label", "py", "line", "sensitivity", "plain_reads",
                 "guarded_reads", "attr_uses", "drives", "drive_sites",
                 "event_guards", "waits", "waitless_loops",
                 "unreachable_stmts")

    def __init__(self, label, py, line=None, sensitivity=None):
        self.label = label
        self.py = py
        self.line = line
        #: declared sensitivity py-names, or None for wait-driven
        self.sensitivity = sensitivity
        self.plain_reads = set()    # rt.read outside any 'EVENT guard
        self.guarded_reads = set()  # rt.read under an 'EVENT guard
        self.attr_uses = set()      # rt.event / rt.active / last_value
        self.drives = set()         # rt.assign targets
        self.drive_sites = []       # DriveFact, in source order
        self.event_guards = set()   # signals tested with 'EVENT in ifs
        self.waits = []             # WaitFact, in source order
        self.waitless_loops = 0     # infinite loops with no suspension
        self.unreachable_stmts = 0  # statements after such a loop

    @property
    def reads(self):
        return self.plain_reads | self.guarded_reads

    @property
    def uses(self):
        """Every signal this process touches in any way."""
        used = self.reads | self.attr_uses | self.drives
        for w in self.waits:
            used.update(w.signals)
        if self.sensitivity:
            used.update(self.sensitivity)
        return used

    def __repr__(self):
        return "<ProcessFact %s>" % self.label


class InstanceFact:
    """One component instantiation and its port connections."""

    __slots__ = ("label", "component", "connections")

    def __init__(self, label, component, connections):
        self.label = label
        self.component = component
        self.connections = dict(connections)  # formal -> py name

    def __repr__(self):
        return "<InstanceFact %s:%s>" % (self.label, self.component)


class UnitFacts:
    """All extracted facts for one compiled unit."""

    __slots__ = ("kind", "name", "file", "objects", "processes",
                 "instances")

    def __init__(self, kind, name, file=None):
        self.kind = kind
        self.name = name
        self.file = file
        self.objects = {}    # py name -> ObjectFact
        self.processes = []  # ProcessFact
        self.instances = []  # InstanceFact

    def object_named(self, py):
        return self.objects.get(py)

    def __repr__(self):
        return "<UnitFacts %s %s: %d objects, %d processes>" % (
            self.kind, self.name, len(self.objects),
            len(self.processes))


# -- AST helpers --------------------------------------------------------------


def _ctx_call(node, method):
    """Is ``node`` a ``ctx.<method>(...)`` call?"""
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == method
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "ctx")


def _rt_call(node):
    """The ``rt.<attr>`` method name of a call, or None."""
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "rt"):
        return node.func.attr
    return None


def _const(node):
    return node.value if isinstance(node, ast.Constant) else None


def _kwargs(call):
    return {kw.arg: kw.value for kw in call.keywords if kw.arg}


def _name(node):
    return node.id if isinstance(node, ast.Name) else None


def _contains_event_test(node):
    """Does the expression subtree contain ``rt.event(...)``?"""
    for sub in ast.walk(node):
        if _rt_call(sub) in ("event", "active"):
            return True
    return False


def _is_true_const(node):
    """``while True:`` / ``while 1:`` — an infinite loop header."""
    value = _const(node)
    return value is not None and bool(value) and not isinstance(
        value, str)


def _suspends(node):
    """Can control leave this loop (yield, break, or return)?"""
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Yield, ast.YieldFrom, ast.Break,
                            ast.Return)):
            return True
    return False


# -- extraction ----------------------------------------------------------------


def extract_unit_facts(node, kind=None):
    """Extract :class:`UnitFacts` from one VIF unit node.

    ``node`` is any unit carrying ``py_source`` (architectures are the
    interesting case; entities and packages yield near-empty facts).
    """
    name = getattr(node, "name", "?")
    source_file = getattr(node, "source_file", "") or None
    facts = UnitFacts(kind or type(node).__name__, name,
                      file=source_file)
    py = getattr(node, "py_source", "") or ""
    if "def elaborate" not in py:
        return facts
    try:
        tree = ast.parse(py)
    except SyntaxError:
        return facts
    elab = None
    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef) and \
                stmt.name == "elaborate":
            elab = stmt
            break
    if elab is None:
        return facts

    proc_defs = {}
    for stmt in elab.body:
        _extract_top_stmt(stmt, facts, proc_defs)
    return facts


def _extract_top_stmt(stmt, facts, proc_defs):
    if isinstance(stmt, ast.FunctionDef):
        proc_defs[stmt.name] = stmt
        return
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = _name(stmt.targets[0])
        call = stmt.value
        for decl_kind in ("signal", "port"):
            if target and _ctx_call(call, decl_kind):
                kwargs = _kwargs(call)
                vhdl_name = _const(call.args[0]) if call.args else None
                facts.objects[target] = ObjectFact(
                    name=vhdl_name or target,
                    py=target,
                    kind=decl_kind,
                    mode=_const(kwargs.get("mode")) or "",
                    line=_const(kwargs.get("line")),
                    resolved="res" in kwargs,
                )
                return
        return
    if not isinstance(stmt, ast.Expr):
        return
    call = stmt.value
    if _ctx_call(call, "process"):
        kwargs = _kwargs(call)
        label = _const(call.args[0]) if call.args else "?"
        fn_name = _name(call.args[1]) if len(call.args) > 1 else None
        sensitivity = None
        sens_node = kwargs.get("sensitivity")
        if isinstance(sens_node, ast.List):
            sensitivity = [
                _name(e) for e in sens_node.elts if _name(e)]
        proc = ProcessFact(label, fn_name,
                           line=_const(kwargs.get("line")),
                           sensitivity=sensitivity)
        body_def = proc_defs.get(fn_name)
        if body_def is not None:
            _walk_stmts(body_def.body, proc, guarded=False)
        facts.processes.append(proc)
        return
    if _ctx_call(call, "instance"):
        label = _const(call.args[0]) if call.args else "?"
        comp = _const(call.args[1]) if len(call.args) > 1 else "?"
        connections = {}
        if len(call.args) > 3 and isinstance(call.args[3], ast.Dict):
            for k, v in zip(call.args[3].keys, call.args[3].values):
                formal, actual = _const(k), _name(v)
                if formal and actual:
                    connections[formal] = actual
        facts.instances.append(InstanceFact(label, comp, connections))


# -- process-body walk ---------------------------------------------------------


def _walk_stmts(stmts, proc, guarded):
    """Walk a statement list collecting facts; returns True while the
    statements remain reachable (False once an inescapable wait-less
    loop has been seen — everything after it is dead)."""
    reachable = True
    for stmt in stmts:
        if not reachable:
            proc.unreachable_stmts += 1
            continue
        reachable = _walk_stmt(stmt, proc, guarded)
    return reachable


def _walk_stmt(stmt, proc, guarded):
    """Process one statement; returns False when the statement never
    passes control to its successor."""
    if isinstance(stmt, ast.If):
        under_event = guarded or _contains_event_test(stmt.test)
        for sub in ast.walk(stmt.test):
            if _rt_call(sub) in ("event", "active") and sub.args:
                target = _name(sub.args[0])
                if target:
                    proc.event_guards.add(target)
        _collect_expr(stmt.test, proc, guarded)
        _walk_stmts(stmt.body, proc, under_event)
        _walk_stmts(stmt.orelse, proc, under_event)
        return True
    if isinstance(stmt, ast.While):
        infinite = _is_true_const(stmt.test)
        escapes = _suspends(stmt)
        if not infinite:
            _collect_expr(stmt.test, proc, guarded)
        _walk_stmts(stmt.body, proc, guarded)
        if infinite and not escapes:
            proc.waitless_loops += 1
            return False
        return not infinite or escapes
    if isinstance(stmt, ast.For):
        _collect_expr(stmt.iter, proc, guarded)
        _walk_stmts(stmt.body, proc, guarded)
        _walk_stmts(stmt.orelse, proc, guarded)
        return True
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Yield):
        wait = stmt.value.value
        if wait is not None:
            _collect_wait(wait, proc, guarded)
        return True
    # Assignments (variable updates), asserts, everything else: scan
    # the expression subtrees for runtime calls.
    _collect_expr(stmt, proc, guarded)
    return True


def _waveform_is_delta(node):
    """Is every delay element of an ``rt.assign`` waveform literal the
    constant ``0``?  Non-literal waveforms and computed delays answer
    False — a scheduled (non-delta) assignment cannot close a
    combinational loop, so unknown delays are treated as scheduled."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return False
    elements = node.elts
    if not elements:
        return False
    for element in elements:
        if not isinstance(element, (ast.Tuple, ast.List)) \
                or len(element.elts) < 2:
            return False
        if _const(element.elts[1]) != 0:
            return False
    return True


def _collect_wait(call, proc, guarded):
    """Record one ``yield rt.wait([...], cond, timeout)``."""
    if _rt_call(call) != "wait":
        _collect_expr(call, proc, guarded)
        return
    signals = []
    has_condition = False
    has_timeout = False
    args = list(call.args)
    kwargs = _kwargs(call)
    sig_node = args[0] if args else kwargs.get("signals")
    cond_node = args[1] if len(args) > 1 else kwargs.get("condition")
    time_node = args[2] if len(args) > 2 else kwargs.get("timeout")
    if isinstance(sig_node, (ast.List, ast.Tuple)):
        signals = [_name(e) for e in sig_node.elts if _name(e)]
    if cond_node is not None and _const(cond_node) is None \
            and not (isinstance(cond_node, ast.Constant)):
        has_condition = True
        _collect_expr(cond_node, proc, guarded)
    if time_node is not None and not (
            isinstance(time_node, ast.Constant)
            and time_node.value is None):
        has_timeout = True
        _collect_expr(time_node, proc, guarded)
    proc.waits.append(WaitFact(signals, has_condition, has_timeout))


def _collect_expr(node, proc, guarded):
    """Scan an expression (or statement) subtree for runtime calls."""
    for sub in ast.walk(node):
        method = _rt_call(sub)
        if method is None:
            continue
        if method == "read" and sub.args:
            target = _name(sub.args[0])
            if target:
                if guarded:
                    proc.guarded_reads.add(target)
                else:
                    proc.plain_reads.add(target)
        elif method in ("event", "active", "last_value") and sub.args:
            target = _name(sub.args[0])
            if target:
                proc.attr_uses.add(target)
        elif method == "assign" and sub.args:
            target = _name(sub.args[0])
            if target:
                proc.drives.add(target)
                proc.drive_sites.append(DriveFact(
                    target, guarded,
                    _waveform_is_delta(sub.args[1])
                    if len(sub.args) > 1 else False))
        elif method == "wait":
            # A wait expression reached outside a ``yield`` statement
            # position (defensive; the generator protocol forbids it).
            _collect_wait(sub, proc, guarded)
