"""Implicit semantic-rule completion (§4.2).

"If a required definition for some occurrence of an attribute class is
left out of the semantic rules of a production, Linguist will supply an
implicit rule" — a copy rule, a unit-element constant, or a left fold
over the declared associative merge-function.  In the paper's VHDL AG
these implicit rules were *more than half* of all semantic rules (6,363
of 8,862); benchmark E6 measures the same ratio for our grammars.
"""

from .attributes import SYN, INH
from .errors import AttributeError_
from .rules import Occurrence, SemanticRule


def _identity(x):
    return x


def complete_production(production, attr_table, rule_index):
    """Supply implicit rules for every required-but-undefined occurrence.

    ``rule_index`` maps ``(pos, attr)`` to the explicit
    :class:`SemanticRule` already written for this production; new
    implicit rules are added to it in place.  Returns the list of rules
    added.
    """
    added = []
    for occ in _required_occurrences(production, attr_table):
        if occ.key() in rule_index:
            continue
        rule = _build_implicit(production, attr_table, occ)
        rule_index[occ.key()] = rule
        added.append(rule)
    return added


def _required_occurrences(production, attr_table):
    """Occurrences a production must define: LHS synthesized attributes
    and inherited attributes of RHS nonterminal occurrences."""
    out = []
    for decl in attr_table.synthesized(production.lhs):
        out.append(Occurrence(0, decl.name, production.lhs))
    for pos, sym in enumerate(production.rhs, start=1):
        if sym.is_terminal:
            continue
        for decl in attr_table.inherited(sym):
            out.append(Occurrence(pos, decl.name, sym))
    return out


def _class_occurrences(production, attr_table, cls, positions):
    """Occurrences of attribute class ``cls`` at the given positions."""
    found = []
    for pos in positions:
        sym = production.symbols[pos]
        if sym.is_terminal:
            continue
        for decl in attr_table.of(sym).values():
            if decl.cls is cls:
                found.append(Occurrence(pos, decl.name, sym))
    return found


def _build_implicit(production, attr_table, occ):
    decl = attr_table.get(occ.symbol, occ.attr)
    cls = decl.cls
    if cls is None:
        raise AttributeError_(
            "production %s (%s) is missing a rule for %s.%s and the "
            "attribute is not in any attribute class"
            % (production.label, production, occ.symbol.name, occ.attr)
        )

    if decl.kind == INH:
        # Inherited child occurrence: copy from the LHS occurrence of
        # the same class.
        sources = _class_occurrences(production, attr_table, cls, [0])
        if not sources or not cls.copy:
            raise AttributeError_(
                "production %s (%s): cannot build an implicit copy rule "
                "for %s.%s — no LHS occurrence of class %s"
                % (production.label, production, occ.symbol.name,
                   occ.attr, cls.name)
            )
        return SemanticRule(
            production, occ, [sources[0]], _identity, implicit="copy"
        )

    # Synthesized LHS occurrence: fold the RHS occurrences of the class.
    assert decl.kind == SYN
    rhs_positions = range(1, len(production.rhs) + 1)
    sources = _class_occurrences(production, attr_table, cls, rhs_positions)
    if not sources:
        if not cls.has_unit:
            raise AttributeError_(
                "production %s (%s): no RHS occurrence of class %s to "
                "define %s.%s and the class declares no unit-element"
                % (production.label, production, cls.name,
                   occ.symbol.name, occ.attr)
            )
        unit = cls.unit
        fn = unit if callable(unit) else (lambda u=unit: u)
        return SemanticRule(production, occ, [], fn, implicit="unit")
    if len(sources) == 1 and cls.copy:
        return SemanticRule(
            production, occ, sources, _identity, implicit="copy"
        )
    merge = cls.merge
    if merge is None:
        raise AttributeError_(
            "production %s (%s): %d RHS occurrences of class %s but no "
            "merge-function to combine them for %s.%s"
            % (production.label, production, len(sources), cls.name,
               occ.symbol.name, occ.attr)
        )

    def fold(*values, _merge=merge):
        acc = values[0]
        for v in values[1:]:
            acc = _merge(acc, v)
        return acc

    return SemanticRule(production, occ, sources, fold, implicit="merge")
