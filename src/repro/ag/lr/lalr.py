"""LALR(1) lookahead computation (DeRemer & Pennello 1982).

Computes, for every (state, completed production) pair, the set of
terminals on which that reduction is valid.  The relations are:

- ``DR(p, A)`` — terminals directly readable after the nonterminal
  transition ``(p, A)``;
- ``reads`` — chained through nullable nonterminal transitions;
- ``includes`` — through right-nullable production suffixes;
- ``lookback`` — connecting reductions to the nonterminal transitions
  whose Follow sets they need.

``Read`` and ``Follow`` are least fixpoints over ``reads`` and
``includes`` respectively, solved with the digraph algorithm (an SCC
traversal that unions set values around cycles).
"""

from .grammar_ops import compute_nullable


def digraph(nodes, edges, initial):
    """Solve ``F(x) = initial(x) ∪ ⋃{F(y) : x edges y}``.

    ``edges`` maps a node to an iterable of successor nodes; ``initial``
    maps a node to its seed set.  Returns ``{node: set}``.  Nodes in a
    cycle receive the union of the whole strongly connected component,
    as required by the DeRemer–Pennello formulation.
    """
    result = {x: set(initial.get(x, ())) for x in nodes}
    n = {x: 0 for x in nodes}
    stack = []
    infinity = len(nodes) + 1

    def traverse(root):
        # Iterative Tarjan-style traversal to survive deep grammars.
        # Each frame is (node, depth-at-push, successor iterator).
        stack.append(root)
        frames = [(root, len(stack), iter(edges.get(root, ())))]
        n[root] = len(stack)
        while frames:
            node, depth, it = frames[-1]
            pushed = False
            for y in it:
                if y not in n:
                    continue
                if n[y] == 0:
                    stack.append(y)
                    n[y] = len(stack)
                    frames.append((y, len(stack), iter(edges.get(y, ()))))
                    pushed = True
                    break
                # y already visited: in-progress (low-link) or done
                # (n[y] is infinity, so min is a no-op).
                n[node] = min(n[node], n[y])
                result[node] |= result[y]
            if pushed:
                continue
            frames.pop()
            if n[node] == depth:
                # node is the root of an SCC: pop it and share the value.
                while True:
                    y = stack.pop()
                    n[y] = infinity
                    if y == node:
                        break
                    result[y] = result[node]
            if frames:
                parent = frames[-1][0]
                n[parent] = min(n[parent], n[node])
                result[parent] |= result[node]

    for x in nodes:
        if n[x] == 0:
            traverse(x)
    return result


class LALRLookaheads:
    """LALR(1) lookahead sets for an :class:`LR0Automaton`."""

    def __init__(self, automaton):
        self.automaton = automaton
        self.grammar = automaton.grammar
        self.nullable = compute_nullable(self.grammar)
        self._closures = automaton.closures()
        self._nt_transitions = self._find_nt_transitions()
        self._compute()

    def _find_nt_transitions(self):
        trans = []
        for state_i, tmap in enumerate(self.automaton.transitions):
            for sym in tmap:
                if not sym.is_terminal:
                    trans.append((state_i, sym))
        return trans

    def _compute(self):
        auto = self.automaton
        grammar = self.grammar
        nullable = self.nullable
        transitions = auto.transitions

        # DR(p, A): terminals t with a transition from goto(p, A).
        dr = {}
        for (p, a) in self._nt_transitions:
            r = transitions[p][a]
            dr[(p, a)] = {
                sym.name
                for sym in transitions[r]
                if sym.is_terminal
            }
            if grammar.productions[auto.accept_prod.index].rhs[0] is a and p == 0:
                dr[(p, a)].add(grammar.eof.name)

        # reads: (p, A) reads (r, C) iff goto(p,A)=r and C nullable.
        reads = {}
        for (p, a) in self._nt_transitions:
            r = transitions[p][a]
            succ = [
                (r, c)
                for c in transitions[r]
                if not c.is_terminal and c in nullable
            ]
            if succ:
                reads[(p, a)] = succ
        read_sets = digraph(self._nt_transitions, reads, dr)

        # includes and lookback in one pass over nonterminal transitions.
        includes = {t: [] for t in self._nt_transitions}
        lookback = {}
        for (p, a) in self._nt_transitions:
            for prod in grammar.productions_for(a):
                # Trace the RHS from state p; record includes when the
                # suffix after a nonterminal occurrence is nullable, and
                # the final state for lookback.
                state = p
                for i, sym in enumerate(prod.rhs):
                    if not sym.is_terminal and (state, sym) in includes:
                        rest = prod.rhs[i + 1 :]
                        if all(
                            (not s.is_terminal) and s in nullable
                            for s in rest
                        ):
                            includes[(state, sym)].append((p, a))
                    state = transitions[state][sym]
                lookback.setdefault((state, prod.index), []).append((p, a))

        follow_sets = digraph(self._nt_transitions, includes, read_sets)

        # LA(q, prod) = union of Follow over lookback.
        self.lookaheads = {}
        for (q, prod_i), sources in lookback.items():
            la = set()
            for src in sources:
                la |= follow_sets[src]
            self.lookaheads[(q, prod_i)] = la

    def lookahead(self, state_i, prod_index):
        """Terminal names on which ``prod_index`` may be reduced in state."""
        return self.lookaheads.get((state_i, prod_index), set())
