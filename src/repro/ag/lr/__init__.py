"""LALR(1) parser generation.

The pipeline mirrors a classic table builder:

1. :mod:`repro.ag.lr.grammar_ops` — nullable/FIRST computations.
2. :mod:`repro.ag.lr.items` — the LR(0) item-set automaton.
3. :mod:`repro.ag.lr.lalr` — LALR(1) lookaheads via the
   DeRemer–Pennello relations (``reads``/``includes``/``lookback``)
   solved with the digraph (SCC-merging) algorithm.
4. :mod:`repro.ag.lr.tables` — ACTION/GOTO tables, precedence-based
   conflict resolution, and conflict reporting (the paper's §4.1
   discussion of united-production conflicts relies on this reporting).
5. :mod:`repro.ag.lr.parser` — a table-driven driver that builds the
   parse tree the attribute evaluators decorate.
"""

from .tables import ParseTables, Conflict, build_tables
from .parser import Parser, ParseTree

__all__ = [
    "ParseTables",
    "Conflict",
    "build_tables",
    "Parser",
    "ParseTree",
]
