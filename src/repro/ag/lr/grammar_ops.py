"""Nullable and FIRST computations over a :class:`repro.ag.grammar.Grammar`."""


def compute_nullable(grammar):
    """Return the set of nullable nonterminals (fixpoint iteration)."""
    nullable = set()
    changed = True
    while changed:
        changed = False
        for prod in grammar.productions:
            if prod.lhs in nullable:
                continue
            if all(
                (not s.is_terminal) and s in nullable for s in prod.rhs
            ):
                nullable.add(prod.lhs)
                changed = True
    return nullable


def compute_first(grammar, nullable=None):
    """Return ``{symbol: frozenset(terminals)}`` FIRST sets.

    Terminals map to themselves; the fixpoint runs over productions.
    """
    if nullable is None:
        nullable = compute_nullable(grammar)
    first = {}
    for sym in grammar.symbols.values():
        first[sym] = {sym} if sym.is_terminal else set()
    changed = True
    while changed:
        changed = False
        for prod in grammar.productions:
            target = first[prod.lhs]
            before = len(target)
            for sym in prod.rhs:
                target |= first[sym]
                if sym.is_terminal or sym not in nullable:
                    break
            if len(target) != before:
                changed = True
    return {sym: frozenset(s) for sym, s in first.items()}


def first_of_sequence(symbols, first, nullable):
    """FIRST of a symbol string, plus whether the whole string is nullable."""
    result = set()
    for sym in symbols:
        result |= first[sym]
        if sym.is_terminal or sym not in nullable:
            return result, False
    return result, True
