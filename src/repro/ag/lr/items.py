"""The LR(0) item-set automaton.

Items are ``(production_index, dot_position)`` pairs; states are frozen
sets of kernel items with closures computed on demand.  The automaton is
the substrate both for SLR-style reductions and for the LALR lookahead
computation in :mod:`repro.ag.lr.lalr`.
"""

from ..grammar import START
from ..errors import GrammarError


class LR0Automaton:
    """LR(0) states and transitions for an augmented grammar."""

    def __init__(self, grammar):
        if grammar.start is None:
            raise GrammarError("grammar %r has no start symbol" % grammar.name)
        self.grammar = grammar
        # Augment: $start -> start $end is implicit; we use a distinct
        # accepting production so ACCEPT is recognizable.
        self.start_sym = grammar.nonterminal(START)
        self.accept_prod = grammar.add_production(
            "$accept", START, [grammar.start.name]
        )
        self.states = []  # list of frozenset of (prod_index, dot)
        self.transitions = []  # list of {symbol: state_index}
        self._state_index = {}
        self._build()

    # -- closure / goto ------------------------------------------------------

    def closure(self, kernel):
        """LR(0) closure of a set of items."""
        prods = self.grammar.productions
        closure = set(kernel)
        stack = list(kernel)
        added_nts = set()
        while stack:
            prod_i, dot = stack.pop()
            prod = prods[prod_i]
            if dot >= len(prod.rhs):
                continue
            sym = prod.rhs[dot]
            if sym.is_terminal or sym in added_nts:
                continue
            added_nts.add(sym)
            for p in self.grammar.productions_for(sym):
                item = (p.index, 0)
                if item not in closure:
                    closure.add(item)
                    stack.append(item)
        return closure

    def _goto_kernel(self, closure, symbol):
        prods = self.grammar.productions
        kernel = set()
        for prod_i, dot in closure:
            prod = prods[prod_i]
            if dot < len(prod.rhs) and prod.rhs[dot] is symbol:
                kernel.add((prod_i, dot + 1))
        return frozenset(kernel)

    def _build(self):
        start_kernel = frozenset({(self.accept_prod.index, 0)})
        self._state_index[start_kernel] = 0
        self.states.append(start_kernel)
        self.transitions.append({})
        work = [0]
        prods = self.grammar.productions
        while work:
            state_i = work.pop()
            closure = self.closure(self.states[state_i])
            symbols = []
            seen = set()
            for prod_i, dot in closure:
                prod = prods[prod_i]
                if dot < len(prod.rhs):
                    sym = prod.rhs[dot]
                    if sym not in seen:
                        seen.add(sym)
                        symbols.append(sym)
            # Deterministic ordering keeps state numbering stable across runs.
            symbols.sort(key=lambda s: s.index)
            for sym in symbols:
                kernel = self._goto_kernel(closure, sym)
                target = self._state_index.get(kernel)
                if target is None:
                    target = len(self.states)
                    self._state_index[kernel] = target
                    self.states.append(kernel)
                    self.transitions.append({})
                    work.append(target)
                self.transitions[state_i][sym] = target

    # -- queries -------------------------------------------------------------

    def closures(self):
        """Closure of every state, cached as a list parallel to states."""
        return [self.closure(k) for k in self.states]

    def reductions(self, closure):
        """Production indices whose items are complete in ``closure``."""
        prods = self.grammar.productions
        return [
            prod_i
            for prod_i, dot in closure
            if dot == len(prods[prod_i].rhs)
        ]

    def __len__(self):
        return len(self.states)
