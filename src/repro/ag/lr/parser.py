"""Table-driven LR parser building the tree attribute evaluation walks.

The parse tree deliberately keeps every occurrence — including
terminals — because semantic rules may reference token values
("incorporating values associated with tokens into attribute
evaluation", §4.1).  Attribute storage lives on the nodes themselves;
the evaluators in :mod:`repro.ag.evaluator` and
:mod:`repro.ag.static_eval` fill it in.
"""

from ..errors import ParseError
from ..lexer import Token
from .tables import SHIFT, REDUCE, ACCEPT


class ParseTree:
    """An inner parse-tree node: one production instance.

    ``children`` holds one entry per RHS occurrence — a nested
    :class:`ParseTree` for nonterminals or a
    :class:`~repro.ag.lexer.Token` for terminals.  ``attrs`` maps
    attribute names to computed values; ``parent``/``child_index`` wire
    the tree for inherited-attribute evaluation.
    """

    __slots__ = (
        "production",
        "children",
        "attrs",
        "parent",
        "child_index",
        "line",
    )

    def __init__(self, production, children, line=0):
        self.production = production
        self.children = children
        self.attrs = {}
        self.parent = None
        self.child_index = 0
        for i, child in enumerate(children):
            if isinstance(child, ParseTree):
                child.parent = self
                child.child_index = i + 1  # occurrence index (0 is LHS)
        self.line = line

    @property
    def symbol(self):
        return self.production.lhs

    def child_trees(self):
        """The nonterminal children, in order."""
        return [c for c in self.children if isinstance(c, ParseTree)]

    def pretty(self, indent=0):
        """Indented dump of the tree (debugging aid)."""
        pad = "  " * indent
        lines = [pad + self.production.label]
        for child in self.children:
            if isinstance(child, ParseTree):
                lines.append(child.pretty(indent + 1))
            else:
                lines.append("%s  %s %r" % (pad, child.kind, child.text))
        return "\n".join(lines)

    def count_nodes(self):
        """Number of inner nodes (used by evaluator statistics)."""
        return 1 + sum(c.count_nodes() for c in self.child_trees())

    def __repr__(self):
        return "<ParseTree %s line=%d>" % (self.production.label, self.line)


class Parser:
    """LR parser driver over compiled :class:`ParseTables`."""

    def __init__(self, tables):
        self.tables = tables
        self.grammar = tables.grammar

    def parse(self, tokens, filename="<input>"):
        """Parse a token iterable into a :class:`ParseTree`.

        ``tokens`` may be any iterable of :class:`Token` — a file
        scanner or the trivial LEF list scanner of cascaded evaluation.
        """
        action = self.tables.action
        goto = self.tables.goto
        eof_name = self.grammar.eof.name
        productions = self.grammar.productions

        stream = iter(tokens)
        state_stack = [0]
        value_stack = []

        def next_token():
            try:
                return next(stream)
            except StopIteration:
                return Token(eof_name, "", None, 0, 0)

        token = next_token()
        while True:
            state = state_stack[-1]
            act = action[state].get(token.kind)
            if act is None:
                expected = self.tables.expected_terminals(state)
                raise ParseError(
                    "unexpected %s %r (expected one of: %s)"
                    % (
                        token.kind,
                        token.text,
                        ", ".join(expected[:12]),
                    ),
                    line=token.line,
                    column=token.column,
                    file=filename,
                )
            if act[0] == SHIFT:
                state_stack.append(act[1])
                value_stack.append(token)
                token = next_token()
            elif act[0] == REDUCE:
                prod = productions[act[1]]
                n = len(prod.rhs)
                children = value_stack[len(value_stack) - n :] if n else []
                if n:
                    del value_stack[len(value_stack) - n :]
                    del state_stack[len(state_stack) - n :]
                line = _leftmost_line(children, token)
                node = ParseTree(prod, children, line)
                value_stack.append(node)
                state = state_stack[-1]
                state_stack.append(goto[state][prod.lhs.name])
            else:  # ACCEPT
                assert act[0] == ACCEPT
                # value_stack holds exactly the start symbol's tree.
                return value_stack[-1]


def _leftmost_line(children, fallback_token):
    for child in children:
        if isinstance(child, Token):
            if child.line:
                return child.line
        elif child.line:
            return child.line
    return fallback_token.line
