"""ACTION/GOTO table construction with conflict resolution and reporting.

The paper (§4.1) leans on conflict reporting: the rejected
*united-production* design "caused parsing conflicts ... keeping track
of the parsing conflicts and ensuring that they were resolved correctly
was confusing and error-prone".  :func:`build_tables` therefore records
every conflict it sees, how (or whether) precedence resolved it, and
raises :class:`~repro.ag.errors.ConflictError` only for conflicts the
declared precedences leave unresolved — unless the caller opts into
yacc-style default resolution for the ablation benchmark.
"""

from ..errors import ConflictError
from .items import LR0Automaton
from .lalr import LALRLookaheads

# Action encodings: ("shift", state), ("reduce", prod_index), ("accept",)
SHIFT = "shift"
REDUCE = "reduce"
ACCEPT = "accept"


class Conflict:
    """One shift/reduce or reduce/reduce conflict, with its resolution."""

    __slots__ = ("state", "terminal", "kind", "actions", "resolution")

    def __init__(self, state, terminal, kind, actions, resolution):
        self.state = state
        self.terminal = terminal
        self.kind = kind  # "shift/reduce" or "reduce/reduce"
        self.actions = actions
        self.resolution = resolution  # "precedence", "default", None

    def __str__(self):
        status = self.resolution or "UNRESOLVED"
        return "state %d on %r: %s [%s]" % (
            self.state,
            self.terminal,
            self.kind,
            status,
        )


class ParseTables:
    """Compiled LALR(1) tables plus the automaton they came from."""

    def __init__(self, grammar, automaton, action, goto, conflicts):
        self.grammar = grammar
        self.automaton = automaton
        self.action = action  # list of {terminal_name: action tuple}
        self.goto = goto  # list of {nonterminal_name: state}
        self.conflicts = conflicts

    @property
    def n_states(self):
        return len(self.action)

    def expected_terminals(self, state):
        """Terminal names acceptable in ``state`` (for error messages)."""
        return sorted(self.action[state])

    def describe_state(self, state_i):
        """Human-readable closure of a state (debugging aid)."""
        lines = []
        prods = self.grammar.productions
        for prod_i, dot in sorted(self.automaton.closure(
                self.automaton.states[state_i])):
            prod = prods[prod_i]
            rhs = [s.name for s in prod.rhs]
            rhs.insert(dot, ".")
            lines.append("  %s -> %s" % (prod.lhs.name, " ".join(rhs)))
        return "\n".join(lines)


def _precedence_of_production(grammar, prod):
    """yacc rule: a production's precedence is its ``prec`` override or
    the precedence of its rightmost terminal."""
    if prod.prec is not None:
        return grammar.precedence.get(prod.prec.name)
    for sym in reversed(prod.rhs):
        if sym.is_terminal and sym.name in grammar.precedence:
            return grammar.precedence[sym.name]
    return None


def build_tables(grammar, allow_conflicts=False):
    """Build LALR(1) tables for ``grammar``.

    ``allow_conflicts=True`` applies the yacc defaults (prefer shift;
    prefer the earlier production) instead of raising; the conflicts are
    still recorded on the returned tables.  The cascade-ablation bench
    (E8) uses this to count the conflicts united productions create.
    """
    automaton = LR0Automaton(grammar)
    lookaheads = LALRLookaheads(automaton)
    closures = automaton.closures()

    action = [dict() for _ in automaton.states]
    goto = [dict() for _ in automaton.states]
    conflicts = []
    accept_index = automaton.accept_prod.index

    for state_i, tmap in enumerate(automaton.transitions):
        for sym, target in tmap.items():
            if sym.is_terminal:
                action[state_i][sym.name] = (SHIFT, target)
            else:
                goto[state_i][sym.name] = target

    for state_i, closure in enumerate(closures):
        for prod_i in automaton.reductions(closure):
            if prod_i == accept_index:
                action[state_i][grammar.eof.name] = (ACCEPT,)
                continue
            la = lookaheads.lookahead(state_i, prod_i)
            for term in la:
                existing = action[state_i].get(term)
                new = (REDUCE, prod_i)
                if existing is None:
                    action[state_i][term] = new
                    continue
                chosen, conflict = _resolve(
                    grammar, state_i, term, existing, new, allow_conflicts
                )
                if conflict is not None:
                    conflicts.append(conflict)
                if chosen is not None:
                    action[state_i][term] = chosen
                elif chosen is None and existing is not None:
                    # nonassoc: make the input erroneous on this terminal.
                    del action[state_i][term]

    unresolved = [c for c in conflicts if c.resolution is None]
    if unresolved and not allow_conflicts:
        raise ConflictError(unresolved)
    return ParseTables(grammar, automaton, action, goto, conflicts)


def _resolve(grammar, state_i, term, existing, new, allow_conflicts):
    """Resolve a table collision; returns (chosen_action, Conflict|None).

    ``chosen_action`` of ``None`` means *remove* the entry (nonassoc).
    """
    if existing[0] == SHIFT and new[0] == REDUCE:
        term_prec = grammar.precedence.get(term)
        prod_prec = _precedence_of_production(
            grammar, grammar.productions[new[1]]
        )
        if term_prec is not None and prod_prec is not None:
            if prod_prec[0] > term_prec[0]:
                return new, Conflict(
                    state_i, term, "shift/reduce", (existing, new),
                    "precedence",
                )
            if prod_prec[0] < term_prec[0]:
                return existing, Conflict(
                    state_i, term, "shift/reduce", (existing, new),
                    "precedence",
                )
            # equal level: associativity decides
            assoc = term_prec[1]
            if assoc == "left":
                return new, Conflict(
                    state_i, term, "shift/reduce", (existing, new),
                    "precedence",
                )
            if assoc == "right":
                return existing, Conflict(
                    state_i, term, "shift/reduce", (existing, new),
                    "precedence",
                )
            return None, Conflict(
                state_i, term, "shift/reduce", (existing, new), "precedence"
            )
        resolution = "default" if allow_conflicts else None
        return existing, Conflict(
            state_i, term, "shift/reduce", (existing, new), resolution
        )
    if existing[0] == REDUCE and new[0] == REDUCE:
        # yacc default: earlier production wins.
        chosen = existing if existing[1] <= new[1] else new
        resolution = "default" if allow_conflicts else None
        return chosen, Conflict(
            state_i, term, "reduce/reduce", (existing, new), resolution
        )
    # shift/shift cannot happen; reduce-then-shift ordering mirrors above.
    if existing[0] == REDUCE and new[0] == SHIFT:
        chosen, conflict = _resolve(
            grammar, state_i, term, new, existing, allow_conflicts
        )
        return chosen, conflict
    return existing, None
