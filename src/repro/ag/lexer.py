"""A regex-table scanner generator.

The paper's evaluators are "fed tokens by a scanner that reads source
text from a file in the usual way" (§4.1).  :class:`LexerSpec` describes
a scanner declaratively — token rules in priority order, keywords,
skipped patterns — and :meth:`LexerSpec.build` compiles it into a
:class:`Lexer`.  The same :class:`Token` shape is used by the cascaded
expression evaluator's trivial list scanner (:mod:`repro.ag.cascade`),
so both evaluators are fed interchangeably.
"""

import re

from .errors import LexError


class Token:
    """A scanned token.

    ``kind`` is the terminal-symbol name, ``text`` the matched lexeme,
    and ``value`` an arbitrary payload.  The paper notes that Linguist
    "supports a mechanism for incorporating values associated with
    tokens into attribute evaluation" — ``value`` is that mechanism, and
    for LEF tokens it carries symbol-table entries.
    """

    __slots__ = ("kind", "text", "value", "line", "column")

    def __init__(self, kind, text, value=None, line=0, column=0):
        self.kind = kind
        self.text = text
        self.value = value if value is not None else text
        self.line = line
        self.column = column

    def __repr__(self):
        return "Token(%r, %r, line=%d)" % (self.kind, self.text, self.line)

    def __eq__(self, other):
        return (
            isinstance(other, Token)
            and self.kind == other.kind
            and self.text == other.text
            and self.value == other.value
        )

    def __hash__(self):
        return hash((self.kind, self.text))


class _Rule:
    __slots__ = ("kind", "pattern", "action")

    def __init__(self, kind, pattern, action):
        self.kind = kind
        self.pattern = pattern
        self.action = action


class LexerSpec:
    """Declarative description of a scanner.

    Rules are tried in declaration order at each input position; the
    first (not the longest) match wins, so longer literals must be
    declared before their prefixes.  ``keywords`` remaps an identifier
    rule's token kind after matching, the standard trick for reserved
    words.
    """

    def __init__(self, name="lexer"):
        self.name = name
        self._rules = []
        self._skip = []
        self._keywords = {}
        self._keyword_source = None
        self.case_insensitive_keywords = False

    def token(self, kind, pattern, action=None):
        """Declare a token rule.

        ``action(text) -> value`` converts the lexeme to the token value
        (e.g. int for numeric literals).
        """
        self._rules.append(_Rule(kind, pattern, action))
        return self

    def skip(self, pattern):
        """Declare a pattern to discard (whitespace, comments)."""
        self._skip.append(pattern)
        return self

    def keywords(self, source_kind, names, case_insensitive=False):
        """Reserve ``names``: when rule ``source_kind`` matches one of
        them, the token kind becomes the keyword's (upper-cased) name
        prefixed with ``kw_`` unless the name is already a valid kind."""
        self._keyword_source = source_kind
        self.case_insensitive_keywords = case_insensitive
        for name in names:
            key = name.lower() if case_insensitive else name
            self._keywords[key] = "kw_" + name.lower()
        return self

    def keyword_kinds(self):
        """Terminal names produced by the keyword mapping."""
        return sorted(set(self._keywords.values()))

    def token_kinds(self):
        """All terminal names this lexer can produce."""
        kinds = [r.kind for r in self._rules]
        return sorted(set(kinds) | set(self._keywords.values()))

    def build(self):
        """Compile the specification into a :class:`Lexer`."""
        return Lexer(self)


class Lexer:
    """A compiled scanner.

    Uses one alternation regex with named groups per rule, preserving
    declaration-order priority via group ordering (Python's ``re``
    returns the leftmost alternative that matches).
    """

    def __init__(self, spec):
        self._spec = spec
        parts = []
        self._actions = {}
        self._group_kind = {}
        for i, rule in enumerate(spec._rules):
            group = "g%d" % i
            parts.append("(?P<%s>%s)" % (group, rule.pattern))
            self._group_kind[group] = rule.kind
            if rule.action is not None:
                self._actions[group] = rule.action
        self._skip_re = (
            re.compile("|".join("(?:%s)" % p for p in spec._skip))
            if spec._skip
            else None
        )
        self._token_re = re.compile("|".join(parts)) if parts else None
        self._keywords = spec._keywords
        self._keyword_source = spec._keyword_source
        self._ci = spec.case_insensitive_keywords

    def tokens(self, text, filename="<input>"):
        """Scan ``text`` and yield :class:`Token` objects."""
        pos = 0
        line = 1
        line_start = 0
        n = len(text)
        while pos < n:
            if self._skip_re is not None:
                m = self._skip_re.match(text, pos)
                if m and m.end() > pos:
                    skipped = m.group()
                    nl = skipped.count("\n")
                    if nl:
                        line += nl
                        line_start = pos + skipped.rfind("\n") + 1
                    pos = m.end()
                    continue
            if self._token_re is None:
                raise LexError("no token rules", line=line,
                               file=filename)
            m = self._token_re.match(text, pos)
            if m is None or m.end() == pos:
                snippet = text[pos : pos + 20].splitlines()[0]
                raise LexError(
                    "cannot scan %r" % snippet,
                    line=line,
                    column=pos - line_start + 1,
                    file=filename,
                )
            group = m.lastgroup
            lexeme = m.group()
            kind = self._group_kind[group]
            value = lexeme
            action = self._actions.get(group)
            if action is not None:
                value = action(lexeme)
            if kind == self._keyword_source:
                key = lexeme.lower() if self._ci else lexeme
                kw = self._keywords.get(key)
                if kw is not None:
                    kind = kw
            yield Token(kind, lexeme, value, line, pos - line_start + 1)
            nl = lexeme.count("\n")
            if nl:
                line += nl
                line_start = pos + lexeme.rfind("\n") + 1
            pos = m.end()

    def scan(self, text, filename="<input>"):
        """Scan ``text`` into a list of tokens."""
        return list(self.tokens(text, filename))


class ListScanner:
    """The trivial scanner of §4.1: pops tokens off the front of a list.

    The paper's version is literally ``X = car(L); L = cdr(L);`` — this
    is the same thing as an iterator over a Python list.
    """

    def __init__(self, token_list):
        self._tokens = list(token_list)
        self._pos = 0

    def __iter__(self):
        return self

    def __next__(self):
        if self._pos >= len(self._tokens):
            raise StopIteration
        tok = self._tokens[self._pos]
        self._pos += 1
        return tok
