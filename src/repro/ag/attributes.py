"""Attribute declarations and attribute classes.

An *attribute class* (§4.2) is "declared and instances of a class can
be associated with various symbols, just as attributes are associated
with symbols"; when a required definition is omitted, the generator
supplies an implicit rule — a copy rule, a unit-element constant, or a
fold over a declared associative merge-function.
"""

from .errors import AttributeError_

#: Attribute kinds.
SYN = "syn"
INH = "inh"

#: Pseudo-attributes of terminal occurrences, read straight off tokens.
LEXICAL_ATTRS = ("text", "value", "line", "column", "kind")


class AttributeClass:
    """A reusable attribute declaration with implicit-rule information.

    ``merge`` is the associative dyadic merge-function ``m`` and
    ``unit`` the unit-element ``u`` of §4.2 (both only meaningful for
    synthesized classes).  ``copy`` enables plain copy rules; it is on
    by default because copy rules apply to both kinds.
    """

    __slots__ = ("name", "kind", "merge", "unit", "copy")

    _UNSET = object()

    def __init__(self, name, kind, merge=None, unit=_UNSET, copy=True):
        if kind not in (SYN, INH):
            raise AttributeError_("bad attribute kind %r" % kind)
        if kind == INH and (merge is not None or unit is not self._UNSET):
            raise AttributeError_(
                "attribute class %r: merge/unit apply only to "
                "synthesized classes" % name
            )
        self.name = name
        self.kind = kind
        self.merge = merge
        self.unit = unit
        self.copy = copy

    @property
    def has_unit(self):
        return self.unit is not self._UNSET

    def __repr__(self):
        return "<AttributeClass %s %s>" % (self.name, self.kind)


class AttrDecl:
    """One attribute associated with one (nonterminal) symbol.

    ``cls`` is the :class:`AttributeClass` it instantiates, or ``None``
    for a plain attribute (which then never receives implicit rules).
    """

    __slots__ = ("name", "kind", "symbol", "cls")

    def __init__(self, name, kind, symbol, cls=None):
        if kind not in (SYN, INH):
            raise AttributeError_("bad attribute kind %r" % kind)
        self.name = name
        self.kind = kind
        self.symbol = symbol
        self.cls = cls

    def __repr__(self):
        return "<Attr %s.%s %s>" % (self.symbol.name, self.name, self.kind)


class AttrTable:
    """Attribute declarations for all symbols of one grammar."""

    def __init__(self):
        self._by_symbol = {}  # symbol name -> {attr name: AttrDecl}

    def declare(self, symbol, name, kind, cls=None):
        table = self._by_symbol.setdefault(symbol.name, {})
        existing = table.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise AttributeError_(
                    "attribute %s.%s redeclared with different kind"
                    % (symbol.name, name)
                )
            return existing
        decl = AttrDecl(name, kind, symbol, cls)
        table[name] = decl
        return decl

    def get(self, symbol, name):
        return self._by_symbol.get(symbol.name, {}).get(name)

    def of(self, symbol):
        """All declarations for ``symbol`` (name -> AttrDecl)."""
        return self._by_symbol.get(symbol.name, {})

    def synthesized(self, symbol):
        return [d for d in self.of(symbol).values() if d.kind == SYN]

    def inherited(self, symbol):
        return [d for d in self.of(symbol).values() if d.kind == INH]

    def total_attributes(self):
        """Total attribute count across all symbols (the §4.1 statistic)."""
        return sum(len(t) for t in self._by_symbol.values())
