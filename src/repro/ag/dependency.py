"""Dependency analysis over an attribute grammar.

Builds the per-production direct dependency graphs ``DP(p)`` among
attribute occurrences, then iterates the induced graphs ``IDP(p)`` /
``IDS(X)`` to a fixpoint — the *absolutely noncircular* test used by
ordered-AG systems.  The paper (§5.2) describes exactly the failure
mode this analysis diagnoses: "a change in the dependencies of a
semantic rule in one production can combine with a hitherto legal
dependency in some far removed production to produce a circularity in
the AG ... to diagnose and correct such a circularity usually requires
... the global dependency structure of the AG."

Occurrence nodes are ``(pos, attr)`` pairs; symbol-graph nodes are
attribute names.  Edges point from a dependency to its dependent
("computed before").
"""

from .errors import CircularityError


class DependencyAnalysis:
    """IDP/IDS fixpoint over one :class:`~repro.ag.spec.CompiledAG`."""

    def __init__(self, compiled):
        self.compiled = compiled
        self.grammar = compiled.grammar
        self.attr_table = compiled.attr_table
        #: production index -> {occurrence key: set of successor keys}
        self.dp = {}
        #: production index -> induced graph, same shape as dp
        self.idp = {}
        #: symbol name -> {attr: set of successor attrs}
        self.ids = {}
        self._build_dp()
        self._fixpoint()

    # -- construction ----------------------------------------------------------

    def _build_dp(self):
        for prod in self.grammar.productions:
            graph = {}
            for occ_key, rule in self.compiled.rules_of(prod).items():
                for dep in rule.deps:
                    if dep.symbol.is_terminal:
                        continue  # token attributes are always available
                    graph.setdefault(dep.key(), set()).add(occ_key)
                graph.setdefault(occ_key, set())
            self.dp[prod.index] = graph
            self.idp[prod.index] = {
                k: set(v) for k, v in graph.items()
            }
        for sym in self.grammar.nonterminals:
            self.ids[sym.name] = {
                a: set() for a in self.attr_table.of(sym)
            }

    def _fixpoint(self):
        changed = True
        while changed:
            changed = False
            for prod in self.grammar.productions:
                graph = self.idp[prod.index]
                # Induce edges from the symbol graphs into IDP(p).
                for pos, sym in enumerate(prod.symbols):
                    if sym.is_terminal:
                        continue
                    for a, succs in self.ids[sym.name].items():
                        for b in succs:
                            src, dst = (pos, a), (pos, b)
                            tgt = graph.setdefault(src, set())
                            if dst not in tgt:
                                tgt.add(dst)
                                graph.setdefault(dst, set())
                                changed = True
                # Project the transitive closure of IDP(p) back onto
                # each occurrence's symbol graph.
                closure = _transitive_closure(graph)
                for pos, sym in enumerate(prod.symbols):
                    if sym.is_terminal:
                        continue
                    symgraph = self.ids[sym.name]
                    for (p1, a), succs in closure.items():
                        if p1 != pos:
                            continue
                        for (p2, b) in succs:
                            if p2 != pos or b == a:
                                continue
                            if b not in symgraph.get(a, ()):
                                symgraph.setdefault(a, set()).add(b)
                                changed = True

    # -- queries ----------------------------------------------------------------

    def check_noncircular(self):
        """Raise :class:`CircularityError` if any induced production
        graph has a cycle (the absolutely-noncircular test; conservative
        with respect to Knuth's exact test, as in practical systems)."""
        for prod in self.grammar.productions:
            cycle = _find_cycle(self.idp[prod.index])
            if cycle is not None:
                names = [
                    "%s.%s" % (prod.symbols[pos].name, attr)
                    for pos, attr in cycle
                ]
                raise CircularityError(
                    "attribute grammar %r is (potentially) circular: "
                    "production %s (%s) induces the cycle %s"
                    % (
                        self.compiled.name,
                        prod.label,
                        prod,
                        " -> ".join(names),
                    ),
                    cycle=cycle,
                )

    def symbol_graph(self, symbol_name):
        """The induced IDS graph for one symbol (attr -> successors)."""
        return self.ids[symbol_name]


def _transitive_closure(graph):
    """Transitive closure of ``{node: set(successors)}``."""
    closure = {k: set(v) for k, v in graph.items()}
    changed = True
    while changed:
        changed = False
        for node, succs in closure.items():
            new = set()
            for s in succs:
                new |= closure.get(s, set())
            if not new <= succs:
                succs |= new
                changed = True
    return closure


def _find_cycle(graph):
    """Return one cycle in ``graph`` as a node list, or ``None``.

    Roots and successors are visited in sorted order (by ``repr``, so
    heterogeneous node keys stay comparable), which makes the
    *reported* cycle a deterministic function of the graph — the same
    circular grammar always produces the same diagnostic, independent
    of set/dict iteration order.  §5.2's point about diagnosing
    circularities presumes reproducible reports.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}

    def ordered(nodes):
        return iter(sorted(nodes, key=repr))

    for root in ordered(graph):
        if color[root] != WHITE:
            continue
        stack = [(root, ordered(graph.get(root, ())))]
        color[root] = GREY
        path = [root]
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in color:
                    continue
                if color[succ] == GREY:
                    i = path.index(succ)
                    return path[i:] + [succ]
                if color[succ] == WHITE:
                    color[succ] = GREY
                    stack.append((succ, ordered(graph.get(succ, ()))))
                    path.append(succ)
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
                path.pop()
    return None


def knuth_circularity_test(compiled):
    """Knuth's exact circularity test.

    The absolutely-noncircular test above unions induced dependencies
    per symbol, which can reject grammars no derivation tree of which
    is actually circular (§5.2's diagnosis problem).  Knuth's test
    keeps, for each nonterminal, the *set* of projected dependency
    graphs its subtrees can produce, and checks each production
    against every combination — exponential in the worst case, exact
    always.

    Returns ``None`` when no derivation tree can be circular, or a
    (production, cycle) pair describing one circular combination.
    """
    grammar = compiled.grammar
    attr_table = compiled.attr_table

    def project(graph, pos, attrs):
        closure = _transitive_closure(graph)
        edges = frozenset(
            (a, b)
            for (p1, a), succs in closure.items()
            if p1 == pos
            for (p2, b) in succs
            if p2 == pos and a != b and a in attrs and b in attrs
        )
        return edges

    # io_sets[X] = set of frozensets of (attr, attr) edges.
    io_sets = {nt.name: set() for nt in grammar.nonterminals}
    base_graphs = {}
    for prod in grammar.productions:
        graph = {}
        for occ_key, rule in compiled.rules_of(prod).items():
            graph.setdefault(occ_key, set())
            for dep in rule.deps:
                if dep.symbol.is_terminal:
                    continue
                graph.setdefault(dep.key(), set()).add(occ_key)
        base_graphs[prod.index] = graph

    changed = True
    while changed:
        changed = False
        for prod in grammar.productions:
            child_positions = [
                (pos, sym)
                for pos, sym in enumerate(prod.rhs, start=1)
                if not sym.is_terminal
            ]
            choice_sets = [
                sorted(io_sets[sym.name] | {frozenset()},
                       key=lambda s: sorted(s))
                for _, sym in child_positions
            ]
            lhs_attrs = set(attr_table.of(prod.lhs))
            for combo in _combinations(choice_sets):
                graph = {
                    k: set(v) for k, v in base_graphs[prod.index].items()
                }
                for (pos, _sym), edges in zip(child_positions, combo):
                    for a, b in edges:
                        graph.setdefault((pos, a), set()).add((pos, b))
                        graph.setdefault((pos, b), set())
                cycle = _find_cycle(graph)
                if cycle is not None:
                    return prod, cycle
                projected = project(graph, 0, lhs_attrs)
                if projected not in io_sets[prod.lhs.name]:
                    io_sets[prod.lhs.name].add(projected)
                    changed = True
    return None


def _combinations(choice_sets):
    """Cartesian product over the per-child IO-graph choices."""
    if not choice_sets:
        yield ()
        return
    head, *rest = choice_sets
    for choice in head:
        for tail in _combinations(rest):
            yield (choice,) + tail
