"""Ordered attribute-grammar analysis (Kastens 1980).

Given the induced symbol graphs from :mod:`repro.ag.dependency`, each
symbol's attributes are partitioned into alternating inherited /
synthesized sets ``A_1 .. A_2k``; visit ``i`` of a symbol instance
consumes the inherited set ``A_{2i-1}`` and produces the synthesized
set ``A_{2i}``.  The number of synthesized sets is the symbol's *visit
count* — the "max visits" statistic of the paper's §4.1 table (3 for
their VHDL AG, 4 for the expression AG).

From the partitions we derive one *visit sequence* (plan) per
production and visit: a list of EVAL and VISIT actions that the static
evaluator (:mod:`repro.ag.static_eval`) executes — the analog of the
evaluator code Linguist generates.
"""

from .attributes import SYN, INH
from .dependency import DependencyAnalysis, _transitive_closure
from .errors import NotOrderedError

#: Plan actions.
EVAL = "eval"
VISIT = "visit"


class PlanAction:
    """One action of a visit sequence."""

    __slots__ = ("op", "rule", "child_pos", "visit")

    def __init__(self, op, rule=None, child_pos=None, visit=None):
        self.op = op
        self.rule = rule
        self.child_pos = child_pos
        self.visit = visit

    def __repr__(self):
        if self.op == EVAL:
            return "<EVAL %d.%s>" % (self.rule.target.pos,
                                     self.rule.target.attr)
        return "<VISIT child=%d v=%d>" % (self.child_pos, self.visit)


class OrderedAnalysis:
    """Partitions, visit counts, and visit sequences for a compiled AG."""

    def __init__(self, compiled):
        self.compiled = compiled
        self.grammar = compiled.grammar
        self.attr_table = compiled.attr_table
        self.dependency = DependencyAnalysis(compiled)
        self.dependency.check_noncircular()
        #: symbol name -> list of (kind, [attr names]) — A_1 .. A_2k
        self.partitions = {}
        #: symbol name -> {attr: (visit number, kind)}
        self.attr_visit = {}
        #: symbol name -> visit count
        self.visits = {}
        for sym in self.grammar.nonterminals:
            self._partition_symbol(sym)
        #: production index -> list of plans, one per LHS visit
        self.plans = {}
        for prod in self.grammar.productions:
            if prod.label == "$accept":
                # The augmented production never appears in a parse
                # tree — the parser returns the start symbol's node.
                continue
            self.plans[prod.index] = self._build_plans(prod)

    @property
    def max_visits(self):
        """The §4.1 "max visits" statistic (symbols with attributes only)."""
        counts = [
            v for name, v in self.visits.items()
            if self.attr_table.of(self.grammar.symbol(name))
        ]
        return max(counts, default=1)

    # -- symbol partitioning -----------------------------------------------------

    def _partition_symbol(self, sym):
        attrs = self.attr_table.of(sym)
        if not attrs:
            self.partitions[sym.name] = [(INH, []), (SYN, [])]
            self.attr_visit[sym.name] = {}
            self.visits[sym.name] = 1
            return
        graph = _transitive_closure(self.dependency.symbol_graph(sym.name))
        remaining = set(attrs)
        parts_rev = []
        want = SYN
        empty_streak = 0
        while remaining:
            part = sorted(
                a
                for a in remaining
                if attrs[a].kind == want
                and not any(
                    b in remaining and b != a
                    for b in graph.get(a, ())
                )
            )
            if part:
                empty_streak = 0
                remaining.difference_update(part)
            else:
                empty_streak += 1
                if empty_streak >= 2:
                    raise NotOrderedError(
                        "grammar %r: attributes of symbol %r cannot be "
                        "partitioned into alternating visit sets "
                        "(remaining: %s)"
                        % (self.compiled.name, sym.name,
                           ", ".join(sorted(remaining)))
                    )
            parts_rev.append((want, part))
            want = INH if want == SYN else SYN
        parts = list(reversed(parts_rev))
        # Normalize to start with an inherited set and end synthesized.
        while parts and not parts[0][1] and parts[0][0] == SYN:
            parts.pop(0)
        if not parts or parts[0][0] == SYN:
            parts.insert(0, (INH, []))
        if parts[-1][0] == INH:
            parts.append((SYN, []))
        self.partitions[sym.name] = parts
        visit_map = {}
        for i, (kind, names) in enumerate(parts):
            visit = i // 2 + 1
            for a in names:
                visit_map[a] = (visit, kind)
        self.attr_visit[sym.name] = visit_map
        self.visits[sym.name] = len(parts) // 2

    # -- production plans -----------------------------------------------------------

    def _build_plans(self, prod):
        """Visit sequences for one production, one plan per LHS visit."""
        rules = self.compiled.rules_of(prod)
        edges = {}  # node -> set of successor nodes

        def add_edge(a, b):
            edges.setdefault(a, set()).add(b)
            edges.setdefault(b, set())

        def add_node(a):
            edges.setdefault(a, set())

        # Occurrence nodes and the production's induced dependencies.
        idp = self.dependency.idp[prod.index]
        for src, succs in idp.items():
            add_node(("a",) + src)
            for dst in succs:
                add_edge(("a",) + src, ("a",) + dst)
        for pos, sym in enumerate(prod.symbols):
            if sym.is_terminal:
                continue
            for a in self.attr_table.of(sym):
                add_node(("a", pos, a))

        # Partition-order edges per occurrence, and child-visit nodes.
        for pos, sym in enumerate(prod.symbols):
            if sym.is_terminal:
                continue
            parts = self.partitions[sym.name]
            prev_part = []
            for kind, names in parts:
                for a in names:
                    for b in prev_part:
                        add_edge(("a", pos, b), ("a", pos, a))
                if names:
                    prev_part = names
            if pos > 0:
                visit_map = self.attr_visit[sym.name]
                n_visits = self.visits[sym.name]
                for w in range(1, n_visits + 1):
                    add_node(("v", pos, w))
                    if w > 1:
                        add_edge(("v", pos, w - 1), ("v", pos, w))
                for a, (w, kind) in visit_map.items():
                    if kind == INH:
                        add_edge(("a", pos, a), ("v", pos, w))
                    else:
                        add_edge(("v", pos, w), ("a", pos, a))

        # Earliest-segment labels: LHS-inherited attributes anchor their
        # visit number; everything else takes the max over predecessors.
        lhs_visits = self.attr_visit[prod.lhs.name]
        order = _topo_order(edges, self.compiled.name, prod)
        segment = {}
        preds = {n: [] for n in edges}
        for a, succs in edges.items():
            for b in succs:
                preds[b].append(a)
        for node in order:
            v = 1
            if node[0] == "a" and node[1] == 0:
                attr = node[2]
                w, kind = lhs_visits[attr]
                if kind == INH:
                    v = w
            for p in preds[node]:
                v = max(v, segment[p])
            segment[node] = v
            if node[0] == "a" and node[1] == 0:
                attr = node[2]
                w, kind = lhs_visits[attr]
                if kind == SYN and v > w:
                    raise NotOrderedError(
                        "grammar %r: production %s cannot compute %s.%s "
                        "by visit %d (needs visit %d inputs)"
                        % (self.compiled.name, prod.label,
                           prod.lhs.name, attr, w, v)
                    )

        n_visits = self.visits[prod.lhs.name]
        plans = [[] for _ in range(n_visits)]
        attrs_of = self.attr_table
        topo_index = {node: i for i, node in enumerate(order)}
        for node in sorted(order, key=lambda n: (segment[n], topo_index[n])):
            v = segment[node]
            plan = plans[min(v, n_visits) - 1]
            if node[0] == "v":
                plan.append(
                    PlanAction(VISIT, child_pos=node[1], visit=node[2])
                )
                continue
            _, pos, attr = node
            sym = prod.symbols[pos]
            decl = attrs_of.get(sym, attr)
            needs_rule = (pos == 0 and decl.kind == SYN) or (
                pos > 0 and decl.kind == INH
            )
            if needs_rule:
                plan.append(PlanAction(EVAL, rule=rules[(pos, attr)]))
        return plans


def _topo_order(edges, grammar_name, prod):
    """Topological order of the plan graph (Kahn), stable by node key."""
    indeg = {n: 0 for n in edges}
    for a, succs in edges.items():
        for b in succs:
            indeg[b] += 1
    ready = sorted(n for n, d in indeg.items() if d == 0)
    order = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for b in sorted(edges[node]):
            indeg[b] -= 1
            if indeg[b] == 0:
                ready.append(b)
    if len(order) != len(edges):
        raise NotOrderedError(
            "grammar %r: the partition ordering induces a cycle in "
            "production %s (%s)" % (grammar_name, prod.label, prod)
        )
    return order
