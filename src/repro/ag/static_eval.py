"""Static visit-sequence evaluator for ordered AGs.

Executes the plans produced by :class:`repro.ag.ordered.OrderedAnalysis`
— the analog of the attribute-evaluator code Linguist generates.  Where
the dynamic evaluator demands attributes and discovers an order at run
time, this evaluator follows the precomputed visit sequences: visit
``i`` of a node assumes the inherited attributes of partition ``A_{2i-1}``
are already stored and leaves the synthesized attributes of ``A_{2i}``
computed.

The engine is iterative (explicit frame stack): VHDL statement lists
make trees whose depth tracks source length.
"""

from .errors import EvaluationError
from .lr.parser import ParseTree
from .ordered import EVAL, VISIT


class StaticEvaluator:
    """Evaluator driven by precomputed visit sequences."""

    def __init__(self, compiled, inherited=None, observer=None):
        self.compiled = compiled
        self.analysis = compiled.analyze()
        self.attr_table = compiled.attr_table
        self.inherited = dict(inherited or {})
        self.evaluations = 0
        #: optional :class:`repro.diag.AGObserver` counter sink
        self.observer = observer

    def goal_attributes(self, tree, goals=None):
        """Run all root visits; return the root synthesized attributes."""
        for name, value in self.inherited.items():
            tree.attrs[name] = value
        for decl in self.attr_table.inherited(tree.symbol):
            if decl.name not in tree.attrs:
                raise EvaluationError(
                    "root inherited attribute %r was not supplied "
                    "to the evaluator" % decl.name
                )
        for v in range(1, self.analysis.visits[tree.symbol.name] + 1):
            self.run_visit(tree, v)
        if goals is None:
            goals = [
                d.name for d in self.attr_table.synthesized(tree.symbol)
            ]
        return {name: tree.attrs[name] for name in goals}

    def run_visit(self, node, visit):
        """Execute visit ``visit`` of ``node`` (and nested child visits)."""
        if self.observer is not None:
            self.observer.record_visit(node.symbol)
        plans = self.analysis.plans[node.production.index]
        stack = [(node, iter(plans[visit - 1]))]
        while stack:
            cur, actions = stack[-1]
            pushed = False
            for action in actions:
                if action.op == EVAL:
                    self._apply(cur, action.rule)
                else:
                    child = cur.children[action.child_pos - 1]
                    if self.observer is not None:
                        self.observer.record_visit(child.symbol)
                    child_plans = self.analysis.plans[
                        child.production.index
                    ]
                    stack.append(
                        (child, iter(child_plans[action.visit - 1]))
                    )
                    pushed = True
                    break
            if not pushed:
                stack.pop()

    def _apply(self, owner, rule):
        values = []
        for occ in rule.deps:
            inst = owner if occ.pos == 0 else owner.children[occ.pos - 1]
            if isinstance(inst, ParseTree):
                try:
                    values.append(inst.attrs[occ.attr])
                except KeyError:
                    raise EvaluationError(
                        "visit-sequence bug: %s.%s not yet available in "
                        "production %s"
                        % (occ.symbol.name, occ.attr, rule.production.label)
                    ) from None
            else:
                values.append(getattr(inst, occ.attr))
        target = rule.target
        inst = owner if target.pos == 0 else owner.children[target.pos - 1]
        try:
            inst.attrs[target.attr] = rule.fn(*values)
        except Exception as exc:
            raise EvaluationError(
                "semantic rule for %s.%s in production %s failed: %s: %s"
                % (
                    target.symbol.name,
                    target.attr,
                    rule.production.label,
                    type(exc).__name__,
                    exc,
                )
            ) from exc
        self.evaluations += 1
        if self.observer is not None:
            self.observer.record_miss()
            self.observer.record_firing(
                rule.production, grammar=self.compiled.name)
