"""Cascaded evaluation (§4.1).

The paper's ``exprEval`` is "a new functional interface ... around the
evaluator Linguist generates for the expression AG" plus "a scanner
that reads tokens from the list of LEF tokens supplied as an argument".
:class:`SubEvaluator` is exactly that wrapper: it owns a compiled AG
and, when called with a token list and root-inherited values, parses
the list with the trivial list scanner and evaluates the grammar's goal
attributes.

Because the sub-evaluator is invoked *from semantic rules* of the
principal AG, cascading requires no support from the generator itself —
"an important aspect of this cascaded translation technique is that it
required no enhancement or modification of the translator-generating
tool".
"""

from .errors import ParseError
from .lexer import ListScanner


class SubEvaluator:
    """A separately generated evaluator callable from semantic rules."""

    def __init__(self, compiled, goals=None):
        self.compiled = compiled
        self.goals = goals
        self.invocations = 0  # once per maximal expression (§4.1)

    def __call__(self, token_list, inherited=None):
        """Parse ``token_list`` and return the goal-attribute dict.

        A :class:`ParseError` is re-raised annotated with the cascade
        grammar's name so principal-AG rules can turn it into an error
        message rather than a crash.
        """
        self.invocations += 1
        scanner = ListScanner(token_list)
        try:
            tree = self.compiled.parse(
                scanner, filename="<%s cascade>" % self.compiled.name
            )
        except ParseError:
            raise
        return self.compiled.evaluate(tree, inherited, self.goals)

    def try_call(self, token_list, inherited=None, on_error=None):
        """Like calling, but map a parse failure to ``on_error(exc)``.

        The principal VHDL AG uses this so that a malformed expression
        becomes one entry in the ``MSGS`` error list, matching the
        paper's ``exprEval`` returning "a list of error messages (the
        null list if there were no errors)".
        """
        try:
            return self(token_list, inherited)
        except ParseError as exc:
            if on_error is None:
                raise
            return on_error(exc)
