"""Grammar statistics — the §4.1 size table.

The paper reports, for its two AGs::

                     VHDL AG   expr AG
    productions        503       160
    symbols            355       101
    attributes        3509       446
    rules(implicit)   8862(6363) 2132(1061)
    max visits           3         4

:func:`grammar_statistics` computes the same row for any compiled AG.
"""

from .errors import NotOrderedError, CircularityError
from .grammar import START


class GrammarStatistics:
    """One grammar's row of the §4.1 table."""

    def __init__(self, name, productions, symbols, attributes,
                 rules, implicit_rules, max_visits):
        self.name = name
        self.productions = productions
        self.symbols = symbols
        self.attributes = attributes
        self.rules = rules
        self.implicit_rules = implicit_rules
        self.max_visits = max_visits

    @property
    def implicit_fraction(self):
        if self.rules == 0:
            return 0.0
        return self.implicit_rules / self.rules

    def as_dict(self):
        return {
            "name": self.name,
            "productions": self.productions,
            "symbols": self.symbols,
            "attributes": self.attributes,
            "rules": self.rules,
            "implicit_rules": self.implicit_rules,
            "max_visits": self.max_visits,
        }

    def rows(self):
        """(label, value-string) pairs in the paper's order."""
        visits = str(self.max_visits) if self.max_visits else "n/a"
        return [
            ("productions", str(self.productions)),
            ("symbols", str(self.symbols)),
            ("attributes", str(self.attributes)),
            (
                "rules(implicit)",
                "%d (%d)" % (self.rules, self.implicit_rules),
            ),
            ("max visits", visits),
        ]

    def __str__(self):
        lines = ["%-18s %s" % row for row in self.rows()]
        return "%s\n%s" % (self.name, "\n".join(lines))


def grammar_statistics(compiled):
    """Compute the statistics row for a :class:`CompiledAG`.

    ``max_visits`` falls back to ``None`` when the grammar is not an
    ordered AG (the dynamic evaluator still handles it).
    """
    grammar = compiled.grammar
    productions = sum(
        1 for p in grammar.productions if p.label != "$accept"
    )
    symbols = sum(
        1 for s in grammar.symbols.values()
        if s.name not in (grammar.eof.name, START)
    )
    attributes = compiled.attr_table.total_attributes()
    rules = compiled.n_explicit_rules + compiled.n_implicit_rules
    try:
        max_visits = compiled.analyze().max_visits
    except (NotOrderedError, CircularityError):
        max_visits = None
    return GrammarStatistics(
        compiled.name,
        productions,
        symbols,
        attributes,
        rules,
        compiled.n_implicit_rules,
        max_visits,
    )


def format_table(stats_list):
    """Format several grammar rows side by side, as in the paper."""
    labels = [label for label, _ in stats_list[0].rows()]
    header = "%-18s" % "" + "".join(
        "%14s" % s.name for s in stats_list
    )
    lines = [header]
    for i, label in enumerate(labels):
        cells = "".join("%14s" % s.rows()[i][1] for s in stats_list)
        lines.append("%-18s%s" % (label, cells))
    return "\n".join(lines)
