"""Demand-driven (dynamic) attribute evaluator.

Evaluates attribute instances over a parse tree by demand with
memoization, detecting genuinely circular instances on the fly.  The
static visit-sequence evaluator (:mod:`repro.ag.static_eval`) is the
analog of the code Linguist generates for ordered AGs; this evaluator
is the reference semantics both are tested against, and the one the
VHDL compiler uses by default (it handles any noncircular AG).

The implementation is iterative — VHDL statement lists produce trees
whose depth is proportional to source length, so recursion is not an
option.
"""

from .attributes import SYN
from .errors import EvaluationError, CircularityError
from .lr.parser import ParseTree


class DynamicEvaluator:
    """Evaluator for one compiled AG and one root-inherited valuation."""

    def __init__(self, compiled, inherited=None, observer=None):
        self.compiled = compiled
        self.attr_table = compiled.attr_table
        self.inherited = dict(inherited or {})
        self.evaluations = 0  # rule applications, for the E4 bench
        #: optional :class:`repro.diag.AGObserver` counter sink
        self.observer = observer

    # -- public API -----------------------------------------------------------

    def attribute(self, node, name):
        """Value of attribute ``name`` on (the LHS instance of) ``node``."""
        if name in node.attrs:
            if self.observer is not None:
                self.observer.record_hit()
            return node.attrs[name]
        self._force(node, name)
        return node.attrs[name]

    def goal_attributes(self, tree, goals=None):
        """Evaluate and return the root's synthesized attributes."""
        if goals is None:
            goals = [
                d.name for d in self.attr_table.synthesized(tree.symbol)
            ]
        return {name: self.attribute(tree, name) for name in goals}

    # -- engine ----------------------------------------------------------------

    def _locate_rule(self, node, name):
        """Find (rule, owner_node) defining instance ``(node, name)``."""
        decl = self.attr_table.get(node.symbol, name)
        if decl is None:
            raise EvaluationError(
                "symbol %r has no attribute %r" % (node.symbol.name, name)
            )
        if decl.kind == SYN:
            owner = node
            key = (0, name)
        else:
            owner = node.parent
            if owner is None:
                return None, None  # root inherited: supplied externally
            key = (node.child_index, name)
        rule = self.compiled.rules_of(owner.production).get(key)
        if rule is None:
            raise EvaluationError(
                "no rule defines %s.%s in production %s"
                % (node.symbol.name, name, owner.production.label)
            )
        return rule, owner

    def _dep_value(self, owner, occ):
        """Value of dependency occurrence ``occ`` in instance ``owner``.

        Returns ``(ready, value_or_instance)``: when the dependency is a
        token attribute or an already-computed attribute it is ready;
        otherwise the ``(node, attr)`` instance still to compute.
        """
        if occ.pos == 0:
            inst = owner
        else:
            inst = owner.children[occ.pos - 1]
        if not isinstance(inst, ParseTree):
            # Terminal occurrence: lexical pseudo-attribute of the token.
            return True, getattr(inst, occ.attr)
        if occ.attr in inst.attrs:
            return True, inst.attrs[occ.attr]
        return False, (inst, occ.attr)

    def _force(self, node, name):
        """Compute instance ``(node, name)`` and everything it needs."""
        stack = [(node, name)]
        on_stack = {(node, name)}
        while stack:
            cur_node, cur_name = stack[-1]
            if cur_name in cur_node.attrs:
                on_stack.discard((cur_node, cur_name))
                stack.pop()
                continue
            rule, owner = self._locate_rule(cur_node, cur_name)
            if rule is None:
                # Root inherited attribute.
                if cur_name not in self.inherited:
                    raise EvaluationError(
                        "root inherited attribute %r was not supplied "
                        "to the evaluator" % cur_name
                    )
                cur_node.attrs[cur_name] = self.inherited[cur_name]
                on_stack.discard((cur_node, cur_name))
                stack.pop()
                continue
            # Push only the FIRST unready dependency: the stack then
            # stays a pure dependency chain, so membership in
            # ``on_stack`` means "ancestor" and the cycle check is
            # sound (batched pushes would make sibling demands look
            # circular).
            values = []
            first_missing = None
            for occ in rule.deps:
                ready, v = self._dep_value(owner, occ)
                if ready:
                    values.append(v)
                elif first_missing is None:
                    first_missing = v
            if first_missing is not None:
                inst = first_missing
                if inst in on_stack:
                    cycle = _extract_cycle(stack, inst)
                    raise CircularityError(
                        "circular attribute dependency at %s.%s "
                        "(line %d): %s"
                        % (
                            inst[0].symbol.name,
                            inst[1],
                            inst[0].line,
                            " <- ".join(
                                "%s.%s" % (n.symbol.name, a)
                                for n, a in cycle
                            ),
                        ),
                        cycle=cycle,
                    )
                on_stack.add(inst)
                stack.append(inst)
                continue
            try:
                result = rule.fn(*values)
            except CircularityError:
                raise
            except Exception as exc:
                raise EvaluationError(
                    "semantic rule for %s.%s in production %s failed "
                    "(line %d): %s: %s"
                    % (
                        cur_node.symbol.name,
                        cur_name,
                        owner.production.label,
                        cur_node.line,
                        type(exc).__name__,
                        exc,
                    )
                ) from exc
            self.evaluations += 1
            if self.observer is not None:
                self.observer.record_miss()
                self.observer.record_firing(
                    owner.production, grammar=self.compiled.name)
            cur_node.attrs[cur_name] = result
            on_stack.discard((cur_node, cur_name))
            stack.pop()


def _extract_cycle(stack, instance):
    try:
        start = stack.index(instance)
    except ValueError:
        return [instance]
    return stack[start:] + [instance]


def evaluate_tree(compiled, tree, inherited=None, goals=None,
                  observer=None):
    """Convenience wrapper: evaluate ``tree`` and return goal attributes."""
    return DynamicEvaluator(
        compiled, inherited, observer=observer
    ).goal_attributes(tree, goals)
