"""Context-free grammar model underlying an attribute grammar.

Symbols and productions are the vocabulary shared by the LALR table
builder (:mod:`repro.ag.lr`), the attribute machinery
(:mod:`repro.ag.spec`), and the evaluators.  A production's right-hand
side may mention the same symbol several times; *occurrences* are
addressed positionally, with position 0 being the left-hand side, as in
the paper's ``E0 -> E1 + T`` convention.
"""

from .errors import GrammarError

#: Reserved name of the end-of-input terminal.
EOF = "$end"

#: Reserved name of the augmented start symbol added by the table builder.
START = "$start"


class Symbol:
    """A grammar symbol: terminal or nonterminal.

    Symbols are interned per :class:`Grammar`; identity comparison is
    safe within one grammar.
    """

    __slots__ = ("name", "is_terminal", "index")

    def __init__(self, name, is_terminal, index):
        self.name = name
        self.is_terminal = is_terminal
        self.index = index

    def __repr__(self):
        kind = "t" if self.is_terminal else "nt"
        return "<%s %s>" % (kind, self.name)

    def __str__(self):
        return self.name


class Production:
    """A context-free production ``lhs -> rhs``.

    ``label`` names the production for diagnostics and for attaching
    semantic rules; labels are unique within a grammar.
    """

    __slots__ = ("label", "lhs", "rhs", "index", "prec")

    def __init__(self, label, lhs, rhs, index, prec=None):
        self.label = label
        self.lhs = lhs
        self.rhs = list(rhs)
        self.index = index
        self.prec = prec  # terminal whose precedence governs this production

    @property
    def symbols(self):
        """All occurrences: position 0 is the LHS, 1..n the RHS."""
        return [self.lhs] + self.rhs

    def __len__(self):
        return len(self.rhs)

    def __repr__(self):
        return "<prod %s: %s>" % (self.label, self)

    def __str__(self):
        rhs = " ".join(s.name for s in self.rhs) if self.rhs else "<empty>"
        return "%s -> %s" % (self.lhs.name, rhs)


class Grammar:
    """A context-free grammar: interned symbols plus ordered productions."""

    def __init__(self, name="grammar"):
        self.name = name
        self.symbols = {}
        self.productions = []
        self._labels = {}
        self.start = None
        # precedence: terminal name -> (level, assoc) with assoc in
        # {"left", "right", "nonassoc"}
        self.precedence = {}
        self.eof = self._intern(EOF, True)

    # -- symbol management -------------------------------------------------

    def _intern(self, name, is_terminal):
        sym = self.symbols.get(name)
        if sym is not None:
            if sym.is_terminal != is_terminal:
                raise GrammarError(
                    "symbol %r is already declared as a %s"
                    % (name, "terminal" if sym.is_terminal else "nonterminal")
                )
            return sym
        sym = Symbol(name, is_terminal, len(self.symbols))
        self.symbols[name] = sym
        return sym

    def terminal(self, name):
        """Declare (or fetch) a terminal symbol."""
        return self._intern(name, True)

    def nonterminal(self, name):
        """Declare (or fetch) a nonterminal symbol."""
        return self._intern(name, False)

    def symbol(self, name):
        """Fetch a declared symbol by name."""
        try:
            return self.symbols[name]
        except KeyError:
            raise GrammarError("unknown symbol %r" % name) from None

    @property
    def terminals(self):
        return [s for s in self.symbols.values() if s.is_terminal]

    @property
    def nonterminals(self):
        return [s for s in self.symbols.values() if not s.is_terminal]

    # -- productions --------------------------------------------------------

    def add_production(self, label, lhs_name, rhs_names, prec=None):
        """Add ``lhs -> rhs``.  Unknown RHS names are declared as
        nonterminals (forward references are natural when writing a
        grammar top-down); :meth:`check` flags any that never gain
        productions.  The :class:`~repro.ag.spec.AGSpec` layer is
        stricter and validates names before calling this."""
        if label in self._labels:
            raise GrammarError("duplicate production label %r" % label)
        lhs = self.nonterminal(lhs_name)
        rhs = [
            self.symbols[n] if n in self.symbols else self.nonterminal(n)
            for n in rhs_names
        ]
        prec_sym = self.symbol(prec) if prec is not None else None
        prod = Production(label, lhs, rhs, len(self.productions), prec_sym)
        self.productions.append(prod)
        self._labels[label] = prod
        if self.start is None:
            self.start = lhs
        return prod

    def production(self, label):
        """Fetch a production by label."""
        try:
            return self._labels[label]
        except KeyError:
            raise GrammarError("unknown production label %r" % label) from None

    def productions_for(self, nonterminal):
        """All productions whose LHS is ``nonterminal``."""
        return [p for p in self.productions if p.lhs is nonterminal]

    def set_start(self, name):
        self.start = self.nonterminal(name)

    def set_precedence(self, assoc, *terminal_names, level=None):
        """Assign one precedence level to the given terminals.

        Levels increase with each call unless ``level`` is given, matching
        the familiar yacc ``%left``/``%right`` convention.
        """
        if assoc not in ("left", "right", "nonassoc"):
            raise GrammarError("bad associativity %r" % assoc)
        if level is None:
            level = 1 + max(
                (lv for lv, _ in self.precedence.values()), default=0
            )
        for name in terminal_names:
            self.terminal(name)
            self.precedence[name] = (level, assoc)

    # -- sanity -------------------------------------------------------------

    def check(self):
        """Verify every nonterminal is productive and reachable.

        Returns a list of warning strings rather than raising, because a
        grammar under construction legitimately passes through such
        states; the table builder raises on a missing start symbol.
        """
        warnings = []
        if self.start is None:
            warnings.append("grammar has no productions")
            return warnings
        defined = {p.lhs for p in self.productions}
        for nt in self.nonterminals:
            if nt.name != START and nt not in defined:
                warnings.append("nonterminal %r has no productions" % nt.name)
        reachable = {self.start}
        frontier = [self.start]
        while frontier:
            sym = frontier.pop()
            for prod in self.productions_for(sym):
                for s in prod.rhs:
                    if not s.is_terminal and s not in reachable:
                        reachable.add(s)
                        frontier.append(s)
        for nt in self.nonterminals:
            if nt.name != START and nt not in reachable:
                warnings.append("nonterminal %r is unreachable" % nt.name)
        return warnings
