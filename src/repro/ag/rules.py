"""Semantic rules and attribute-occurrence references.

A rule defines one attribute occurrence of one production from other
occurrences of the same production.  Occurrences are written
``"sym.ATTR"`` where ``sym`` names an occurrence of the production: the
plain symbol name when it occurs once, or ``name0``, ``name1``, ...
(position 0 being the LHS, as in the paper's ``E0 -> E1 + T`` style)
when a symbol occurs several times.
"""

from .attributes import LEXICAL_ATTRS, SYN, INH
from .errors import AttributeError_


class Occurrence:
    """A resolved attribute occurrence: (position, attribute name).

    Position 0 is the LHS; positions 1..n are RHS occurrences.
    """

    __slots__ = ("pos", "attr", "symbol")

    def __init__(self, pos, attr, symbol):
        self.pos = pos
        self.attr = attr
        self.symbol = symbol

    def key(self):
        return (self.pos, self.attr)

    def __repr__(self):
        return "<Occ %d:%s.%s>" % (self.pos, self.symbol.name, self.attr)


def occurrence_names(production):
    """Map occurrence names to positions for ``production``.

    Every occurrence always answers to ``nameK`` (K counted over the
    full symbol list, LHS included); unique symbols also answer to
    their plain name.
    """
    symbols = production.symbols
    counts = {}
    for sym in symbols:
        counts[sym.name] = counts.get(sym.name, 0) + 1
    names = {}
    seen = {}
    for pos, sym in enumerate(symbols):
        k = seen.get(sym.name, 0)
        seen[sym.name] = k + 1
        names["%s%d" % (sym.name, k)] = pos
        if counts[sym.name] == 1:
            names[sym.name] = pos
    return names


def resolve_ref(production, ref, attr_table):
    """Resolve ``"sym.ATTR"`` to an :class:`Occurrence`.

    Terminal occurrences expose only the lexical pseudo-attributes
    (``text``, ``value``, ``line``, ``column``, ``kind``).
    """
    try:
        occ_name, attr = ref.split(".", 1)
    except ValueError:
        raise AttributeError_(
            "bad attribute reference %r in production %s "
            "(expected 'sym.ATTR')" % (ref, production.label)
        ) from None
    names = occurrence_names(production)
    pos = names.get(occ_name)
    if pos is None:
        raise AttributeError_(
            "no occurrence %r in production %s (%s); have: %s"
            % (occ_name, production.label, production,
               ", ".join(sorted(names)))
        )
    symbol = production.symbols[pos]
    if symbol.is_terminal:
        if attr not in LEXICAL_ATTRS:
            raise AttributeError_(
                "terminal occurrence %r has only lexical attributes %s, "
                "not %r (production %s)"
                % (occ_name, LEXICAL_ATTRS, attr, production.label)
            )
    else:
        if attr_table.get(symbol, attr) is None:
            raise AttributeError_(
                "symbol %r has no attribute %r (production %s)"
                % (symbol.name, attr, production.label)
            )
    return Occurrence(pos, attr, symbol)


class SemanticRule:
    """One semantic rule: ``target = fn(*deps)``.

    ``implicit`` is ``None`` for hand-written rules or one of
    ``"copy"``, ``"unit"``, ``"merge"`` for generator-supplied rules;
    the §4.1 statistics table and the E6 bench count these.
    """

    __slots__ = ("production", "target", "deps", "fn", "implicit")

    def __init__(self, production, target, deps, fn, implicit=None):
        self.production = production
        self.target = target
        self.deps = list(deps)
        self.fn = fn
        self.implicit = implicit

    def check_target(self, attr_table):
        """A rule may define a synthesized attribute of the LHS or an
        inherited attribute of an RHS nonterminal — nothing else."""
        occ = self.target
        if occ.symbol.is_terminal:
            raise AttributeError_(
                "rule in %s targets terminal occurrence %r"
                % (self.production.label, occ.attr)
            )
        decl = attr_table.get(occ.symbol, occ.attr)
        if occ.pos == 0 and decl.kind != SYN:
            raise AttributeError_(
                "rule in %s defines inherited LHS attribute %s.%s"
                % (self.production.label, occ.symbol.name, occ.attr)
            )
        if occ.pos > 0 and decl.kind != INH:
            raise AttributeError_(
                "rule in %s defines synthesized RHS attribute %s.%s"
                % (self.production.label, occ.symbol.name, occ.attr)
            )

    def __repr__(self):
        tag = " [%s]" % self.implicit if self.implicit else ""
        return "<rule %s: %d.%s%s>" % (
            self.production.label,
            self.target.pos,
            self.target.attr,
            tag,
        )
