"""The attribute-grammar specification API — our Linguist source notation.

An :class:`AGSpec` collects terminals, attributed nonterminals,
attribute classes, attribute *groups* (the macro-processor mechanism of
§4.2 used for ``ENV_ATTRS``, ``EXPR_ATTRS``, ...), and productions with
semantic rules, then :meth:`AGSpec.finish` completes the grammar with
implicit rules, builds LALR(1) tables, and returns a
:class:`CompiledAG` — the generated translator.

Example::

    g = AGSpec("sum")
    g.terminals("NUM", "PLUS")
    g.attr_class("MSGS", SYN, merge=lambda a, b: a + b, unit=())
    g.nonterminal("expr", ("val", SYN), "MSGS")
    p = g.production("expr_num", "expr -> NUM")
    p.rule("expr.val", "NUM.value")(int)
    p = g.production("expr_add", "expr -> expr0 PLUS expr1")
    ...
    compiled = g.finish()
    result = compiled.run(tokens)
"""

from .attributes import SYN, INH, AttrTable, AttributeClass
from .errors import AttributeError_, GrammarError
from .grammar import Grammar
from .implicit import complete_production
from .lr import build_tables, Parser
from .rules import SemanticRule, resolve_ref


class ProductionSpec:
    """One production under construction, with rule-attachment sugar."""

    def __init__(self, spec, production):
        self._spec = spec
        self.production = production
        self.rules = []

    def rule(self, target, *deps, fn=None):
        """Attach a semantic rule ``target = fn(*deps)``.

        Used directly (``p.rule("x.A", "y.B", fn=f)``) or as a
        decorator (``@p.rule("x.A", "y.B")``).
        """

        def attach(func):
            attr_table = self._spec.attr_table
            prod = self.production
            t = resolve_ref(prod, target, attr_table)
            d = [resolve_ref(prod, ref, attr_table) for ref in deps]
            r = SemanticRule(prod, t, d, func)
            r.check_target(attr_table)
            self.rules.append(r)
            return func

        if fn is not None:
            attach(fn)
            return self
        return attach

    def copy(self, target, source):
        """Sugar: explicit copy rule ``target = source``."""
        return self.rule(target, source, fn=lambda v: v)

    def const(self, target, value):
        """Sugar: constant rule ``target = value``."""
        return self.rule(target, fn=lambda v=value: v)


class AGSpec:
    """Builder for one attribute grammar."""

    def __init__(self, name):
        self.name = name
        self.grammar = Grammar(name)
        self.attr_table = AttrTable()
        self.classes = {}
        self.groups = {}
        self._prod_specs = []
        self._finished = None

    # -- vocabulary ----------------------------------------------------------

    def terminals(self, *names):
        for name in names:
            self.grammar.terminal(name)
        return self

    def attr_class(self, name, kind, merge=None,
                   unit=AttributeClass._UNSET, copy=True):
        """Declare an attribute class (§4.2)."""
        if name in self.classes:
            raise AttributeError_("duplicate attribute class %r" % name)
        cls = AttributeClass(name, kind, merge, unit, copy)
        self.classes[name] = cls
        return cls

    def attr_group(self, name, *members):
        """Declare an attribute *group* — the macro-processor facility
        the paper used for ``ENV_ATTRS`` etc.  Members are class names
        or ``(attr_name, kind)`` pairs; groups may nest other groups by
        name."""
        if name in self.groups:
            raise AttributeError_("duplicate attribute group %r" % name)
        self.groups[name] = list(members)
        return self

    def _expand_attr_spec(self, spec, out):
        if isinstance(spec, tuple):
            out.append(spec)
        elif spec in self.classes:
            out.append(spec)
        elif spec in self.groups:
            for member in self.groups[spec]:
                self._expand_attr_spec(member, out)
        else:
            raise AttributeError_(
                "unknown attribute class or group %r" % spec
            )

    def nonterminal(self, name, *attr_specs):
        """Declare a nonterminal with its attributes.

        Each spec is a ``(name, kind)`` pair for a plain attribute, an
        attribute-class name (the instance takes the class's name and
        kind), or an attribute-group name (expanded recursively).
        """
        sym = self.grammar.nonterminal(name)
        expanded = []
        for spec in attr_specs:
            self._expand_attr_spec(spec, expanded)
        for spec in expanded:
            if isinstance(spec, tuple):
                attr_name, kind = spec
                self.attr_table.declare(sym, attr_name, kind)
            else:
                cls = self.classes[spec]
                self.attr_table.declare(sym, cls.name, cls.kind, cls)
        return sym

    # -- productions ---------------------------------------------------------

    def production(self, label, text, prec=None):
        """Add a production from ``"lhs -> rhs1 rhs2 ..."`` text.

        Occurrence indices in ``text`` (``expr0``, ``expr1``) are
        stripped to find the symbol; they matter only in rule
        references.  An empty RHS is written ``"lhs ->"``.
        """
        lhs_name, rhs_names = _parse_production_text(label, text)
        lhs_name = self._strip_index(lhs_name)
        rhs_names = [self._strip_index(n) for n in rhs_names]
        for name in rhs_names:
            if name not in self.grammar.symbols:
                raise GrammarError(
                    "production %s: symbol %r is not declared (declare "
                    "terminals with .terminals() and nonterminals with "
                    ".nonterminal())" % (label, name)
                )
        prod = self.grammar.add_production(label, lhs_name, rhs_names, prec)
        pspec = ProductionSpec(self, prod)
        self._prod_specs.append(pspec)
        return pspec

    def _strip_index(self, name):
        """``expr1`` -> ``expr`` when ``expr`` is a known symbol."""
        if name in self.grammar.symbols:
            return name
        base = name.rstrip("0123456789")
        if base and base != name and base in self.grammar.symbols:
            return base
        return name

    def set_start(self, name):
        self.grammar.set_start(name)
        return self

    def precedence(self, assoc, *terminals):
        self.grammar.set_precedence(assoc, *terminals)
        return self

    # -- compilation ----------------------------------------------------------

    def finish(self, allow_conflicts=False):
        """Complete implicit rules, build tables, return a CompiledAG."""
        if self._finished is not None:
            return self._finished
        rule_indices = {}
        explicit = 0
        implicit = 0
        for pspec in self._prod_specs:
            index = {}
            for rule in pspec.rules:
                key = rule.target.key()
                if key in index:
                    raise AttributeError_(
                        "production %s defines %s.%s twice"
                        % (pspec.production.label,
                           rule.target.symbol.name, rule.target.attr)
                    )
                index[key] = rule
            explicit += len(index)
            added = complete_production(
                pspec.production, self.attr_table, index
            )
            implicit += len(added)
            rule_indices[pspec.production.index] = index
        tables = build_tables(self.grammar, allow_conflicts=allow_conflicts)
        # The augmented $accept production needs no rules but must be
        # present in the index for the evaluators.
        rule_indices.setdefault(tables.automaton.accept_prod.index, {})
        compiled = CompiledAG(self, tables, rule_indices, explicit, implicit)
        self._finished = compiled
        return compiled


def _parse_production_text(label, text):
    parts = text.split("->")
    if len(parts) != 2:
        raise GrammarError(
            "production %s: expected 'lhs -> rhs', got %r" % (label, text)
        )
    lhs = parts[0].strip()
    if not lhs:
        raise GrammarError("production %s: empty LHS" % label)
    rhs = parts[1].split()
    return lhs, rhs


class CompiledAG:
    """A generated translator: parser plus attribute evaluation.

    This object plays the role of the evaluator Linguist generates from
    an AG source file.  Evaluation defaults to the dynamic
    (demand-driven) evaluator; :meth:`analyze` runs the ordered-AG
    analysis and :meth:`visit_sequences` yields the static plans.
    """

    def __init__(self, spec, tables, rule_indices, explicit, implicit):
        self.spec = spec
        self.name = spec.name
        self.grammar = spec.grammar
        self.attr_table = spec.attr_table
        self.tables = tables
        self.parser = Parser(tables)
        self.rule_indices = rule_indices
        self.n_explicit_rules = explicit
        self.n_implicit_rules = implicit
        self._analysis = None

    def rules_of(self, production):
        """Rule index ``{(pos, attr): SemanticRule}`` for a production."""
        return self.rule_indices[production.index]

    def parse(self, tokens, filename="<input>"):
        return self.parser.parse(tokens, filename)

    def evaluate(self, tree, inherited=None, goals=None, observer=None):
        """Evaluate attributes over ``tree``; return the root's goal
        attributes (all root synthesized attributes by default).

        ``observer`` is an optional :class:`repro.diag.AGObserver`
        that receives rule-firing and memo-hit counters.
        """
        from .evaluator import DynamicEvaluator

        evaluator = DynamicEvaluator(self, inherited or {},
                                     observer=observer)
        return evaluator.goal_attributes(tree, goals)

    def run(self, tokens, inherited=None, goals=None, filename="<input>",
            observer=None):
        """Parse + evaluate in one step."""
        tree = self.parse(tokens, filename)
        return self.evaluate(tree, inherited, goals, observer=observer)

    def analyze(self):
        """Run (and cache) the ordered-AG analysis."""
        if self._analysis is None:
            from .ordered import OrderedAnalysis

            self._analysis = OrderedAnalysis(self)
        return self._analysis

    def statistics(self):
        """The §4.1 statistics row for this grammar."""
        from .stats import grammar_statistics

        return grammar_statistics(self)
