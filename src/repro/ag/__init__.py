"""An attribute-grammar translator-writing system.

This package plays the role the commercial Linguist(TM) system played
in the paper: from a declarative grammar-plus-attribution specification
it generates a scanner, an LALR(1) parser, and an attribute evaluator,
supplying implicit semantic rules for attribute-class occurrences and
supporting cascaded evaluation of sub-grammars.

Typical use::

    from repro.ag import AGSpec, SYN, INH

    g = AGSpec("calc")
    g.terminals("NUM", "PLUS")
    g.nonterminal("expr", ("val", SYN))
    p = g.production("expr_add", "expr -> expr0 PLUS expr1")
    p.rule("expr0.val", "expr1.val", "expr2.val",
           fn=lambda a, b: a + b)
    ...
    calc = g.finish()
    print(calc.run(tokens)["val"])
"""

from .attributes import SYN, INH, AttributeClass
from .cascade import SubEvaluator
from .errors import (
    AGError,
    AttributeError_,
    CircularityError,
    ConflictError,
    EvaluationError,
    GrammarError,
    LexError,
    NotOrderedError,
    ParseError,
)
from .evaluator import DynamicEvaluator, evaluate_tree
from .lexer import LexerSpec, Lexer, ListScanner, Token
from .ordered import OrderedAnalysis
from .spec import AGSpec, CompiledAG
from .static_eval import StaticEvaluator
from .stats import GrammarStatistics, format_table, grammar_statistics

__all__ = [
    "AGSpec",
    "AGError",
    "AttributeClass",
    "AttributeError_",
    "CircularityError",
    "CompiledAG",
    "ConflictError",
    "DynamicEvaluator",
    "EvaluationError",
    "GrammarError",
    "GrammarStatistics",
    "INH",
    "LexError",
    "Lexer",
    "LexerSpec",
    "ListScanner",
    "NotOrderedError",
    "OrderedAnalysis",
    "ParseError",
    "StaticEvaluator",
    "SubEvaluator",
    "SYN",
    "Token",
    "evaluate_tree",
    "format_table",
    "grammar_statistics",
]
