"""Error types for the attribute-grammar translator-writing system."""


class AGError(Exception):
    """Base class for all errors raised by :mod:`repro.ag`."""


class GrammarError(AGError):
    """A malformed grammar specification (unknown symbol, bad production)."""


class AttributeError_(AGError):
    """A malformed attribute declaration or semantic-rule reference.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class ConflictError(AGError):
    """An unresolved LALR(1) parsing conflict.

    Carries the list of :class:`repro.ag.lr.tables.Conflict` records so
    callers (and the cascade-ablation benchmark) can inspect them.
    """

    def __init__(self, conflicts):
        self.conflicts = list(conflicts)
        lines = [str(c) for c in self.conflicts[:10]]
        more = len(self.conflicts) - len(lines)
        if more > 0:
            lines.append("... and %d more" % more)
        super().__init__(
            "%d unresolved parsing conflicts:\n%s"
            % (len(self.conflicts), "\n".join(lines))
        )


class CircularityError(AGError):
    """The attribute grammar is circular.

    The paper (§5.2) notes that a change in one production can combine
    with a far-removed dependency to produce a circularity; the error
    message therefore includes the cycle found.
    """

    def __init__(self, message, cycle=None):
        super().__init__(message)
        self.cycle = cycle or []


class NotOrderedError(AGError):
    """The AG is noncircular but not an ordered AG (Kastens' OAG test)."""


class ParseError(AGError):
    """Input text rejected by a generated parser.

    Carries a full source anchor — ``file``, ``line``, ``column`` —
    so multi-file compiles can attribute the error, and keeps the
    unprefixed text in ``raw_message`` for structured-diagnostic
    conversion (:meth:`repro.diag.DiagnosticEngine.add_exception`).
    """

    def __init__(self, message, line=None, column=None, file=None):
        self.line = line
        self.column = column
        self.file = file
        self.raw_message = message
        if line is not None:
            if file is not None:
                where = "%s:%s" % (file, line)
                if column is not None:
                    where += ":%s" % column
                message = "%s: %s" % (where, message)
            else:
                message = "line %s: %s" % (line, message)
        elif file is not None:
            message = "%s: %s" % (file, message)
        super().__init__(message)


class LexError(ParseError):
    """Input text rejected by a generated scanner."""


class EvaluationError(AGError):
    """A semantic rule raised, or demanded an attribute cyclically."""
