"""VIF — the VHDL Intermediate Format (§2.2, §4.3).

"Our compiler supports a machine-readable intermediate language that is
generated for each separately-compilable unit and read in when that
unit is referenced from another. ... The structure of the VIF is
described in a special-purpose, declarative notation that is read by
yet another special-purpose program that generates declarations for
this data, and generates C code that manipulates the VIF."

The pieces, mirroring that architecture:

- ``schema.vif`` — the declarative notation describing every node kind.
- :mod:`repro.vif.schema_lang` — the processor for that notation,
  itself written as an attribute grammar over :mod:`repro.ag` (the
  paper's footnote: "this program is also written as an AG ... when one
  receives a hammer, one begins to see the world as a nail").
- :mod:`repro.vif.generator` — generates the Python source for node
  class declarations and the per-kind manipulation tables.
- :mod:`repro.vif.nodes` — loads the schema, generates and executes
  that source, and exposes the node classes.
- :mod:`repro.vif.io` — writes VIF to disk, reads it back *resolving
  nested foreign references*, and produces the human-readable dump.

In this compiler, as in the paper's, the VIF **is** the symbol table:
environment bindings point at VIF nodes, and "once built, the VIF can
not be changed".
"""

from .core import Node, VIFError
from .io import VIFReader, VIFWriter, dump_unit

__all__ = ["Node", "VIFError", "VIFReader", "VIFWriter", "dump_unit"]
