"""VIF serialization: write, read (resolving nested foreign
references), and the human-readable dump.

A unit's VIF is a node table plus named roots.  Nodes reachable from
the roots that do not yet belong to a unit are *owned* by the unit
being written; nodes that already belong elsewhere are written as
foreign references ``(library, unit, id)`` — the reader resolves those
by loading the owning unit, recursively ("reads the VIF from disk,
resolving any nested foreign references").  Once built and written, VIF
is never mutated; recompiling a unit builds fresh nodes.
"""

import json

from .core import VIFError
from . import nodes as _nodes

FORMAT = "VIF-1"


def unit_depends(payload):
    """The dependency metadata a payload carries: the sorted
    ``(library, unit)`` pairs the writer recorded whenever it encoded
    a foreign reference.  This is the ground truth the incremental
    build system's dependency graph is harvested from."""
    return [tuple(d) for d in payload.get("depends", [])]


class VIFWriter:
    """Serializes one unit's roots into a JSON-able dict."""

    def __init__(self, library, unit):
        self.library = library
        self.unit = unit
        self._ids = {}
        self._order = []
        self._depends = set()

    def write(self, roots):
        """Encode ``roots`` (name -> node); returns the unit payload."""
        registry = _nodes.registry()
        for node in roots.values():
            self._discover(node)
        encoded_nodes = []
        for node in self._order:
            kind = node.VIF_KIND
            if kind not in registry:
                raise VIFError("node kind %r is not in the schema" % kind)
            write_fn = registry[kind][2]
            encoded_nodes.append([kind, write_fn(node, self._encode)])
        payload = {
            "format": FORMAT,
            "library": self.library,
            "unit": self.unit,
            "roots": {
                name: self._encode(node, "ref")
                for name, node in roots.items()
            },
            "nodes": encoded_nodes,
            "depends": sorted(self._depends),
        }
        # Ownership is recorded only after a fully successful encode.
        for i, node in enumerate(self._order):
            node._vif_home = (self.library, self.unit, i)
        try:
            json.dumps(payload)
        except (TypeError, ValueError) as exc:
            raise VIFError(
                "unit %s.%s contains non-serializable data: %s"
                % (self.library, self.unit, exc)
            ) from exc
        return payload

    @property
    def depends(self):
        """The ``(library, unit)`` pairs discovered so far (the same
        set the payload carries under ``"depends"``)."""
        return sorted(self._depends)

    @property
    def node_table(self):
        """The owned nodes in id order (index == ``_vif_home`` id).
        Lets a reader be seeded with the *original* objects so foreign
        references from freshly loaded units resolve to them instead
        of to materialized copies — identity, not equality."""
        return list(self._order)

    # -- traversal ---------------------------------------------------------

    def _is_foreign(self, node):
        home = node._vif_home
        return home is not None and (home[0], home[1]) != (
            self.library,
            self.unit,
        )

    def _discover(self, node):
        if node is None or self._is_foreign(node):
            return
        if id(node) in self._ids:
            return
        self._ids[id(node)] = len(self._order)
        self._order.append(node)
        for field, value in node.vif_fields():
            if field.ftype == "ref" and value is not None:
                self._discover(value)
            elif field.ftype == "list":
                for item in value:
                    self._discover(item)

    def _encode(self, value, ftype):
        if ftype in ("str", "int", "bool", "float", "data"):
            return value
        if ftype == "ref":
            if value is None:
                return None
            if self._is_foreign(value):
                lib, unit, node_id = value._vif_home
                self._depends.add((lib, unit))
                return {"$f": [lib, unit, node_id]}
            return {"$r": self._ids[id(value)]}
        if ftype == "list":
            return [self._encode(item, "ref") for item in value]
        raise VIFError("unknown field type %r" % ftype)


class VIFReader:
    """Reconstructs units from payloads, resolving foreign references.

    ``loader(library, unit)`` returns the stored payload for a unit;
    constructed node tables are cached so shared declarations resolve
    to the *same* node objects — foreign references are pointers, not
    copies.
    """

    def __init__(self, loader):
        self._loader = loader
        self._cache = {}  # (library, unit) -> node list
        self._roots = {}  # (library, unit) -> {name: node}

    def seed(self, library, unit, table, roots):
        """Pre-populate the cache with live node objects.

        Used for units whose canonical nodes already exist in this
        process (e.g. the STANDARD package singleton): foreign
        references into the seeded unit then resolve to those very
        objects, preserving the identity semantics the type checker
        relies on, instead of materializing divergent copies from the
        payload."""
        self._cache[(library, unit)] = list(table)
        self._roots[(library, unit)] = dict(roots)

    def read_unit(self, library, unit):
        """Roots dict for a unit, loading transitively as needed."""
        key = (library, unit)
        if key in self._roots:
            return self._roots[key]
        payload = self._loader(library, unit)
        if payload is None:
            raise VIFError("no VIF for unit %s.%s" % (library, unit))
        if payload.get("format") != FORMAT:
            raise VIFError(
                "unit %s.%s has unsupported VIF format %r"
                % (library, unit, payload.get("format"))
            )
        table = self._materialize(library, unit, payload)
        roots = {
            name: self._decode_with(table, enc, "ref")
            for name, enc in payload.get("roots", {}).items()
        }
        self._roots[key] = roots
        return roots

    def node(self, library, unit, node_id):
        """One node by its home triple."""
        key = (library, unit)
        if key not in self._cache:
            self.read_unit(library, unit)
        try:
            return self._cache[key][node_id]
        except IndexError:
            raise VIFError(
                "unit %s.%s has no node #%d" % (library, unit, node_id)
            ) from None

    def _materialize(self, library, unit, payload):
        key = (library, unit)
        if key in self._cache:
            return self._cache[key]
        registry = _nodes.registry()
        table = []
        for kind, _fields in payload["nodes"]:
            if kind not in registry:
                raise VIFError(
                    "unit %s.%s: unknown node kind %r" % (library, unit, kind)
                )
            cls = registry[kind][0]
            node = cls.__new__(cls)
            node._vif_home = (library, unit, len(table))
            table.append(node)
        # Register before filling so intra-unit (even cyclic) refs and
        # mutually dependent units resolve.
        self._cache[key] = table

        def decode(value, ftype):
            return self._decode_with(table, value, ftype)

        for node, (kind, fields) in zip(table, payload["nodes"]):
            read_fn = registry[kind][3]
            read_fn(node, fields, decode)
        return table

    def _decode_with(self, table, value, ftype):
        if ftype in ("str", "int", "bool", "float", "data"):
            return value
        if ftype == "ref":
            if value is None:
                return None
            if "$r" in value:
                return table[value["$r"]]
            if "$f" in value:
                lib, unit, node_id = value["$f"]
                return self.node(lib, unit, node_id)
            raise VIFError("malformed reference %r" % (value,))
        if ftype == "list":
            return [self._decode_with(table, item, "ref") for item in value]
        raise VIFError("unknown field type %r" % ftype)


def dump_unit(payload):
    """The human-readable form of a unit's VIF (debugging and
    documentation, as in the paper)."""
    registry = _nodes.registry()
    lines = [
        "VIF unit %s.%s" % (payload["library"], payload["unit"]),
        "roots: "
        + ", ".join(
            "%s=%s" % (name, _show_encoded(enc))
            for name, enc in payload.get("roots", {}).items()
        ),
    ]
    deps = payload.get("depends", [])
    if deps:
        lines.append(
            "depends: " + ", ".join("%s.%s" % (l, u) for l, u in deps)
        )
    for i, (kind, fields) in enumerate(payload["nodes"]):
        lines.append("n%-4d %s" % (i, kind))
        decl_fields = registry[kind][0].VIF_FIELDS
        for field in decl_fields:
            value = fields.get(field.name)
            if field.ftype == "ref":
                text = _show_encoded(value)
            elif field.ftype == "list":
                text = "[" + ", ".join(
                    _show_encoded(v) for v in (value or [])
                ) + "]"
            else:
                text = _abbreviate(repr(value))
            lines.append("      .%-12s = %s" % (field.name, text))
    return "\n".join(lines)


def _show_encoded(enc):
    if enc is None:
        return "nil"
    if "$r" in enc:
        return "@%d" % enc["$r"]
    if "$f" in enc:
        lib, unit, node_id = enc["$f"]
        return "@%s.%s#%d" % (lib, unit, node_id)
    return repr(enc)


def _abbreviate(text, limit=72):
    if len(text) <= limit:
        return text
    return text[: limit - 3] + "..."
