"""VIF core: the node base class and field descriptors.

Generated node classes (see :mod:`repro.vif.generator`) derive from
:class:`Node`; each carries a ``VIF_KIND`` string and a ``VIF_FIELDS``
tuple of :class:`Field` descriptors the serialization engine consults.
"""


class VIFError(Exception):
    """Malformed schema, serialization failure, or unresolvable ref."""


#: Legal field type names in the schema notation.
FIELD_TYPES = ("str", "int", "bool", "float", "data", "ref", "list")

_DEFAULTS = {
    "str": "",
    "int": 0,
    "bool": False,
    "float": 0.0,
    "data": None,
    "ref": None,
}


class Field:
    """One typed field of a node kind."""

    __slots__ = ("name", "ftype")

    def __init__(self, name, ftype):
        if ftype not in FIELD_TYPES:
            raise VIFError("unknown VIF field type %r" % ftype)
        self.name = name
        self.ftype = ftype

    def default(self):
        if self.ftype == "list":
            return []
        return _DEFAULTS[self.ftype]

    def __repr__(self):
        return "<Field %s: %s>" % (self.name, self.ftype)


class Node:
    """Base class of all VIF nodes.

    ``_vif_home`` records where the node lives once it has been written
    to (or read from) a library: a ``(library, unit, node_id)`` triple.
    A node with a home is *foreign* to any other unit that reaches it,
    and is serialized as a foreign reference rather than inline —
    re-reading then resolves back to the owning unit's node.  This is
    how "ENV values are part of the VIF and hence are retained in the
    model library" works without ever copying a declaration.
    """

    __slots__ = ("_vif_home",)

    VIF_KIND = None
    VIF_FIELDS = ()

    def vif_fields(self):
        """(field, value) pairs in schema order."""
        return [(f, getattr(self, f.name)) for f in self.VIF_FIELDS]

    def __repr__(self):
        label = getattr(self, "name", None)
        if label:
            return "<%s %s>" % (self.VIF_KIND, label)
        return "<%s>" % self.VIF_KIND
