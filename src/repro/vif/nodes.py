"""Loads the VIF schema and provides the generated node classes.

At import time the declarative schema (``schema.vif``) is parsed by the
schema AG, the generator emits the node-declaration/manipulation module
source, and that source is executed — the Python analog of compiling
the C the paper's VIF program generated.  The resulting classes are
re-exported here (``from repro.vif.nodes import EnumType, ...``).

:func:`generated_source` returns the emitted text so benchmark E1 can
count generated lines exactly as Figure 2 does.
"""

import os

from .generator import generate_from_text

SCHEMA_PATH = os.path.join(os.path.dirname(__file__), "schema.vif")

_SOURCE = None
_NAMESPACE = None


def schema_text():
    """The declarative schema source text."""
    with open(SCHEMA_PATH) as f:
        return f.read()


def generated_source():
    """The generated node-module source (cached)."""
    global _SOURCE
    if _SOURCE is None:
        _SOURCE = generate_from_text(schema_text(), SCHEMA_PATH)
    return _SOURCE


def _load():
    global _NAMESPACE
    if _NAMESPACE is None:
        namespace = {"__name__": "repro.vif._generated"}
        code = compile(generated_source(), "<vif generated>", "exec")
        exec(code, namespace)
        _NAMESPACE = namespace
    return _NAMESPACE


def registry():
    """Kind -> (class, new, write, read, dump) for every node kind."""
    return _load()["REGISTRY"]


def node_class(kind):
    """The generated class for one node kind."""
    return registry()[kind][0]


def __getattr__(name):
    """Module-level attribute access resolves generated classes, so
    ``from repro.vif.nodes import EnumType`` works naturally."""
    ns = _load()
    if name in ns:
        return ns[name]
    raise AttributeError("module %r has no attribute %r" % (__name__, name))


def all_kinds():
    """All node kind names, in schema order."""
    return list(registry())
