"""`repro serve` — the long-lived compile-and-simulate service.

Routes (all JSON unless noted):

=====================  ======  =====================================
``/healthz``           GET     liveness probe
``/metrics``           GET     Prometheus text exposition (live)
``/stats``             GET     AG statistics (``repro stats --json``)
``/sessions``          GET     list live session ids
``/session``           POST    create/ensure a session
``/session/<id>``      DELETE  drop a session and its workspace
``/compile``           POST    batched compile into the session work
                               library (``files``, ``force``)
``/lint``              POST    in-memory lint of posted ``files`` (or
                               the session library when omitted)
``/analyze``           POST    elaborate + whole-design (RPE) rules
                               over posted ``files`` or the session
                               library (``top``, ``select``,
                               ``ignore``); the response carries the
                               ``repro-levels/1`` artifact
``/sim``               POST    elaborate + simulate (``top``,
                               ``arch``, ``until``, ``lib``)
``/trace``             GET     recent spans from the in-memory ring
                               (``?trace_id=`` filters to one tree)
=====================  ======  =====================================

Every request runs under a root span: an incoming W3C ``traceparent``
header is honored (the request root becomes a child of the caller's
span — two requests sent with the same header form one trace), a
malformed or absent one starts a fresh trace, and the response always
carries the request's own ``traceparent`` back.  Spans from the job
layer — queue waits, compile batches, fork-worker compiles, sampled
kernel timesteps — land in a bounded :class:`~repro.trace.SpanRing`
that ``GET /trace`` exposes.

The app owns one :class:`~repro.metrics.MetricsRegistry` for its whole
lifetime — ``serve_requests_total{route=,status=}``,
``serve_inflight``, ``serve_request_seconds{route=}`` histograms, and
the job/batch families from :mod:`repro.serve.jobs` — and ``/metrics``
renders it live through the same Prometheus renderer the file sinks
use.  During shutdown the app stops admitting jobs (503) while
in-flight ones drain.
"""

import asyncio
import os
import shutil
import tempfile
import time

from ..diag import Diagnostic, render_jsonl
from ..metrics import MetricsRegistry
from ..metrics.registry import SECONDS_BUCKETS
from ..trace import SpanContext, SpanRing, make_span, use
from .http import (
    HTTPError,
    HTTPServer,
    PROMETHEUS_CONTENT_TYPE,
    Response,
)
from .jobs import JobError, JobRunner
from .session import SessionError, SessionManager, resolve_reference


def error_response(status, message, diagnostics=()):
    """A structured error body: machine-readable like the success
    path, never a raw traceback.  Every error carries JSONL
    diagnostics — the ones attached to the failure when it had any,
    otherwise one synthesized ``SRV001`` record, so clients parse a
    single shape for all rejections."""
    diags = list(diagnostics)
    if not diags:
        diags = [Diagnostic("SRV001", "error", message)]
    return Response.json({
        "ok": False,
        "error": message,
        "status": status,
        "diagnostics_jsonl": render_jsonl(diags),
    }, status=status)


class ServeApp:
    """Route dispatch over sessions, jobs, and the metrics registry."""

    def __init__(self, state_dir=None, ref_library=None, workers=2,
                 registry=None, batch_window=None,
                 trace_capacity=16384):
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.trace = SpanRing(capacity=trace_capacity)
        self._owns_state_dir = state_dir is None
        # Absolute: build reports key files by absolute path, and
        # session workspaces must agree with them.
        self.state_dir = os.path.abspath(
            state_dir or tempfile.mkdtemp(prefix="repro-serve-"))
        ref = resolve_reference(ref_library) \
            if isinstance(ref_library, str) else ref_library
        self.sessions = SessionManager(
            os.path.join(self.state_dir, "sessions"), ref=ref)
        kwargs = {} if batch_window is None \
            else {"batch_window": batch_window}
        self.jobs = JobRunner(workers=workers, metrics=self.registry,
                              trace=self.trace, **kwargs)
        self.draining = False
        self._started = time.perf_counter()
        self._m_requests = self.registry.counter(
            "serve_requests_total",
            "HTTP requests by route and status")
        self._m_inflight = self.registry.gauge(
            "serve_inflight", "requests currently being handled")
        self._m_latency = self.registry.histogram(
            "serve_request_seconds",
            "request wall time by route", buckets=SECONDS_BUCKETS)
        self._m_uptime = self.registry.gauge(
            "serve_uptime_seconds",
            "seconds since the service started")

    # -- lifecycle ---------------------------------------------------------

    def warm(self):
        """Generate the translator before the first request (the
        paper's Linguist step runs before any compilation)."""
        from ..vhdl.grammar import principal_grammar

        principal_grammar()

    async def shutdown(self):
        """Stop admitting jobs, drain in-flight ones, release."""
        self.draining = True
        await self.jobs.drain()
        self.jobs.close()
        if self._owns_state_dir:
            shutil.rmtree(self.state_dir, ignore_errors=True)

    def total_requests(self):
        family = self.registry.get("serve_requests_total")
        if family is None:
            return 0
        return family.value + sum(
            child.value for child in family._children.values())

    # -- dispatch ----------------------------------------------------------

    async def handle(self, request):
        route = self._route_label(request)
        # One root span per request.  A valid incoming traceparent
        # makes this request a child of the caller's span (so a
        # client can stitch /compile + /sim into one trace by sending
        # the same header); anything malformed is silently ignored
        # and a fresh trace starts.
        remote = SpanContext.from_traceparent(
            request.headers.get("traceparent"))
        ctx = remote.child() if remote is not None else SpanContext()
        self._m_inflight.inc()
        t0 = time.perf_counter()
        ts_us = time.time() * 1e6
        try:
            with use(ctx):
                response = await self._dispatch(request)
        except HTTPError as exc:
            response = error_response(exc.status, exc.message)
        except (SessionError, JobError) as exc:
            response = error_response(
                400, str(exc), getattr(exc, "diagnostics", ()))
        except Exception as exc:  # keep the daemon alive: 500 + count
            response = error_response(
                500, "%s: %s" % (type(exc).__name__, exc))
        finally:
            self._m_inflight.dec()
        elapsed = time.perf_counter() - t0
        self._m_latency.labels(route=route).observe(
            elapsed, trace_id=ctx.trace_id)
        self._m_requests.labels(
            route=route, status=str(response.status)).inc()
        self.trace.add(make_span(
            "request", ctx, ts_us, elapsed * 1e6, cat="serve",
            route=route, method=request.method,
            status=response.status))
        response.headers.append(("traceparent", ctx.to_traceparent()))
        return response

    def _route_label(self, request):
        head = request.path.strip("/").split("/", 1)[0] or "root"
        known = ("healthz", "metrics", "stats", "session", "sessions",
                 "compile", "lint", "analyze", "sim", "trace")
        return head if head in known else "other"

    async def _dispatch(self, request):
        method, path = request.method, request.path.rstrip("/")
        if path == "" or path == "/":
            path = "/healthz" if method == "GET" else path
        if method == "GET" and path == "/healthz":
            return Response.json({
                "ok": True,
                "draining": self.draining,
                "inflight_jobs": self.jobs.active_jobs,
            })
        if method == "GET" and path == "/metrics":
            return self._metrics()
        if method == "GET" and path == "/stats":
            return self._stats()
        if method == "GET" and path == "/trace":
            return self._trace(request)
        if method == "GET" and path == "/sessions":
            return Response.json({"ok": True,
                                  "sessions": self.sessions.list()})
        if path == "/session" and method == "POST":
            body = request.json()
            ws = self._workspace(body)
            return Response.json({"ok": True, "session": ws.id},
                                 status=201)
        if path.startswith("/session/") and method == "DELETE":
            sid = path[len("/session/"):]
            try:
                self.sessions.drop(sid)
            except SessionError as exc:
                raise HTTPError(404, str(exc))
            return Response.json({"ok": True, "session": sid})
        if path == "/compile" and method == "POST":
            return await self._compile(request)
        if path == "/lint" and method == "POST":
            return await self._lint(request)
        if path == "/analyze" and method == "POST":
            return await self._analyze(request)
        if path == "/sim" and method == "POST":
            return await self._sim(request)
        if path in ("/compile", "/lint", "/analyze", "/sim",
                    "/session"):
            raise HTTPError(405, "%s does not accept %s"
                            % (path, method))
        raise HTTPError(404, "no route %s %s"
                        % (method, request.path))

    # -- route bodies ------------------------------------------------------

    def _workspace(self, body, create=True):
        sid = body.get("session") or "default"
        if not isinstance(sid, str):
            raise HTTPError(400, "'session' must be a string")
        try:
            return self.sessions.get(sid, create=create)
        except SessionError as exc:
            raise HTTPError(400, str(exc))

    def _require_up(self):
        if self.draining:
            raise HTTPError(503, "service is draining; "
                            "no new jobs accepted")

    async def _compile(self, request):
        self._require_up()
        body = request.json()
        files = body.get("files")
        if not isinstance(files, list) or not files:
            raise HTTPError(400, "'files' must be a non-empty list "
                            "of {name, text} objects")
        ws = self._workspace(body)
        result = await self.jobs.compile(
            ws, files, force=bool(body.get("force")))
        return Response.json(result)

    async def _lint(self, request):
        self._require_up()
        body = request.json()
        ws = self._workspace(body)
        files = body.get("files")
        if files is not None and not isinstance(files, list):
            raise HTTPError(400, "'files' must be a list when given")
        result = await self.jobs.lint(
            ws, files=files,
            select=body.get("select") or (),
            ignore=body.get("ignore") or ())
        return Response.json(result)

    async def _analyze(self, request):
        self._require_up()
        body = request.json()
        ws = self._workspace(body)
        files = body.get("files")
        if files is not None and not isinstance(files, list):
            raise HTTPError(400, "'files' must be a list when given")
        top = body.get("top")
        if top is not None and not isinstance(top, str):
            raise HTTPError(400, "'top' must be a string when given")
        result = await self.jobs.analyze(
            ws, files=files, top=top,
            select=body.get("select") or (),
            ignore=body.get("ignore") or ())
        return Response.json(result)

    async def _sim(self, request):
        self._require_up()
        body = request.json()
        top = body.get("top")
        if not isinstance(top, str) or not top:
            raise HTTPError(400, "'top' (an entity or configuration "
                            "name) is required")
        until = body.get("until", "1us")
        try:
            from ..cli import _parse_time

            until_fs = _parse_time(str(until))
        except (ValueError, IndexError):
            raise HTTPError(400, "bad 'until' value %r" % (until,))
        backend = body.get("backend", "event")
        if backend not in ("event", "compiled", "scan"):
            raise HTTPError(400, "bad 'backend' value %r (one of: "
                            "event, compiled, scan)" % (backend,))
        ws = self._workspace(body)
        result = await self.jobs.simulate(
            ws, top, arch=body.get("arch"), until_fs=until_fs,
            lib=body.get("lib"), backend=backend)
        return Response.json(result)

    def _trace(self, request):
        """Recent spans (newest last); ``?trace_id=`` narrows to one
        tree.  Note the handling request's own span is recorded only
        after its response is built, so a trace never contains the
        ``/trace`` fetch that read it."""
        wanted = (request.query.get("trace_id") or [None])[0]
        spans = self.trace.events(trace_id=wanted or None)
        return Response.json({
            "ok": True,
            "count": len(spans),
            "dropped": self.trace.dropped,
            "spans": spans,
        })

    def _metrics(self):
        self._m_uptime.set(
            round(time.perf_counter() - self._started, 3))
        return Response.text(self.registry.render_prometheus(),
                             content_type=PROMETHEUS_CONTENT_TYPE)

    def _stats(self):
        from ..metrics import envelope
        from ..vhdl.expr_grammar import expr_grammar
        from ..vhdl.grammar import principal_grammar

        stats = [
            principal_grammar().statistics(),
            expr_grammar().statistics(),
        ]
        return Response.json(envelope(
            "ag-stats", grammars=[s.as_dict() for s in stats]))


class ServeServer:
    """One app bound to one HTTP listener, with graceful shutdown."""

    def __init__(self, host="127.0.0.1", port=0, **app_kwargs):
        self.app = ServeApp(**app_kwargs)
        self.http = HTTPServer(self.app.handle, host=host, port=port)

    @property
    def address(self):
        return self.http.address

    @property
    def url(self):
        return "http://%s:%d" % self.http.address

    async def start(self):
        self.app.warm()
        await self.http.start()
        return self

    async def stop(self):
        """Graceful: stop accepting, let open requests finish, drain
        the job queue, release the workers."""
        self.app.draining = True
        await self.http.stop()
        await self.app.shutdown()


class BackgroundServer:
    """A server on its own thread + event loop (tests, benchmarks).

    ``with BackgroundServer() as handle: requests(handle.url)`` — the
    exit path performs the same graceful drain as SIGTERM.
    """

    def __init__(self, host="127.0.0.1", port=0, **app_kwargs):
        import threading

        self._ready = threading.Event()
        self._startup_error = None
        self._loop = None
        self.server = None

        def run():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                self.server = loop.run_until_complete(
                    ServeServer(host=host, port=port,
                                **app_kwargs).start())
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-serve", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=60)
        if self._startup_error is not None:
            raise self._startup_error

    @property
    def url(self):
        return self.server.url

    @property
    def port(self):
        return self.server.address[1]

    def stop(self, timeout=60):
        if self._loop is None or self.server is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop)
        future.result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.stop()
