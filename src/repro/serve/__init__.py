"""``repro serve`` — a long-lived concurrent compile-and-simulate
service over the design-library machinery.

The paper's virtual machine already separates compilation from a
persistent library layer with a name server (§2); this package
productionizes that separation into a daemon: an asyncio HTTP/JSON
front end (:mod:`repro.serve.http`, :mod:`repro.serve.app`) holding
hot :class:`~repro.vhdl.library.LibraryManager` state, per-client work
libraries layered over a shared read-only reference library
(:mod:`repro.serve.session`), and a job layer that batches compatible
compile requests into the existing :mod:`repro.build` topological fork
scheduler (:mod:`repro.serve.jobs`).  The whole thing is stdlib-only,
like the rest of the reproduction.
"""

from .app import BackgroundServer, ServeApp, ServeServer
from .http import HTTPError, HTTPServer, Request, Response
from .jobs import JobError, JobRunner
from .session import (
    SessionError,
    SessionManager,
    Workspace,
    resolve_reference,
)

__all__ = [
    "BackgroundServer",
    "HTTPError",
    "HTTPServer",
    "JobError",
    "JobRunner",
    "Request",
    "Response",
    "ServeApp",
    "ServeServer",
    "SessionError",
    "SessionManager",
    "Workspace",
    "resolve_reference",
]
