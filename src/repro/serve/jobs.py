"""The service's job layer: batching, execution, and draining.

Compile requests are not executed one-by-one.  Each arriving compile
job parks in a per-session pending list for one *batch window* (a few
milliseconds); everything that accumulated is then merged into a
single :class:`repro.build.IncrementalBuilder` run — the existing
topological fork scheduler compiles the union of all requested files
in dependency order, possibly in parallel workers — and the one
:class:`~repro.build.driver.BuildReport` is sliced back per request.
Ten clients posting the same package therefore cost one AG evaluation,
exactly like ten files in one ``repro build`` invocation.

Simulation and lint jobs are read-only: they run directly on the
executor against a pinned library snapshot, concurrent with each other
and with at most one writer per session (the workspace lock).

Every job resolves to a plain JSON-able dict carrying the request id,
per-job diagnostics as JSON lines (:func:`repro.diag.render_jsonl` —
the same records ``--diag-format json`` prints), and queue/run timing.
"""

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

from ..diag import Diagnostic, render_jsonl
from ..metrics import NULL_REGISTRY

#: How long a compile job waits for batch-mates before running.
BATCH_WINDOW_S = 0.01


class JobError(Exception):
    """A job could not be accepted (not: a job that ran and failed).

    ``diagnostics`` optionally carries structured
    :class:`~repro.diag.Diagnostic` records explaining the rejection;
    the app layer renders them as JSONL in the error response.
    """

    def __init__(self, message, diagnostics=()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)


def _sim_lines(kernel, names, end_fs):
    """The exact report lines the ``repro simulate`` CLI prints."""
    from ..sim.tracing import format_fs

    lines = ["simulation stopped at %s (%d cycles)"
             % (format_fs(end_fs), kernel.cycles)]
    for path, sig in names.signals():
        lines.append("  %-30s = %s" % (path, sig.image(sig.value)))
    return lines


class _CompileJob:
    """One pending compile request inside a batch."""

    __slots__ = ("id", "names", "paths", "force", "future",
                 "submitted")

    def __init__(self, job_id, names, paths, force, future):
        self.id = job_id
        self.names = names   # client-facing file names
        self.paths = paths   # absolute paths inside the workspace
        self.force = force
        self.future = future
        self.submitted = time.perf_counter()


class JobRunner:
    """Executes jobs on a worker pool with per-session batching."""

    def __init__(self, workers=2, metrics=NULL_REGISTRY,
                 batch_window=BATCH_WINDOW_S):
        self.workers = max(1, int(workers or 1))
        self.batch_window = batch_window
        self.executor = ThreadPoolExecutor(
            max_workers=max(2, self.workers),
            thread_name_prefix="repro-serve")
        self.metrics = metrics
        self._m_jobs = metrics.counter(
            "serve_jobs_total", "jobs executed by kind")
        self._m_batches = metrics.counter(
            "serve_batches_total",
            "compile batches handed to the build scheduler")
        self._m_batch_size = metrics.histogram(
            "serve_batch_files",
            "source files per merged compile batch")
        self._m_queue_s = metrics.histogram(
            "serve_job_queue_seconds",
            "time a job waited before running",
            buckets=_seconds_buckets())
        self._seq = 0
        self._pending = {}   # session id -> [_CompileJob]
        self._drainers = {}  # session id -> asyncio.Task
        self._active = 0
        self._idle = asyncio.Event()
        self._idle.set()

    # -- bookkeeping -------------------------------------------------------

    def next_id(self):
        self._seq += 1
        return self._seq

    def _job_started(self):
        self._active += 1
        self._idle.clear()

    def _job_finished(self):
        self._active -= 1
        if self._active <= 0:
            self._idle.set()

    async def drain(self, timeout=60.0):
        """Wait until every accepted job has resolved."""
        # Pending batches may still be inside their window; kick them.
        for sid in list(self._drainers):
            task = self._drainers.get(sid)
            if task is not None and not task.done():
                await task
        await asyncio.wait_for(self._idle.wait(), timeout=timeout)

    def close(self):
        self.executor.shutdown(wait=True)

    @property
    def active_jobs(self):
        return self._active

    # -- compile (batched) -------------------------------------------------

    async def compile(self, workspace, files, force=False):
        """Queue one compile request; resolves when its batch ran."""
        loop = asyncio.get_running_loop()
        paths = workspace.write_sources(files)
        names = [entry["name"] for entry in files]
        job = _CompileJob(self.next_id(), names, paths, force,
                          loop.create_future())
        self._job_started()
        self._pending.setdefault(workspace.id, []).append(job)
        drainer = self._drainers.get(workspace.id)
        if drainer is None or drainer.done():
            self._drainers[workspace.id] = asyncio.ensure_future(
                self._drain_session(workspace))
        return await job.future

    async def _drain_session(self, workspace):
        """Run one merged batch for everything that queued up."""
        await asyncio.sleep(self.batch_window)
        jobs = self._pending.pop(workspace.id, [])
        if not jobs:
            return
        loop = asyncio.get_running_loop()
        if workspace.lock is None:
            workspace.lock = asyncio.Lock()
        batch_paths = []
        force = False
        for job in jobs:
            force = force or job.force
            for path in job.paths:
                if path not in batch_paths:
                    batch_paths.append(path)
        self._m_batches.inc()
        self._m_batch_size.observe(len(batch_paths))
        started = time.perf_counter()
        try:
            async with workspace.lock:
                report = await loop.run_in_executor(
                    self.executor, self._run_build,
                    workspace, batch_paths, force)
        except Exception as exc:
            for job in jobs:
                if not job.future.done():
                    job.future.set_exception(
                        JobError("build failed: %s" % exc))
                self._m_jobs.labels(kind="compile").inc()
                self._job_finished()
            return
        run_s = time.perf_counter() - started
        workspace.invalidate()
        for job in jobs:
            self._m_queue_s.observe(max(0.0,
                                        started - job.submitted))
            result = self._slice_report(workspace, job, report,
                                        run_s, len(batch_paths),
                                        len(jobs))
            if not job.future.done():
                job.future.set_result(result)
            self._m_jobs.labels(kind="compile").inc()
            self._job_finished()

    def _run_build(self, workspace, paths, force):
        builder = workspace.builder(jobs=self.workers)
        return builder.build(paths, force=force)

    def _slice_report(self, workspace, job, report, run_s,
                      batch_files, batch_jobs):
        """This job's per-file view of the merged batch report."""
        results = []
        diagnostics = []
        ok = True
        for name, path in zip(job.names, job.paths):
            action = report.actions.get(path, "skipped")
            if action in ("failed", "skipped"):
                ok = False
            results.append({
                "path": name,
                "action": action,
                "reason": report.reasons.get(path, ""),
                "messages": list(report.messages.get(path, ())),
                "units": [list(u)
                          for u in report.units.get(path, ())],
            })
            for d in report.diagnostics.get(path, ()):
                diagnostics.append(Diagnostic.from_dict(d))
        return {
            "id": job.id,
            "kind": "compile",
            "session": workspace.id,
            "ok": ok,
            "results": results,
            "stats": dict(report.stats),
            "diagnostics_jsonl": render_jsonl(diagnostics),
            "timing": {
                "queued_s": round(
                    max(0.0, time.perf_counter() - job.submitted
                        - run_s), 6),
                "run_s": round(run_s, 6),
                "batch_files": batch_files,
                "batch_jobs": batch_jobs,
            },
        }

    # -- simulate ----------------------------------------------------------

    async def simulate(self, workspace, top, arch=None, until_fs=None,
                       lib=None):
        """Elaborate + run against a pinned snapshot of the session
        library; concurrent with other readers and with writers."""
        loop = asyncio.get_running_loop()
        job_id = self.next_id()
        self._job_started()
        submitted = time.perf_counter()
        try:
            result = await loop.run_in_executor(
                self.executor, self._run_sim, workspace, top, arch,
                until_fs, lib)
        finally:
            self._m_jobs.labels(kind="sim").inc()
            self._job_finished()
        self._m_queue_s.observe(0.0)
        result["id"] = job_id
        result["kind"] = "sim"
        result["session"] = workspace.id
        result["timing"] = {
            "run_s": round(time.perf_counter() - submitted, 6),
        }
        return result

    def _run_sim(self, workspace, top, arch, until_fs, lib):
        from ..sim import Kernel, SimulationError
        from ..vhdl.elaborate import ElaborationError, Elaborator

        snapshot = workspace.snapshot()
        kernel = Kernel()
        try:
            elab = Elaborator(snapshot, kernel=kernel)
            sim = elab.elaborate(top, arch_name=arch, lib=lib)
            end = sim.run(until_fs=until_fs)
        except (ElaborationError, SimulationError) as exc:
            return {
                "ok": False,
                "error": "%s: %s" % (type(exc).__name__, exc),
                "library_version": snapshot.version,
                "diagnostics_jsonl": render_jsonl(
                    snapshot.quarantine_diagnostics()),
            }
        lines = _sim_lines(kernel, sim.names, end)
        return {
            "ok": True,
            "top": top,
            "end_fs": end,
            "cycles": kernel.cycles,
            "delta_cycles": kernel.delta_cycles,
            "signals": [
                [path, sig.image(sig.value)]
                for path, sig in sim.names.signals()
            ],
            "report_lines": lines,
            "library_version": snapshot.version,
            "diagnostics_jsonl": render_jsonl(
                snapshot.quarantine_diagnostics()),
        }

    # -- lint --------------------------------------------------------------

    async def lint(self, workspace, files=None, select=(), ignore=()):
        """Compile ``files`` in memory and lint (no library writes),
        or lint the session library when no files are given."""
        loop = asyncio.get_running_loop()
        job_id = self.next_id()
        self._job_started()
        submitted = time.perf_counter()
        try:
            result = await loop.run_in_executor(
                self.executor, self._run_lint, workspace, files,
                tuple(select), tuple(ignore))
        finally:
            self._m_jobs.labels(kind="lint").inc()
            self._job_finished()
        result["id"] = job_id
        result["kind"] = "lint"
        result["session"] = workspace.id
        result["timing"] = {
            "run_s": round(time.perf_counter() - submitted, 6),
        }
        return result

    def _run_lint(self, workspace, files, select, ignore):
        from ..analysis import LintEngine
        from ..diag import DiagnosticEngine
        from ..vhdl.compiler import CompileError, Compiler
        from ..vhdl.library import LibraryManager

        if files:
            # The CLI contract: lint compiles in memory and never
            # touches the on-disk library.
            library = LibraryManager(root=None, work="work")
            compiler = Compiler(library=library, work="work",
                                strict=False)
            for entry in files:
                name = entry.get("name", "<input>")
                try:
                    result = compiler.compile(entry.get("text", ""),
                                              filename=name)
                except CompileError as exc:
                    return {"ok": False,
                            "error": "%s: %d compile error(s)"
                                     % (name, len(exc.messages)),
                            "messages": list(exc.messages)}
                if not result.ok:
                    return {"ok": False,
                            "error": "%s: %d compile error(s)"
                                     % (name, len(result.messages)),
                            "messages": list(result.messages)}
            engine = LintEngine(library=library, work="work",
                                select=list(select),
                                ignore=list(ignore))
            findings = engine.lint_library()
        else:
            snapshot = workspace.snapshot()
            engine = LintEngine(library=snapshot, work="work",
                                select=list(select),
                                ignore=list(ignore))
            findings = engine.lint_library()
        diag_engine = DiagnosticEngine()
        for diag in findings:
            diag_engine.emit(diag)
        ordered = diag_engine.sorted()
        return {
            "ok": not ordered,
            "findings": len(ordered),
            "findings_jsonl": render_jsonl(ordered),
            "summary": diag_engine.summary(),
        }


def _seconds_buckets():
    from ..metrics.registry import SECONDS_BUCKETS

    return SECONDS_BUCKETS
