"""The service's job layer: batching, execution, and draining.

Compile requests are not executed one-by-one.  Each arriving compile
job parks in a per-session pending list for one *batch window* (a few
milliseconds); everything that accumulated is then merged into a
single :class:`repro.build.IncrementalBuilder` run — the existing
topological fork scheduler compiles the union of all requested files
in dependency order, possibly in parallel workers — and the one
:class:`~repro.build.driver.BuildReport` is sliced back per request.
Ten clients posting the same package therefore cost one AG evaluation,
exactly like ten files in one ``repro build`` invocation.

Simulation and lint jobs are read-only: they run directly on the
executor against a pinned library snapshot, concurrent with each other
and with at most one writer per session (the workspace lock).

Every job resolves to a plain JSON-able dict carrying the request id,
per-job diagnostics as JSON lines (:func:`repro.diag.render_jsonl` —
the same records ``--diag-format json`` prints), and queue/run timing.
"""

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

from ..diag import Diagnostic, render_jsonl
from ..metrics import NULL_REGISTRY
from ..trace.context import current_context, make_span, use

#: How long a compile job waits for batch-mates before running.
BATCH_WINDOW_S = 0.01

#: Sampling stride for kernel spans in traced ``/sim`` jobs: record
#: every Nth timestep / process resume, so a million-cycle run adds
#: bounded span volume to the ring.
SIM_TRACE_SAMPLE = 100


@contextmanager
def _maybe_phase(tracer, name, **args):
    """``tracer.phase(...)`` when tracing, a no-op otherwise."""
    if tracer is None:
        yield None
    else:
        with tracer.phase(name, **args) as event:
            yield event


class JobError(Exception):
    """A job could not be accepted (not: a job that ran and failed).

    ``diagnostics`` optionally carries structured
    :class:`~repro.diag.Diagnostic` records explaining the rejection;
    the app layer renders them as JSONL in the error response.
    """

    def __init__(self, message, diagnostics=()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)


def _sim_lines(kernel, names, end_fs):
    """The exact report lines the ``repro simulate`` CLI prints."""
    from ..sim.tracing import format_fs

    lines = ["simulation stopped at %s (%d cycles)"
             % (format_fs(end_fs), kernel.cycles)]
    for path, sig in names.signals():
        lines.append("  %-30s = %s" % (path, sig.image(sig.value)))
    return lines


class _CompileJob:
    """One pending compile request inside a batch."""

    __slots__ = ("id", "names", "paths", "force", "future",
                 "submitted", "submitted_ts", "ctx")

    def __init__(self, job_id, names, paths, force, future, ctx=None):
        self.id = job_id
        self.names = names   # client-facing file names
        self.paths = paths   # absolute paths inside the workspace
        self.force = force
        self.future = future
        self.submitted = time.perf_counter()
        self.submitted_ts = time.time() * 1e6  # epoch µs, for spans
        self.ctx = ctx       # the submitting request's span context


class JobRunner:
    """Executes jobs on a worker pool with per-session batching."""

    def __init__(self, workers=2, metrics=NULL_REGISTRY,
                 batch_window=BATCH_WINDOW_S, trace=None,
                 sim_trace_sample=SIM_TRACE_SAMPLE):
        self.workers = max(1, int(workers or 1))
        self.batch_window = batch_window
        self.trace = trace  # repro.trace.SpanRing (or None)
        self.sim_trace_sample = sim_trace_sample
        self.executor = ThreadPoolExecutor(
            max_workers=max(2, self.workers),
            thread_name_prefix="repro-serve")
        self.metrics = metrics
        self._m_jobs = metrics.counter(
            "serve_jobs_total", "jobs executed by kind")
        self._m_batches = metrics.counter(
            "serve_batches_total",
            "compile batches handed to the build scheduler")
        self._m_batch_size = metrics.histogram(
            "serve_batch_files",
            "source files per merged compile batch")
        self._m_queue_s = metrics.histogram(
            "serve_job_queue_seconds",
            "time a job waited before running",
            buckets=_seconds_buckets())
        self._seq = 0
        self._pending = {}   # session id -> [_CompileJob]
        self._drainers = {}  # session id -> asyncio.Task
        self._active = 0
        self._idle = asyncio.Event()
        self._idle.set()

    # -- bookkeeping -------------------------------------------------------

    def next_id(self):
        self._seq += 1
        return self._seq

    def _job_started(self):
        self._active += 1
        self._idle.clear()

    def _job_finished(self):
        self._active -= 1
        if self._active <= 0:
            self._idle.set()

    async def drain(self, timeout=60.0):
        """Wait until every accepted job has resolved."""
        # Pending batches may still be inside their window; kick them.
        for sid in list(self._drainers):
            task = self._drainers.get(sid)
            if task is not None and not task.done():
                await task
        await asyncio.wait_for(self._idle.wait(), timeout=timeout)

    def close(self):
        self.executor.shutdown(wait=True)

    @property
    def active_jobs(self):
        return self._active

    # -- compile (batched) -------------------------------------------------

    async def compile(self, workspace, files, force=False):
        """Queue one compile request; resolves when its batch ran."""
        loop = asyncio.get_running_loop()
        paths = workspace.write_sources(files)
        names = [entry["name"] for entry in files]
        # Capture the request's span context *here*: the drainer task
        # runs in whichever request's context created it, so each job
        # must carry its own.
        job = _CompileJob(self.next_id(), names, paths, force,
                          loop.create_future(), ctx=current_context())
        self._job_started()
        self._pending.setdefault(workspace.id, []).append(job)
        drainer = self._drainers.get(workspace.id)
        if drainer is None or drainer.done():
            self._drainers[workspace.id] = asyncio.ensure_future(
                self._drain_session(workspace))
        return await job.future

    async def _drain_session(self, workspace):
        """Run one merged batch for everything that queued up."""
        await asyncio.sleep(self.batch_window)
        jobs = self._pending.pop(workspace.id, [])
        if not jobs:
            return
        loop = asyncio.get_running_loop()
        if workspace.lock is None:
            workspace.lock = asyncio.Lock()
        batch_paths = []
        force = False
        for job in jobs:
            force = force or job.force
            for path in job.paths:
                if path not in batch_paths:
                    batch_paths.append(path)
        self._m_batches.inc()
        self._m_batch_size.observe(len(batch_paths))
        # The batch runs as a child span of the first traced job's
        # request; batch-mates link to it via ``batch_member`` spans
        # (a batch has many requesting parents but one execution).
        lead_ctx = next((j.ctx for j in jobs if j.ctx is not None),
                        None)
        batch_ctx = lead_ctx.child() if lead_ctx is not None else None
        started = time.perf_counter()
        started_ts = time.time() * 1e6
        try:
            async with workspace.lock:
                report = await loop.run_in_executor(
                    self.executor, self._run_build,
                    workspace, batch_paths, force, batch_ctx)
        except Exception as exc:
            for job in jobs:
                if not job.future.done():
                    job.future.set_exception(
                        JobError("build failed: %s" % exc))
                self._m_jobs.labels(kind="compile").inc()
                self._job_finished()
            return
        run_s = time.perf_counter() - started
        workspace.invalidate()
        self._record_batch_spans(jobs, batch_ctx, report, started,
                                 started_ts, run_s, len(batch_paths))
        for job in jobs:
            self._m_queue_s.observe(max(0.0,
                                        started - job.submitted))
            result = self._slice_report(workspace, job, report,
                                        run_s, len(batch_paths),
                                        len(jobs))
            if not job.future.done():
                job.future.set_result(result)
            self._m_jobs.labels(kind="compile").inc()
            self._job_finished()

    def _record_batch_spans(self, jobs, batch_ctx, report, started,
                            started_ts, run_s, batch_files):
        """Collect this batch's span tree into the ring buffer."""
        if self.trace is None or batch_ctx is None:
            return
        spans = [make_span(
            "compile_batch", batch_ctx, started_ts, run_s * 1e6,
            cat="serve", files=batch_files, jobs=len(jobs))]
        for job in jobs:
            if job.ctx is None:
                continue
            wait_s = max(0.0, started - job.submitted)
            spans.append(make_span(
                "queue_wait", job.ctx.child(), job.submitted_ts,
                wait_s * 1e6, cat="serve", job=job.id))
            if job.ctx.span_id != batch_ctx.parent_id:
                # A batch-mate: its request did not own the batch
                # execution, so leave a membership span that links to
                # the batch's identity.
                spans.append(make_span(
                    "batch_member", job.ctx.child(), started_ts,
                    run_s * 1e6, cat="serve", job=job.id,
                    batch_trace=batch_ctx.trace_id,
                    batch_span=batch_ctx.span_id))
        self.trace.add_events(spans)
        self.trace.add_events(getattr(report, "trace_events", ()))

    def _run_build(self, workspace, paths, force, ctx=None):
        # Executor threads do not inherit the caller's contextvars;
        # re-activate the batch span explicitly so the builder's
        # phases (and its fork workers) parent into it.
        with use(ctx):
            builder = workspace.builder(jobs=self.workers)
            return builder.build(paths, force=force)

    def _slice_report(self, workspace, job, report, run_s,
                      batch_files, batch_jobs):
        """This job's per-file view of the merged batch report."""
        results = []
        diagnostics = []
        ok = True
        for name, path in zip(job.names, job.paths):
            action = report.actions.get(path, "skipped")
            if action in ("failed", "skipped"):
                ok = False
            results.append({
                "path": name,
                "action": action,
                "reason": report.reasons.get(path, ""),
                "messages": list(report.messages.get(path, ())),
                "units": [list(u)
                          for u in report.units.get(path, ())],
            })
            for d in report.diagnostics.get(path, ()):
                diagnostics.append(Diagnostic.from_dict(d))
        return {
            "id": job.id,
            "kind": "compile",
            "session": workspace.id,
            "ok": ok,
            "results": results,
            "stats": dict(report.stats),
            "diagnostics_jsonl": render_jsonl(diagnostics),
            "timing": {
                "queued_s": round(
                    max(0.0, time.perf_counter() - job.submitted
                        - run_s), 6),
                "run_s": round(run_s, 6),
                "batch_files": batch_files,
                "batch_jobs": batch_jobs,
            },
        }

    # -- simulate ----------------------------------------------------------

    async def simulate(self, workspace, top, arch=None, until_fs=None,
                       lib=None, backend="event"):
        """Elaborate + run against a pinned snapshot of the session
        library; concurrent with other readers and with writers.
        ``backend`` selects the kernel: ``event`` (default),
        ``compiled`` (per-design specialized code), or ``scan``."""
        loop = asyncio.get_running_loop()
        job_id = self.next_id()
        ctx = current_context()
        self._job_started()
        submitted = time.perf_counter()
        try:
            result = await loop.run_in_executor(
                self.executor, self._run_sim, workspace, top, arch,
                until_fs, lib, ctx, backend)
        finally:
            self._m_jobs.labels(kind="sim").inc()
            self._job_finished()
        self._m_queue_s.observe(0.0)
        result["id"] = job_id
        result["kind"] = "sim"
        result["session"] = workspace.id
        result["timing"] = {
            "run_s": round(time.perf_counter() - submitted, 6),
        }
        return result

    def _run_sim(self, workspace, top, arch, until_fs, lib, ctx=None,
                 backend="event"):
        from ..sim import CompiledKernel, Kernel, ScanKernel, \
            SimulationError
        from ..vhdl.elaborate import ElaborationError, Elaborator

        snapshot = workspace.snapshot()
        tracer = None
        if ctx is not None and self.trace is not None:
            from ..diag.trace import Tracer

            tracer = Tracer()
        # A traced kernel samples timestep / process-resume spans; the
        # ambient context during ``run()`` (the kernel_run phase) is
        # what they parent into.
        kernel_cls = {"event": Kernel, "compiled": CompiledKernel,
                      "scan": ScanKernel}[backend]
        kernel = kernel_cls(trace=tracer,
                            trace_sample=self.sim_trace_sample)
        try:
            with use(ctx), _maybe_phase(tracer, "sim", cat="serve",
                                        top=top):
                with _maybe_phase(tracer, "elaborate", cat="serve"):
                    elab = Elaborator(snapshot, kernel=kernel)
                    sim = elab.elaborate(top, arch_name=arch, lib=lib)
                if backend == "compiled":
                    with _maybe_phase(tracer, "codegen", cat="serve"):
                        kernel.compile_design(sim.records)
                with _maybe_phase(tracer, "kernel_run", cat="serve"):
                    end = sim.run(until_fs=until_fs)
        except (ElaborationError, SimulationError) as exc:
            if tracer is not None:
                self.trace.add_events(tracer.events)
            return {
                "ok": False,
                "error": "%s: %s" % (type(exc).__name__, exc),
                "library_version": snapshot.version,
                "diagnostics_jsonl": render_jsonl(
                    snapshot.quarantine_diagnostics()),
            }
        if tracer is not None:
            self.trace.add_events(tracer.events)
        lines = _sim_lines(kernel, sim.names, end)
        result = {
            "ok": True,
            "top": top,
            "backend": backend,
            "end_fs": end,
            "cycles": kernel.cycles,
            "delta_cycles": kernel.delta_cycles,
            "signals": [
                [path, sig.image(sig.value)]
                for path, sig in sim.names.signals()
            ],
            "report_lines": lines,
            "library_version": snapshot.version,
            "diagnostics_jsonl": render_jsonl(
                snapshot.quarantine_diagnostics()),
        }
        if backend == "compiled":
            result["codegen"] = {
                "seconds": round(kernel.codegen_seconds, 6),
                "compiled_procs": kernel.compiled_procs,
                "slot_signals": kernel.slot_signals,
            }
        return result

    # -- lint --------------------------------------------------------------

    async def lint(self, workspace, files=None, select=(), ignore=()):
        """Compile ``files`` in memory and lint (no library writes),
        or lint the session library when no files are given."""
        loop = asyncio.get_running_loop()
        job_id = self.next_id()
        ctx = current_context()
        self._job_started()
        submitted = time.perf_counter()
        submitted_ts = time.time() * 1e6
        try:
            result = await loop.run_in_executor(
                self.executor, self._run_lint, workspace, files,
                tuple(select), tuple(ignore))
        finally:
            self._m_jobs.labels(kind="lint").inc()
            self._job_finished()
        if ctx is not None and self.trace is not None:
            self.trace.add(make_span(
                "lint", ctx.child(), submitted_ts,
                (time.perf_counter() - submitted) * 1e6,
                cat="serve", job=job_id))
        result["id"] = job_id
        result["kind"] = "lint"
        result["session"] = workspace.id
        result["timing"] = {
            "run_s": round(time.perf_counter() - submitted, 6),
        }
        return result

    def _run_lint(self, workspace, files, select, ignore):
        from ..analysis import LintEngine
        from ..diag import DiagnosticEngine
        from ..vhdl.compiler import CompileError, Compiler
        from ..vhdl.library import LibraryManager

        if files:
            # The CLI contract: lint compiles in memory and never
            # touches the on-disk library.
            library = LibraryManager(root=None, work="work")
            compiler = Compiler(library=library, work="work",
                                strict=False)
            for entry in files:
                name = entry.get("name", "<input>")
                try:
                    result = compiler.compile(entry.get("text", ""),
                                              filename=name)
                except CompileError as exc:
                    return {"ok": False,
                            "error": "%s: %d compile error(s)"
                                     % (name, len(exc.messages)),
                            "messages": list(exc.messages)}
                if not result.ok:
                    return {"ok": False,
                            "error": "%s: %d compile error(s)"
                                     % (name, len(result.messages)),
                            "messages": list(result.messages)}
            engine = LintEngine(library=library, work="work",
                                select=list(select),
                                ignore=list(ignore))
            findings = engine.lint_library()
        else:
            snapshot = workspace.snapshot()
            engine = LintEngine(library=snapshot, work="work",
                                select=list(select),
                                ignore=list(ignore))
            findings = engine.lint_library()
        diag_engine = DiagnosticEngine()
        for diag in findings:
            diag_engine.emit(diag)
        ordered = diag_engine.sorted()
        return {
            "ok": not ordered,
            "findings": len(ordered),
            "findings_jsonl": render_jsonl(ordered),
            "summary": diag_engine.summary(),
        }


    # -- analyze -----------------------------------------------------------

    async def analyze(self, workspace, files=None, top=None,
                      select=(), ignore=()):
        """Elaborate and run the whole-design (RPE) rules — either
        over ``files`` compiled in memory or over the session
        library.  Read-only, like lint: runs on the executor against
        a pinned snapshot, concurrent with other readers."""
        loop = asyncio.get_running_loop()
        job_id = self.next_id()
        ctx = current_context()
        self._job_started()
        submitted = time.perf_counter()
        submitted_ts = time.time() * 1e6
        try:
            result = await loop.run_in_executor(
                self.executor, self._run_analyze, workspace, files,
                top, tuple(select), tuple(ignore))
        finally:
            self._m_jobs.labels(kind="analyze").inc()
            self._job_finished()
        if ctx is not None and self.trace is not None:
            self.trace.add(make_span(
                "analyze", ctx.child(), submitted_ts,
                (time.perf_counter() - submitted) * 1e6,
                cat="serve", job=job_id))
        result["id"] = job_id
        result["kind"] = "analyze"
        result["session"] = workspace.id
        result["timing"] = {
            "run_s": round(time.perf_counter() - submitted, 6),
        }
        return result

    def _run_analyze(self, workspace, files, top, select, ignore):
        from ..analysis import (
            LintEngine,
            build_netlist,
            levels_artifact,
        )
        from ..diag import DiagnosticEngine
        from ..vhdl.compiler import CompileError, Compiler
        from ..vhdl.elaborate import ElaborationError, Elaborator
        from ..vhdl.library import LibraryManager
        from ..vhdl.symtab import entry_kind

        if files:
            library = LibraryManager(root=None, work="work")
            compiler = Compiler(library=library, work="work",
                                strict=False)
            entities = []
            for entry in files:
                name = entry.get("name", "<input>")
                try:
                    result = compiler.compile(entry.get("text", ""),
                                              filename=name)
                except CompileError as exc:
                    return {"ok": False,
                            "error": "%s: %d compile error(s)"
                                     % (name, len(exc.messages)),
                            "messages": list(exc.messages)}
                if not result.ok:
                    return {"ok": False,
                            "error": "%s: %d compile error(s)"
                                     % (name, len(result.messages)),
                            "messages": list(result.messages)}
                entities.extend(u.name for u in result.units
                                if entry_kind(u) == "entity")
            if top is None:
                if not entities:
                    return {"ok": False,
                            "error": "no entity to analyze"}
                top = entities[-1]
        else:
            if top is None:
                return {"ok": False,
                        "error": "analyze without files needs a "
                                 "'top' entity name"}
            library = workspace.snapshot()
        try:
            sim = Elaborator(library).elaborate(top)
        except ElaborationError as exc:
            return {"ok": False,
                    "error": "ElaborationError: %s" % exc}
        graph = build_netlist(sim.records)
        engine = LintEngine(library=library, work="work",
                            select=list(select),
                            ignore=list(ignore))
        findings = engine.lint_design(graph)
        diag_engine = DiagnosticEngine()
        for diag in findings:
            diag_engine.emit(diag)
        ordered = diag_engine.sorted()
        return {
            "ok": not any(d.severity in ("error", "fatal")
                          for d in ordered),
            "top": top,
            "findings": len(ordered),
            "findings_jsonl": render_jsonl(ordered),
            "summary": diag_engine.summary(),
            "levels": levels_artifact(graph),
        }


def _seconds_buckets():
    from ..metrics.registry import SECONDS_BUCKETS

    return SECONDS_BUCKETS
