"""Per-client workspaces over a shared read-only reference library.

The paper's library model already separates a *working* library from
*reference* libraries "which can be referenced ... but which can not
be updated" (§2).  The service maps that straight onto sessions: every
client session owns a private library root (sources, ``work`` library,
``build.state.json`` manifest) while one read-only reference library,
prebuilt with ``repro build --work <name>``, is layered into each root
by symlink.  The whole existing build/elaborate stack then sees one
ordinary library root — reference units resolve through the same
:class:`~repro.vhdl.library.LibraryManager` paths as anywhere else,
and the ``reference_libs`` guard keeps them unwritable.

Reads are served from a cached read-only manager: a compile commit
invalidates it, and jobs that were already running keep the manager
(and its pinned snapshots) they started with — snapshot isolation at
session granularity.
"""

import os
import re
import shutil

from ..build.cache import BuildCache
from ..vhdl.library import LibraryManager

_SESSION_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")
_SOURCE_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")


class SessionError(Exception):
    """Bad session id, bad source name, unknown session."""


def check_session_id(sid):
    if not _SESSION_ID.match(sid or ""):
        raise SessionError(
            "bad session id %r (want [A-Za-z0-9][A-Za-z0-9._-]{0,63})"
            % (sid,))
    return sid


class Workspace:
    """One client session: private sources + work library + manifest."""

    def __init__(self, sid, base_dir, ref=None):
        self.id = check_session_id(sid)
        self.dir = os.path.join(base_dir, sid)
        self.src_dir = os.path.join(self.dir, "src")
        self.root = os.path.join(self.dir, "libs")
        os.makedirs(self.src_dir, exist_ok=True)
        os.makedirs(self.root, exist_ok=True)
        self.ref_name = None
        if ref is not None:
            name, source_dir = ref
            self.ref_name = name
            link = os.path.join(self.root, name)
            if not os.path.exists(link):
                os.symlink(os.path.abspath(source_dir), link)
        #: Builds for one session serialize here (single writer);
        #: installed by the owning SessionManager's event loop.
        self.lock = None
        self._library = None

    @property
    def reference_libs(self):
        return (self.ref_name,) if self.ref_name else ()

    def write_sources(self, files):
        """Materialize ``[{"name":..., "text":...}]`` into the session
        source dir; returns absolute paths in request order."""
        paths = []
        for entry in files:
            name = entry.get("name") if isinstance(entry, dict) \
                else None
            text = entry.get("text") if isinstance(entry, dict) \
                else None
            if not name or not _SOURCE_NAME.match(name):
                raise SessionError("bad source file name %r" % (name,))
            if not isinstance(text, str):
                raise SessionError(
                    "source %r: 'text' must be a string" % name)
            path = os.path.join(self.src_dir, name)
            tmp = "%s.tmp.%d" % (path, os.getpid())
            with open(tmp, "w") as f:
                f.write(text)
            os.replace(tmp, path)
            paths.append(path)
        return paths

    def builder(self, jobs=1):
        """A fresh incremental builder over this session's root."""
        from ..build import IncrementalBuilder

        return IncrementalBuilder(
            self.root, work="work",
            reference_libs=self.reference_libs, jobs=jobs)

    def invalidate(self):
        """Drop the cached read manager after a commit; readers that
        already hold it keep their consistent pre-commit view."""
        self._library = None

    def library(self):
        """The cached read-only manager over the session root, with
        the recorded deterministic compile order applied."""
        lib = self._library
        if lib is None:
            lib = LibraryManager(
                root=self.root, work="work",
                reference_libs=self.reference_libs, read_only=True)
            cache = BuildCache(self.root).load()
            if cache.compile_order:
                lib.apply_compile_order(cache.compile_order)
            self._library = lib
        return lib

    def snapshot(self):
        """A pinned read view for one job."""
        return self.library().snapshot()


class SessionManager:
    """All live sessions plus the shared reference library."""

    def __init__(self, base_dir, ref=None):
        self.base_dir = base_dir
        self.ref = ref  # (name, source_dir) or None
        self._sessions = {}
        os.makedirs(base_dir, exist_ok=True)

    def get(self, sid, create=True):
        sid = check_session_id(sid or "default")
        ws = self._sessions.get(sid)
        if ws is None:
            if not create:
                raise SessionError("no such session %r" % sid)
            ws = Workspace(sid, self.base_dir, ref=self.ref)
            self._sessions[sid] = ws
        return ws

    def drop(self, sid):
        ws = self._sessions.pop(check_session_id(sid), None)
        if ws is None:
            raise SessionError("no such session %r" % sid)
        shutil.rmtree(ws.dir, ignore_errors=True)
        return ws

    def list(self):
        return sorted(self._sessions)


def resolve_reference(spec):
    """Parse ``--ref-library PATH[:NAME]`` into ``(name, dir)``.

    ``PATH`` is a library root previously populated with ``repro
    --root PATH --work NAME build``; ``NAME`` defaults to ``ref``.
    The returned ``dir`` is the library subdirectory itself.
    """
    if spec is None:
        return None
    path, sep, name = spec.rpartition(":")
    if not sep or os.sep in name or not name:
        path, name = spec, "ref"
    lib_dir = os.path.join(path, name)
    if not os.path.isdir(lib_dir):
        raise SessionError(
            "reference library %r has no %r library (expected "
            "directory %s; build it with: repro --root %s "
            "--work %s build FILES)" % (path, name, lib_dir, path, name))
    return (name, lib_dir)
