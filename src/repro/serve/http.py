"""Minimal dependency-free HTTP/1.1 plumbing for ``repro serve``.

The compile service speaks plain HTTP/JSON so that any client — curl,
a CI job, a load generator — can drive it without a client library.
This module is the transport only: request parsing on asyncio streams,
response encoding, keep-alive, and bounded header/body sizes.  Routing
and application semantics live in :mod:`repro.serve.app`.

Deliberately small rather than general: one request at a time per
connection, ``Content-Length`` bodies only (no chunked uploads), and
HTTP/1.1 keep-alive honoring an explicit ``Connection: close``.
"""

import asyncio
import json
from urllib.parse import parse_qs, unquote, urlsplit

#: Upper bounds keeping a misbehaving client from ballooning memory.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024

REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Content type of the Prometheus text exposition format 0.0.4.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class HTTPError(Exception):
    """An error that maps to a specific HTTP status."""

    def __init__(self, status, message):
        self.status = status
        self.message = message
        super().__init__("%d %s" % (status, message))


class Request:
    """One parsed request: method, path, query dict, headers, body."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method, path, query, headers, body):
        self.method = method
        self.path = path
        self.query = query      # {name: [value, ...]}
        self.headers = headers  # lower-cased names
        self.body = body

    def json(self):
        """The body decoded as JSON (400 on anything malformed)."""
        if not self.body:
            return {}
        try:
            data = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HTTPError(400, "request body is not valid JSON: %s"
                            % exc)
        if not isinstance(data, dict):
            raise HTTPError(400, "request body must be a JSON object")
        return data

    def __repr__(self):
        return "<Request %s %s>" % (self.method, self.path)


class Response:
    """One response: status, body bytes, content type, extra headers."""

    __slots__ = ("status", "body", "content_type", "headers")

    def __init__(self, status=200, body=b"",
                 content_type="application/json", headers=()):
        self.status = status
        self.body = body if isinstance(body, bytes) \
            else body.encode("utf-8")
        self.content_type = content_type
        self.headers = list(headers)

    @classmethod
    def json(cls, data, status=200):
        text = json.dumps(data, indent=1, sort_keys=True) + "\n"
        return cls(status, text, "application/json")

    @classmethod
    def text(cls, text, status=200,
             content_type="text/plain; charset=utf-8"):
        return cls(status, text, content_type)

    @classmethod
    def error(cls, status, message):
        return cls.json({"ok": False, "error": message,
                         "status": status}, status=status)

    def encode(self, keep_alive=True):
        reason = REASONS.get(self.status, "Unknown")
        head = [
            "HTTP/1.1 %d %s" % (self.status, reason),
            "Content-Type: %s" % self.content_type,
            "Content-Length: %d" % len(self.body),
            "Connection: %s" % ("keep-alive" if keep_alive
                                else "close"),
        ]
        head.extend("%s: %s" % kv for kv in self.headers)
        return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") \
            + self.body


async def read_request(reader):
    """Parse one request off ``reader``.

    Returns ``None`` on a clean EOF before any bytes (the client hung
    up between keep-alive requests); raises :class:`HTTPError` on a
    malformed or oversized request.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HTTPError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HTTPError(413, "request head too large")
    if len(head) > MAX_HEADER_BYTES:
        raise HTTPError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HTTPError(400, "malformed request line %r" % lines[0])
    method, target, _version = parts
    split = urlsplit(target)
    path = unquote(split.path) or "/"
    query = parse_qs(split.query)
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HTTPError(400, "malformed header line %r" % line)
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HTTPError(400, "malformed Content-Length")
        if length < 0 or length > MAX_BODY_BYTES:
            raise HTTPError(413, "request body too large")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HTTPError(400, "truncated request body")
    elif headers.get("transfer-encoding"):
        raise HTTPError(400, "chunked request bodies not supported")
    return Request(method.upper(), path, query, headers, body)


class HTTPServer:
    """An asyncio TCP server feeding requests to an async handler.

    ``handler(request) -> Response`` is awaited per request; anything
    it raises that is not an :class:`HTTPError` becomes a 500.  The
    server counts open connections so :meth:`stop` can wait for them
    to finish draining.
    """

    def __init__(self, handler, host="127.0.0.1", port=0):
        self.handler = handler
        self.host = host
        self.port = port
        self._server = None
        self._connections = set()

    async def start(self):
        self._server = await asyncio.start_server(
            self._client, self.host, self.port,
            limit=MAX_HEADER_BYTES)
        # Port 0 means "pick one": record what the OS assigned.
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def address(self):
        return (self.host, self.port)

    async def _client(self, reader, writer):
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                keep_alive = True
                try:
                    request = await read_request(reader)
                except HTTPError as exc:
                    writer.write(Response.error(
                        exc.status, exc.message).encode(False))
                    await writer.drain()
                    break
                if request is None:
                    break
                if request.headers.get("connection", "").lower() \
                        == "close":
                    keep_alive = False
                try:
                    response = await self.handler(request)
                except HTTPError as exc:
                    response = Response.error(exc.status, exc.message)
                except Exception as exc:  # handler bug: report, go on
                    response = Response.error(
                        500, "%s: %s" % (type(exc).__name__, exc))
                writer.write(response.encode(keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def stop(self):
        """Stop accepting, then wait for open connections to finish."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        pending = {t for t in self._connections
                   if t is not asyncio.current_task()}
        if pending:
            await asyncio.wait(pending, timeout=10)
