"""Diagnostic renderers: caret-annotated text, JSON lines, SARIF 2.1.0.

Three audiences, three formats.  Humans get the caret view; log
pipelines get one JSON object per line; CI/code-scanning backends get
a SARIF 2.1.0 run (the OASIS static-analysis interchange format, the
same shape GitHub code scanning ingests).
"""

import json

from .diagnostic import (
    CODE_DESCRIPTIONS,
    ERROR,
    FATAL,
    NOTE,
    WARNING,
)

TOOL_NAME = "repro"
TOOL_INFO_URI = (
    "https://example.invalid/repro-vhdl-ag"  # reproduction artifact
)

#: SARIF ``level`` values per severity.
_SARIF_LEVEL = {NOTE: "note", WARNING: "warning", ERROR: "error",
                FATAL: "error"}


# -- caret-annotated text ----------------------------------------------------


def _source_line(span, sources):
    """The raw text of the spanned line, or None."""
    if span is None or span.line is None or not span.file:
        return None
    text = None
    if sources and span.file in sources:
        text = sources[span.file]
    else:
        try:
            with open(span.file) as f:
                text = f.read()
        except OSError:
            return None
    lines = text.splitlines()
    if 1 <= span.line <= len(lines):
        return lines[span.line - 1]
    return None


def render_text(diags, sources=None):
    """Human-readable rendering with source excerpt and caret.

    ``sources`` optionally maps file name -> full source text; files
    not present are read from disk when possible, and silently skipped
    (span header only) when not.
    """
    out = []
    for diag in diags:
        out.append(str(diag))
        line_text = _source_line(diag.span, sources)
        if line_text is not None:
            gutter = "%5d" % diag.span.line
            out.append("%s | %s" % (gutter, line_text))
            col = diag.span.column or 1
            width = 1
            if (diag.span.end_column is not None
                    and diag.span.end_line in (None, diag.span.line)):
                width = max(1, diag.span.end_column - col)
            out.append("%s | %s%s" % (" " * len(gutter),
                                      " " * (col - 1), "^" * width))
        for note in diag.notes:
            out.append("      note: %s" % note)
        for message, span in diag.related:
            where = ("%s: " % span) if span is not None else ""
            out.append("      related: %s%s" % (where, message))
    return "\n".join(out)


# -- JSON lines --------------------------------------------------------------


def render_jsonl(diags):
    """One compact JSON object per diagnostic, one per line."""
    return "\n".join(
        json.dumps(d.to_dict(), sort_keys=True) for d in diags
    )


# -- SARIF 2.1.0 -------------------------------------------------------------


def sarif_run(diags, tool_name=TOOL_NAME, tool_version=None):
    """The SARIF 2.1.0 log object (a dict) for one run."""
    if tool_version is None:
        try:
            from .. import __version__ as tool_version
        except ImportError:
            tool_version = "0"
    rule_ids = []
    for d in diags:
        if d.code not in rule_ids:
            rule_ids.append(d.code)
    rules = [
        {
            "id": code,
            "shortDescription": {
                "text": CODE_DESCRIPTIONS.get(code, code)
            },
        }
        for code in rule_ids
    ]
    results = []
    for d in diags:
        result = {
            "ruleId": d.code,
            "ruleIndex": rule_ids.index(d.code),
            "level": _SARIF_LEVEL.get(d.severity, "error"),
            "message": {"text": d.message},
        }
        locations = _sarif_locations(d.span)
        if locations:
            result["locations"] = locations
        related = []
        for message, span in d.related:
            for loc in _sarif_locations(span):
                loc["message"] = {"text": message}
                related.append(loc)
        if related:
            result["relatedLocations"] = related
        if d.notes:
            result["properties"] = {"notes": list(d.notes)}
        results.append(result)
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": str(tool_version),
                        "informationUri": TOOL_INFO_URI,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def _sarif_locations(span):
    if span is None or not span.file:
        return []
    region = {}
    if span.line is not None:
        region["startLine"] = span.line
        if span.column is not None:
            region["startColumn"] = span.column
        if span.end_line is not None:
            region["endLine"] = span.end_line
        if span.end_column is not None:
            region["endColumn"] = span.end_column
    location = {
        "physicalLocation": {
            "artifactLocation": {"uri": span.file},
        }
    }
    if region:
        location["physicalLocation"]["region"] = region
    return [location]


def render_sarif(diags, tool_name=TOOL_NAME, tool_version=None):
    """SARIF 2.1.0 as a JSON string."""
    return json.dumps(
        sarif_run(diags, tool_name=tool_name,
                  tool_version=tool_version),
        indent=2, sort_keys=True)


#: Format-name dispatch used by the CLI's ``--diag-format``.
FORMATS = ("text", "json", "sarif")


def render(diags, fmt="text", sources=None):
    """Render ``diags`` in ``fmt`` (one of :data:`FORMATS`)."""
    if fmt == "text":
        return render_text(diags, sources=sources)
    if fmt == "json":
        return render_jsonl(diags)
    if fmt == "sarif":
        return render_sarif(diags)
    raise ValueError("unknown diagnostic format %r (expected one of %s)"
                     % (fmt, ", ".join(FORMATS)))
