"""Source spans: the file/line/column anchor of a diagnostic.

Every diagnostic the compiler emits should point somewhere.  The
paper's §5.2 discussion of maintaining a 9,000-rule AG makes the case
bluntly: without source anchors, "which rule fired where" questions
are unanswerable.  A :class:`SourceSpan` is a half-open region of one
source file; a span with only a line is legal (semantic messages
historically carried just a line number) and renders without a caret
width.
"""


class SourceSpan:
    """A region of one source file.

    ``line``/``column`` are 1-based, matching editor conventions and
    SARIF's ``region`` object.  ``end_line``/``end_column`` are
    optional; when absent the span denotes a single point.
    """

    __slots__ = ("file", "line", "column", "end_line", "end_column")

    def __init__(self, file=None, line=None, column=None,
                 end_line=None, end_column=None):
        self.file = file
        self.line = line
        self.column = column
        self.end_line = end_line
        self.end_column = end_column

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_token(cls, token, file=None):
        """Span covering one scanned token."""
        text = getattr(token, "text", "") or ""
        line = getattr(token, "line", None) or None
        column = getattr(token, "column", None) or None
        end_column = None
        if column is not None and text and "\n" not in text:
            end_column = column + len(text)
        return cls(file=file, line=line, column=column,
                   end_line=line, end_column=end_column)

    @classmethod
    def from_dict(cls, d):
        if d is None:
            return None
        return cls(
            file=d.get("file"),
            line=d.get("line"),
            column=d.get("column"),
            end_line=d.get("end_line"),
            end_column=d.get("end_column"),
        )

    # -- views -------------------------------------------------------------

    def to_dict(self):
        out = {}
        for field in self.__slots__:
            value = getattr(self, field)
            if value is not None:
                out[field] = value
        return out

    def sort_key(self):
        return (self.file or "", self.line or 0, self.column or 0)

    @property
    def is_anchored(self):
        """True when the span points at an actual source position."""
        return self.line is not None

    def __str__(self):
        parts = [self.file or "<input>"]
        if self.line is not None:
            parts.append(str(self.line))
            if self.column is not None:
                parts.append(str(self.column))
        return ":".join(parts)

    def __repr__(self):
        return "SourceSpan(%s)" % self

    def __eq__(self, other):
        return isinstance(other, SourceSpan) and all(
            getattr(self, f) == getattr(other, f) for f in self.__slots__
        )

    def __hash__(self):
        return hash(tuple(getattr(self, f) for f in self.__slots__))
