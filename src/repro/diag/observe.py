"""AG evaluation observability.

The paper's §5.2 lesson: evolving a 9,000-rule attribute grammar
requires knowing *which* semantic rules fire, how often, and where
circularities come from.  :class:`AGObserver` is the counter sink the
evaluators report into — per-production rule firings, demand-evaluator
memo hits/misses, and static-evaluator visit counts — and
:func:`explain_cycle` renders a :class:`~repro.ag.errors.
CircularityError` cycle with production and line context instead of a
bare instance chain.
"""

from collections import Counter


class AGObserver:
    """Counter sink for attribute-evaluation events.

    All hooks are cheap (Counter increments); evaluators accept an
    observer of ``None`` and skip the calls entirely, so the default
    path stays unchanged.
    """

    def __init__(self):
        #: production label -> number of semantic-rule firings
        self.rule_firings = Counter()
        #: grammar name -> rule firings (when several AGs report in)
        self.grammar_firings = Counter()
        #: demanded attributes served from the memo table
        self.cache_hits = 0
        #: attributes computed fresh (== rule evaluations demanded)
        self.cache_misses = 0
        #: symbol name -> static-evaluator visit count
        self.visits = Counter()

    # -- hooks (called by the evaluators) ----------------------------------

    def record_firing(self, production, grammar=None):
        self.rule_firings[production.label] += 1
        if grammar is not None:
            self.grammar_firings[grammar] += 1

    def record_hit(self):
        self.cache_hits += 1

    def record_miss(self):
        self.cache_misses += 1

    def record_visit(self, symbol):
        self.visits[getattr(symbol, "name", str(symbol))] += 1

    # -- aggregation -------------------------------------------------------

    @property
    def total_firings(self):
        return sum(self.rule_firings.values())

    @property
    def hit_rate(self):
        demanded = self.cache_hits + self.cache_misses
        return self.cache_hits / demanded if demanded else 0.0

    def merge(self, other):
        """Fold another observer's counters into this one."""
        self.rule_firings.update(other.rule_firings)
        self.grammar_firings.update(other.grammar_firings)
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.visits.update(other.visits)
        return self

    def top_productions(self, n=10):
        return self.rule_firings.most_common(n)

    def as_dict(self):
        return {
            "rule_firings": dict(self.rule_firings),
            "total_firings": self.total_firings,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "visits": dict(self.visits),
        }

    def summary(self, top=8):
        lines = [
            "AG evaluation: %d rule firing(s), memo %d hit(s) / "
            "%d miss(es) (%.1f%% hit rate)"
            % (self.total_firings, self.cache_hits, self.cache_misses,
               100.0 * self.hit_rate)
        ]
        if self.visits:
            lines.append("  visits: %d across %d symbol(s)"
                         % (sum(self.visits.values()),
                            len(self.visits)))
        for label, n in self.top_productions(top):
            lines.append("  %-32s %8d" % (label, n))
        return "\n".join(lines)


# -- cycle explanation -------------------------------------------------------


def _instance_context(node, attr):
    """(symbol, attr, production label, line) of one cycle instance."""
    symbol = getattr(getattr(node, "symbol", None), "name", "?")
    line = getattr(node, "line", 0)
    production = getattr(node, "production", None)
    if getattr(node, "parent", None) is not None and hasattr(
            node.parent, "production"):
        # Inherited attributes are defined by the parent production;
        # showing both sides locates the defining rule.
        defined_in = node.parent.production
    else:
        defined_in = production
    return symbol, attr, production, defined_in, line


def explain_cycle(error):
    """Pretty-print a :class:`CircularityError`'s cycle.

    Each instance on the cycle is shown with its attribute, the
    production instance it sits in, and the source line, followed by
    the arrow back to the start — the §5.2 "where did this circularity
    come from" question, answered from the failed run itself.
    """
    cycle = list(getattr(error, "cycle", ()) or ())
    lines = ["circularity: %s" % error]
    if not cycle:
        lines.append("  (no cycle recorded)")
        return "\n".join(lines)
    lines.append("attribute dependency cycle (%d instance(s)):"
                 % max(len(cycle) - 1, 1))
    for i, (node, attr) in enumerate(cycle):
        symbol, attr, production, defined_in, line = \
            _instance_context(node, attr)
        plabel = getattr(production, "label", "?")
        ptext = str(production) if production is not None else "?"
        where = "line %d" % line if line else "line ?"
        marker = "=" if i in (0, len(cycle) - 1) else " "
        lines.append("  %s %d. %s.%s  in %s (%s), %s"
                     % (marker, i + 1, symbol, attr, plabel, ptext,
                        where))
        if defined_in is not None and defined_in is not production:
            lines.append("        defined by parent production %s"
                         % getattr(defined_in, "label", "?"))
        if i < len(cycle) - 1:
            lines.append("        ^ demanded while computing")
    lines.append("  (instances marked '=' are the same instance: "
                 "the cycle closes)")
    return "\n".join(lines)
